//! The 3D-printing company case study (paper Examples 1.1, 5.1 and 5.15).
//!
//! This example walks through the increasingly tricky variants of the paper's
//! running example and shows how the counting-based AST verifier handles each:
//!
//! 1. the affine printer (one reprint per failure) — AST for every `p > 0`
//!    (the functional zero-one law),
//! 2. the non-affine printer (an extra copy per failure) — AST iff `p ≥ 1/2`,
//! 3. the tired operator whose mistake probability grows with the day count
//!    via a sigmoid (Ex. 5.1) — AST iff `p ≥ 3/5`,
//! 4. the variant that reuses the sampled error value as a first-class
//!    branching probability (Ex. 5.15) — AST iff `p ≥ √7 − 2 ≈ 0.6458`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example printer_company
//! ```

use probterm::core::astver::verify_ast;
use probterm::core::counting::{empirical_counting_pattern, recursive_rank_bound};
use probterm::core::numerics::Rational;
use probterm::core::spcf::catalog;
use probterm::core::spcf::Term;

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn report(name: &str, term: &probterm::spcf::Term) {
    match verify_ast(term) {
        Ok(v) => println!(
            "{name:<28} P_approx = {:<44} rank {}  -> {}",
            v.papprox.to_string(),
            v.rank,
            if v.verified_ast { "AST verified" } else { "not verified" }
        ),
        Err(e) => println!("{name:<28} verification not applicable: {e}"),
    }
}

fn main() {
    section("1. Affine printer (Ex. 1.1, program (1))");
    for p in ["0.5", "0.1", "0.01"] {
        let b = catalog::printer_affine(Rational::parse(p).unwrap());
        report(&b.name, &b.term);
    }

    section("2. Non-affine printer (Ex. 1.1, program (2)) — the policy backfires below p = 1/2");
    for p in ["0.75", "0.5", "0.49", "0.25"] {
        let b = catalog::printer_nonaffine(Rational::parse(p).unwrap());
        report(&b.name, &b.term);
    }

    section("3. Tired operator (Ex. 5.1) — threshold p = 3/5");
    for p in ["0.6", "0.59"] {
        let b = catalog::tired_printer(Rational::parse(p).unwrap());
        report(&b.name, &b.term);
    }

    section("4. Error-value reuse (Ex. 5.15) — threshold p = sqrt(7) - 2 ~ 0.6458");
    for p in ["0.65", "0.64"] {
        let b = catalog::error_reuse_printer(Rational::parse(p).unwrap());
        report(&b.name, &b.term);
    }

    section("Cross-check: counting patterns via the star-reduction (Definition 5.7)");
    let b = catalog::tired_printer(Rational::parse("0.6").unwrap());
    if let Term::App(fixpoint, _) = &b.term {
        let rank = recursive_rank_bound(fixpoint).expect("first-order fixpoint");
        let pattern = empirical_counting_pattern(fixpoint, &Rational::from_int(1), 20_000, 42)
            .expect("first-order fixpoint");
        println!(
            "Ex 5.1 (p=0.6), argument 1: rank bound {rank}; empirical ⦃M|1⦄ ≈ 0:{:.3} 2:{:.3} 3:{:.3}",
            pattern.frequency(0),
            pattern.frequency(2),
            pattern.frequency(3)
        );
        println!("(compare with Ex. 5.8: p, (1-p)(2-sig(1))/2, (1-p)·sig(1)/2)");
    }
}
