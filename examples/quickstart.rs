//! Quickstart: parse an SPCF program, simulate it, compute a certified lower
//! bound on its termination probability, and try to prove it almost-surely
//! terminating.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use probterm::core::{analyze, AnalysisConfig};
use probterm::spcf::{parse_term, run, FixedTrace, Strategy};

fn main() {
    // Example 1.1 (2) from the paper: the 3D-printing company that prints an
    // additional copy each day a print fails. With success probability 1/2 the
    // program is almost-surely terminating (but only barely: p < 1/2 is not).
    let source = "(fix phi x. if sample <= 0.5 then x else phi (phi (x + 1))) 1";
    let program = parse_term(source).expect("the quickstart program parses");
    println!("program        : {program}");

    // 1. Deterministic evaluation on an explicit trace (the sampling-style
    //    semantics of §2.3): the first print fails, the two reprints succeed.
    let mut trace = FixedTrace::from_ratios(&[(3, 4), (1, 4), (1, 3)]);
    let run_result = run(Strategy::CallByValue, &program, &mut trace, 10_000);
    println!("one run        : {:?} after {} steps", run_result.outcome, run_result.steps);

    // 2. The combined analysis: interval-semantics lower bound (§3), AST
    //    verification (§5–6) and a Monte-Carlo cross-check.
    let report = analyze(
        &program,
        &AnalysisConfig {
            lower_bound_depth: 90,
            monte_carlo_runs: 2_000,
            monte_carlo_steps: 10_000,
            seed: 2021,
            ..Default::default()
        },
    );
    println!("{report}");

    assert_eq!(report.ast_verified, Some(true), "the fair printer is AST");
    println!("=> the unreliable printing company does finish every job, almost surely.");
}
