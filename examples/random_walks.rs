//! Random-walk benchmarks (paper Table 1: `1dRW`, `bin`, `gr`, `pedestrian`).
//!
//! The lower-bound engine of §3/§7.1 is strategy-agnostic: it works directly
//! on the program text, whether the recursion is affine (`bin`), non-affine
//! (`gr`), or uses continuous data as first-class values (`pedestrian`). This
//! example computes certified lower bounds for each walk and contrasts them
//! with the closed-form termination probabilities where those are known, and
//! with the random-walk decision procedure of §5.1 on hand-written step
//! distributions.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example random_walks
//! ```

use probterm::core::intervalsem::{lower_bound, LowerBoundConfig};
use probterm::core::numerics::Rational;
use probterm::core::rwalk::StepDistribution;
use probterm::core::spcf::catalog;

fn main() {
    println!("— certified lower bounds (interval semantics) —");
    let programs = vec![
        (catalog::random_walk_1d(Rational::from_ratio(1, 2), 1), 90),
        (catalog::random_walk_1d(Rational::from_ratio(7, 10), 1), 90),
        (catalog::one_directional_walk(Rational::from_ratio(1, 2), 2), 90),
        (catalog::golden_ratio(), 70),
        (catalog::pedestrian(), 40),
    ];
    for (benchmark, depth) in programs {
        let result = lower_bound(&benchmark.term, &LowerBoundConfig::default().with_depth(depth));
        println!(
            "{:<16} depth {:>3}: Pterm >= {}   (true: {})",
            benchmark.name,
            depth,
            result.probability.to_decimal_string(10),
            benchmark
                .expected_pterm
                .map(|p| format!("{p:.6}"))
                .unwrap_or_else(|| "unknown".into()),
        );
    }

    println!("\n— the random-walk view of §5.1 (Theorem 5.4) —");
    // The 1dRW_p programs correspond to the step distribution p·δ-1 + (1-p)·δ+1.
    for p in [Rational::from_ratio(1, 2), Rational::from_ratio(7, 10), Rational::from_ratio(2, 5)] {
        let s = StepDistribution::from_pairs([
            (-1, p.clone()),
            (1, Rational::one() - p.clone()),
        ]);
        println!(
            "step distribution {s}: drift {}, {}",
            s.mean(),
            if s.is_ast() { "absorbed at 0 almost surely" } else { "NOT almost surely absorbed" }
        );
    }
}
