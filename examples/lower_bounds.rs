//! Anytime lower bounds on the probability of termination (paper §3, §7.1).
//!
//! For three qualitatively different programs this example shows how the
//! certified lower bound grows as the exploration depth increases, and
//! cross-checks the bounds against a Monte-Carlo estimate of the true
//! termination probability:
//!
//! * `geo(1/2)` — AST; the bounds converge to 1 geometrically,
//! * `Ex 1.1(2), p = 1/4` — *not* AST; the bounds converge to the true
//!   termination probability 1/3 from below,
//! * `Ex 3.5` — the terminating traces form a triangle, which no finite union
//!   of boxes covers exactly, yet the interval semantics is complete and the
//!   bounds approach 1.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lower_bounds
//! ```

use probterm::core::intervalsem::lower_bound_profile;
use probterm::core::numerics::Rational;
use probterm::core::spcf::{catalog, estimate_termination, MonteCarloConfig, Strategy};

fn main() {
    let depths = [20usize, 40, 80, 120];
    let programs = vec![
        catalog::geometric(Rational::from_ratio(1, 2)),
        catalog::printer_nonaffine(Rational::from_ratio(1, 4)),
        catalog::triangle_example(),
    ];
    for benchmark in programs {
        println!("\n=== {} ===", benchmark.name);
        println!("    {}", benchmark.description);
        let profile = lower_bound_profile(&benchmark.term, &depths);
        for (depth, result) in &profile {
            println!(
                "  depth {:>4}: Pterm >= {}   ({} paths, {} ms)",
                depth,
                result.probability.to_decimal_string(10),
                result.paths,
                result.elapsed.as_millis()
            );
        }
        let estimate = estimate_termination(
            &benchmark.term,
            &MonteCarloConfig {
                runs: 3_000,
                max_steps: 8_000,
                seed: 7,
                strategy: Strategy::CallByName,
            },
        );
        println!(
            "  Monte-Carlo estimate of Pterm: {:.4} ± {:.4}{}",
            estimate.probability(),
            estimate.confidence_99(),
            benchmark
                .expected_pterm
                .map(|p| format!("   (closed form: {p:.4})"))
                .unwrap_or_default()
        );
    }
}
