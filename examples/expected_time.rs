//! Positive almost-sure termination (PAST): lower bounds on the expected
//! runtime, and divergence evidence for programs that are AST but not PAST.
//!
//! The interval semantics certifies lower bounds not only on the probability
//! of termination but also on the expected number of reduction steps
//! (Theorem 3.4 (2)). For PAST programs these bounds stabilise below the true
//! (finite) expected runtime; for the fair non-affine printer of Ex. 1.1 —
//! which is AST but has infinite expected runtime — they keep growing with
//! the exploration depth. This example prints both profiles and uses
//! `refute_past_bound` to reject candidate runtime bounds, the refutation
//! half of the Σ⁰₂ characterisation of PAST (Theorem 3.10).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example expected_time
//! ```

use probterm::core::intervalsem::{
    divergence_ratio, expected_steps_profile, refute_past_bound, PastProbe,
};
use probterm::core::numerics::Rational;
use probterm::core::spcf::catalog;

fn main() {
    let depths = [20usize, 40, 60, 80];

    let geo = catalog::geometric(Rational::from_ratio(1, 2));
    let printer = catalog::printer_nonaffine(Rational::from_ratio(1, 2));

    for benchmark in [&geo, &printer] {
        println!("{} — {}", benchmark.name, benchmark.description);
        let profile = expected_steps_profile(&benchmark.term, &depths);
        println!("{:>6} {:>16} {:>16}", "depth", "Pterm >=", "E[steps] >=");
        for point in &profile {
            println!(
                "{:>6} {:>16} {:>16}",
                point.depth,
                point.probability.to_decimal_string(8),
                point.expected_steps.to_decimal_string(4),
            );
        }
        if let Some(ratio) = divergence_ratio(&profile) {
            println!("growth ratio (last/first expected-steps bound): {ratio:.3}");
        }
        println!();
    }

    // Refute candidate expected-runtime bounds for the fair printer: every
    // candidate is eventually refuted because Eterm is infinite.
    println!("refuting expected-runtime bounds for {}:", printer.name);
    for candidate in [5i64, 15, 30] {
        let candidate = Rational::from_int(candidate);
        match refute_past_bound(&printer.term, &candidate, &[20, 40, 60, 80]) {
            PastProbe::Refuted(refutation) => println!(
                "  Eterm > {:>3}   (certified lower bound {} at depth {})",
                refutation.candidate,
                refutation.certified_lower_bound.to_decimal_string(4),
                refutation.depth,
            ),
            PastProbe::NotRefuted { certified_lower_bound } => println!(
                "  Eterm <= {candidate} not refuted up to depth 80 (best lower bound {})",
                certified_lower_bound.to_decimal_string(4),
            ),
        }
    }

    // The geometric program is PAST: a generous candidate survives.
    let generous = Rational::from_int(100);
    let probe = refute_past_bound(&geo.term, &generous, &[40, 80]);
    println!(
        "\n{}: candidate Eterm <= {generous} refuted? {}",
        geo.name,
        probe.is_refuted()
    );
    assert!(!probe.is_refuted());
}
