//! Symbolic execution trees and Environment strategies (paper §6, Fig. 6).
//!
//! This example reconstructs Figure 6 of the paper programmatically: it builds
//! the symbolic execution tree of the tired-printer body (Ex. 5.1), prints it,
//! enumerates the Environment strategies, and reports the resulting counting
//! distribution `P_approx` together with the random-walk AST decision.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example proof_trees
//! ```

use probterm::core::astver::{build_tree, verify_ast, Strategy};
use probterm::core::numerics::Rational;
use probterm::core::spcf::catalog;

fn main() {
    let benchmark = catalog::tired_printer(Rational::parse("0.6").unwrap());
    println!("program: {}\n", benchmark.term);

    // Figure 6a: the symbolic execution tree of the body with argument ⊛.
    let symbolic = build_tree(&benchmark.term).expect("first-order fixpoint");
    println!("symbolic execution tree ({} sample variables, {} environment nodes):",
        symbolic.sample_count, symbolic.env_count);
    println!("{}", symbolic.tree.render());

    // Figure 6b: all Environment strategies.
    let strategies = Strategy::enumerate(symbolic.env_count);
    println!("environment strategies ({}):", strategies.len());
    for s in &strategies {
        println!("  {s}");
    }

    // §6.2 / Table 2: P_approx and the AST decision.
    let verification = verify_ast(&benchmark.term).expect("supported program");
    println!("\nP_approx            : {}", verification.papprox);
    println!("shifted step distr. : {}", verification.step_distribution);
    println!("recursive rank      : {}", verification.rank);
    println!(
        "Theorem 5.4         : {}",
        if verification.verified_ast {
            "AST — the program terminates almost surely on every argument"
        } else {
            "not provable with the counting method"
        }
    );
    println!(
        "Corollary 5.13      : {}",
        if verification.verified_by_corollary_5_13 {
            "also applicable"
        } else {
            "not applicable (needs the finer Thm. 5.9 analysis)"
        }
    );
}
