//! Intersection types at work: set-type derivations (§4) and the
//! non-idempotent counting system (Appendix D.4).
//!
//! The set-type system annotates a program with terminating interval traces
//! and step counts; the weight of a judgement is a certified lower bound on
//! the probability of termination and its expectation a lower bound on the
//! expected runtime (Theorem 4.1). The non-idempotent system counts how many
//! times the recursion variable is used per derivation, bounding the
//! recursive rank used by Corollary 5.13.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example intersection_types
//! ```

use probterm::core::itypes::{
    derive_from_exploration, derive_set_type, recursive_rank_bound_nii, refine_strongly_compatible,
    variable_use_counts,
};
use probterm::core::intervalsem::IntervalTrace;
use probterm::core::numerics::Rational;
use probterm::core::rwalk::epsilon_ra_implies_ast;
use probterm::core::spcf::{catalog, parse_term, Term};

fn main() {
    // --- Set types (§4) -----------------------------------------------------
    let geo = catalog::geometric(Rational::from_ratio(1, 2));
    println!("set-type judgements for {}", geo.name);
    for depth in [20usize, 40, 80] {
        let judgement = derive_from_exploration(&geo.term, depth);
        println!(
            "  depth {:>3}: {} elements, ω(A) = {}, E(A) = {}",
            depth,
            judgement.set_type.len(),
            judgement.termination_lower_bound().to_decimal_string(8),
            judgement.expected_steps_lower_bound().to_decimal_string(4),
        );
    }

    // A hand-written judgement, as in Example C.13: two compatible but not
    // strongly compatible traces are refined before the derivation is built.
    let conditional = parse_term("if sample <= 0.5 then sample else 0").unwrap();
    let traces = vec![
        IntervalTrace::from_ratios(&[(0, 1, 1, 2), (0, 1, 1, 2)]),
        IntervalTrace::from_ratios(&[(0, 1, 1, 3), (1, 2, 1, 1)]),
    ];
    let refined = refine_strongly_compatible(&traces);
    println!(
        "\nEx. C.13: {} compatible traces refine into {} strongly compatible ones",
        traces.len(),
        refined.len()
    );
    let judgement = derive_set_type(&conditional, &traces).expect("derivable judgement");
    println!(
        "  judgement with {} elements certifies Pterm >= {}",
        judgement.set_type.len(),
        judgement.termination_lower_bound()
    );

    // --- Non-idempotent counting (App. D.4) ---------------------------------
    println!("\nrecursive-rank bounds from the non-idempotent system:");
    let programs = [
        catalog::printer_affine(Rational::from_ratio(1, 2)),
        catalog::printer_nonaffine(Rational::from_ratio(1, 2)),
        catalog::three_print(Rational::from_ratio(2, 3)),
        catalog::tired_printer(Rational::parse("0.6").unwrap()),
        catalog::error_reuse_printer(Rational::parse("0.65").unwrap()),
    ];
    for benchmark in &programs {
        let rank = recursive_rank_bound_nii(&benchmark.term).expect("fixpoint benchmark");
        // The per-derivation use counts expose the branch structure.
        let counts = match &benchmark.term {
            Term::App(f, _) => match &**f {
                Term::Fix(phi, _, body) => variable_use_counts(body, phi),
                _ => unreachable!(),
            },
            _ => unreachable!(),
        };
        // Corollary 5.13 applies when rank·(1−ε) ≤ 1, with ε the probability of
        // making no recursive call (here: the success probability p).
        let p = Rational::from_ratio(1, 2);
        println!(
            "  {:<22} rank {}  call-site counts {:?}  Cor. 5.13 with ε=1/2: {}",
            benchmark.name,
            rank,
            counts,
            epsilon_ra_implies_ast(rank as u64, &p),
        );
    }
}
