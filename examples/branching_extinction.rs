//! Three independent routes to the same termination probability.
//!
//! For non-affine recursion whose counting pattern does not depend on the
//! argument, the program behaves like a Galton–Watson branching process: its
//! termination probability is the extinction probability of that process.
//! This example computes the termination probability of the unreliable-printer
//! programs (Ex. 1.1) by
//!
//! 1. the certified lower bounds of the interval semantics (§3/§7.1),
//! 2. the extinction probability of the branching process (least fixed point
//!    of the offspring generating function),
//! 3. cumulative number-tree weights (Appendix D), which are lower bounds by
//!    Proposition D.5,
//!
//! and checks the AST thresholds against Theorem 5.4.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example branching_extinction
//! ```

use probterm::core::counting::tree_family_weight;
use probterm::core::intervalsem::{lower_bound, LowerBoundConfig};
use probterm::core::numerics::Rational;
use probterm::core::rwalk::{CountingDistribution, GeneratingFunction};
use probterm::core::spcf::catalog;

fn main() {
    println!("non-affine printer (Ex. 1.1 (2)): counting pattern p·δ0 + (1−p)·δ2");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>8}",
        "p", "interval LB", "extinction", "tree weight", "AST?"
    );
    for p in [
        Rational::from_ratio(1, 4),
        Rational::from_ratio(2, 5),
        Rational::from_ratio(1, 2),
        Rational::from_ratio(3, 4),
    ] {
        let counting = CountingDistribution::from_pairs([
            (0, p.clone()),
            (2, Rational::one() - p.clone()),
        ]);
        let generating = GeneratingFunction::new(&counting);

        // Route 1: interval-semantics lower bound on the program itself.
        let program = catalog::printer_nonaffine(p.clone());
        let bound = lower_bound(&program.term, &LowerBoundConfig::default().with_depth(60));

        // Route 2: branching-process extinction probability (exact where the
        // generating equation is quadratic).
        let extinction = generating
            .extinction_probability_exact()
            .map(|q| q.to_decimal_string(10))
            .unwrap_or_else(|| format!("{:.10}", generating.extinction_probability_f64(1e-12, 100_000)));

        // Route 3: cumulative number-tree weights (Prop. D.5).
        let trees = tree_family_weight(&counting, 11);

        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>8}",
            p.to_string(),
            bound.probability.to_decimal_string(10),
            extinction,
            trees.to_decimal_string(10),
            if counting.shifted().is_ast() { "yes" } else { "no" },
        );
    }

    println!();
    println!("three-call-site printer (3print): counting pattern p·δ0 + (1−p)·δ3");
    for p in [Rational::from_ratio(1, 2), Rational::from_ratio(2, 3), Rational::from_ratio(3, 4)] {
        let counting = CountingDistribution::from_pairs([
            (0, p.clone()),
            (3, Rational::one() - p.clone()),
        ]);
        let generating = GeneratingFunction::new(&counting);
        let extinct = generating.extinction_probability_f64(1e-12, 200_000);
        println!(
            "p = {:<6} mean offspring {:<6} extinction ≈ {:.6}  AST: {}",
            p.to_string(),
            generating.mean_offspring().to_string(),
            extinct,
            counting.shifted().is_ast(),
        );
    }

    // The golden-ratio term of Table 1 terminates with probability (√5−1)/2;
    // the branching process reproduces the same number from the counting
    // pattern 1/2·δ0 + 1/2·δ3.
    let gr = CountingDistribution::from_pairs([
        (0, Rational::from_ratio(1, 2)),
        (3, Rational::from_ratio(1, 2)),
    ]);
    let q = GeneratingFunction::new(&gr).extinction_probability_f64(1e-12, 200_000);
    let golden = (5.0f64.sqrt() - 1.0) / 2.0;
    println!();
    println!("gr: extinction ≈ {q:.10}, inverse golden ratio = {golden:.10}");
    assert!((q - golden).abs() < 1e-8);
}
