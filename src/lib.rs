//! Umbrella crate for the `probterm` workspace.
//!
//! This crate hosts the workspace-level integration tests and runnable
//! examples. The actual functionality lives in the `probterm-*` crates and is
//! re-exported through [`probterm_core`].

pub use probterm_core as core;
pub use probterm_explain as explain;
pub use probterm_numerics as numerics;
pub use probterm_service as service;
pub use probterm_spcf as spcf;
