//! `probterm` — command-line interface to the termination analyses.
//!
//! ```text
//! probterm analyze   (<file> | -e <program>)   [--depth N] [--mc RUNS] [--seed N] [--profile]
//! probterm lower     (<file> | -e <program>)   [--depth N] [--deadline-ms N] [--profile]
//! probterm explain   (<file> | -e <program>)   [--format text|json|dot] [--top K] [--depth N] [--deadline-ms N] [--ast]
//! probterm verify    (<file> | -e <program>)   [--profile]
//! probterm simulate  (<file> | -e <program>)   [--runs N] [--steps N] [--seed N] [--cbv] [--profile]
//! probterm serve     [--addr HOST:PORT] [--workers N] [--cache N] [--trace PATH|-] [--slow-ms N]
//!                    [--queue-depth N] [--idle-timeout-ms N] [--inject SPEC]
//! probterm trace-check <file>
//! probterm explain-check <file>
//! probterm catalog
//! ```
//!
//! Programs use the SPCF surface syntax, e.g.
//! `(fix phi x. if sample <= 0.5 then x else phi (phi (x + 1))) 1`.
//!
//! `serve` speaks newline-delimited JSON over TCP when `--addr` is given and
//! over stdin/stdout otherwise; see the README for the wire protocol.

use probterm::core::astver::{build_tree, try_verify_ast_profiled};
use probterm::core::intervalsem::{
    lower_bound, try_explain, try_lower_bound, ExplainConfig, LowerBoundConfig,
};
use probterm::core::{analyze, analyze_ast, AnalysisConfig};
use probterm::numerics::Rational;
use probterm::service::{InjectSpec, Server, ServerConfig, TraceSink};
use probterm::spcf::{
    catalog, estimate_termination, estimate_termination_profiled, parse_term, MonteCarloConfig,
    Strategy, Term,
};
use probterm_telemetry::EngineProfile;
use serde::Value;
use std::process::ExitCode;

struct Options {
    positional: Vec<String>,
    inline: Option<String>,
    depth: usize,
    runs: usize,
    runs_set: bool,
    steps: usize,
    seed: u64,
    cbv: bool,
    deadline_ms: Option<u64>,
    addr: Option<String>,
    workers: usize,
    cache: usize,
    profile: bool,
    trace: Option<String>,
    format: String,
    top: Option<usize>,
    slow_ms: Option<u64>,
    queue_depth: usize,
    idle_timeout_ms: Option<u64>,
    inject: Option<String>,
    ast: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        positional: Vec::new(),
        inline: None,
        depth: 120,
        runs: 10_000,
        runs_set: false,
        steps: 20_000,
        seed: 2021,
        cbv: false,
        deadline_ms: None,
        addr: None,
        workers: 2,
        cache: 1024,
        profile: false,
        trace: None,
        format: "text".to_string(),
        top: None,
        slow_ms: None,
        queue_depth: 256,
        idle_timeout_ms: None,
        inject: None,
        ast: false,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-e" | "--expr" => {
                options.inline = Some(
                    iter.next()
                        .ok_or_else(|| "-e requires a program argument".to_string())?
                        .clone(),
                );
            }
            "--depth" => {
                options.depth = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--depth requires a number".to_string())?;
            }
            "--runs" | "--mc" => {
                options.runs = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--runs requires a number".to_string())?;
                options.runs_set = true;
            }
            "--steps" => {
                options.steps = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--steps requires a number".to_string())?;
            }
            "--seed" => {
                options.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--seed requires a number".to_string())?;
            }
            "--cbv" => options.cbv = true,
            "--profile" => options.profile = true,
            "--ast" => options.ast = true,
            "--format" => {
                options.format = iter
                    .next()
                    .ok_or_else(|| "--format requires text, json or dot".to_string())?
                    .clone();
            }
            "--top" => {
                options.top = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--top requires a number".to_string())?,
                );
            }
            "--slow-ms" => {
                options.slow_ms = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--slow-ms requires a number".to_string())?,
                );
            }
            "--trace" => {
                options.trace = Some(
                    iter.next()
                        .ok_or_else(|| "--trace requires a path (or `-` for stderr)".to_string())?
                        .clone(),
                );
            }
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--deadline-ms requires a number".to_string())?,
                );
            }
            "--addr" => {
                options.addr = Some(
                    iter.next()
                        .ok_or_else(|| "--addr requires HOST:PORT".to_string())?
                        .clone(),
                );
            }
            "--workers" => {
                options.workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--workers requires a positive number".to_string())?;
            }
            "--cache" => {
                options.cache = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--cache requires a number".to_string())?;
            }
            "--queue-depth" => {
                options.queue_depth = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--queue-depth requires a number".to_string())?;
            }
            "--idle-timeout-ms" => {
                options.idle_timeout_ms = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or_else(|| {
                            "--idle-timeout-ms requires a positive number".to_string()
                        })?,
                );
            }
            "--inject" => {
                options.inject = Some(
                    iter.next()
                        .ok_or_else(|| "--inject requires a fault spec".to_string())?
                        .clone(),
                );
            }
            other => options.positional.push(other.to_string()),
        }
    }
    Ok(options)
}

fn load_program(options: &Options) -> Result<(String, Term), String> {
    let source = if let Some(inline) = &options.inline {
        inline.clone()
    } else if let Some(path) = options.positional.first() {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        return Err("no program given: pass a file or -e '<program>'".to_string());
    };
    let term = parse_term(&source).map_err(|e| format!("parse error: {e}"))?;
    Ok((source, term))
}

fn usage() -> &'static str {
    "usage: probterm <analyze|lower|explain|verify|simulate|serve|trace-check|explain-check|catalog> [<file> | -e '<program>'] [options]\n\
     options: --depth N   exploration depth for the lower-bound engine (default 120)\n\
              --deadline-ms N  wall-clock budget for `lower`/`explain`; an expired\n\
                          budget reports the sound partial result computed so far\n\
              --runs N    Monte-Carlo runs for `simulate` (default 10000)\n\
              --steps N   step budget per Monte-Carlo run (default 20000)\n\
              --seed N    RNG seed for Monte-Carlo runs (default 2021)\n\
              --cbv       simulate with call-by-value instead of call-by-name\n\
              --profile   print engine event profiles (steps, event kinds,\n\
                          forks, frontier depth) after the analysis\n\
     explain: --format F  text (default), json (documented probterm-explain-v1\n\
                          schema) or dot (graphviz digraph of the path tree)\n\
              --top K     show only the K largest volume contributions\n\
              --ast       render the AST-verifier execution tree instead of\n\
                          the symbolic path provenance (text or dot)\n\
     serve:   --addr H:P  serve NDJSON over TCP on H:P (default: stdin/stdout)\n\
              --workers N worker threads (default 2)\n\
              --cache N   result-cache capacity, 0 disables (default 1024)\n\
              --trace P   stream one JSONL trace record per request to file P\n\
                          (`-` streams to stderr; stdout carries the protocol)\n\
              --slow-ms N log a structured stderr line for every request whose\n\
                          engine phase exceeds N ms\n\
              --queue-depth N  shed engine requests with a structured\n\
                          `overloaded` reply (carrying retry_after_ms) once N\n\
                          jobs are queued; 0 disables (default 256)\n\
              --idle-timeout-ms N  close TCP connections idle for N ms with a\n\
                          structured `idle_timeout` notice (default: off)\n\
              --inject S  deterministic fault injection for chaos testing,\n\
                          e.g. 'seed=7;panic=@4;slow=0.1:50;drop=@9'\n\
                          (RULE is a probability or @N = every Nth engine run)\n\
     trace-check <file>:  validate a --trace output file (each line parses as\n\
                          JSON, carries the trace schema fields, every `seq` is\n\
                          unique and phase times sum to at most `total_us`)\n\
     explain-check <file>: validate an `explain --format json` artifact (schema\n\
                          fields, exact volume accounting, witness replays)"
}

/// Prints one engine profile under the `--profile` flag.
fn print_profile(label: &str, profile: Option<&EngineProfile>) {
    match profile {
        Some(p) => eprintln!("profile[{label}]: {p}"),
        None => eprintln!("profile[{label}]: (not collected)"),
    }
}

/// `probterm trace-check <file>`: every non-empty line must parse as a JSON
/// object carrying the per-request trace schema, every `seq` must be unique
/// (records land in *completion* order — a shed reply written by the reader
/// thread, or one of several workers finishing early, legitimately outruns
/// an earlier-numbered request still in flight — so uniqueness, not file
/// order, is the invariant: one record per request, none dropped or
/// duplicated), and the four phase timings must sum to at most `total_us`
/// (phases nest inside the end-to-end timer window, and flooring to whole
/// microseconds only shrinks sums). Errors name the first offending line.
/// Prints a one-line summary.
fn trace_check(path: &str) -> Result<usize, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    const REQUIRED: [&str; 8] = [
        "seq", "op", "queue_us", "cache_us", "engine_us", "serialize_us", "total_us", "outcome",
    ];
    const PHASES: [&str; 4] = ["queue_us", "cache_us", "engine_us", "serialize_us"];
    let mut records = 0usize;
    let mut seen_seqs = std::collections::HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{lineno}: not valid JSON: {e}"))?;
        for field in REQUIRED {
            if value.get(field).is_none() {
                return Err(format!("{path}:{lineno}: trace record is missing `{field}`"));
            }
        }
        let number = |field: &str| -> Result<u64, String> {
            value
                .get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{path}:{lineno}: `{field}` is not a non-negative integer"))
        };
        let seq = number("seq")?;
        if !seen_seqs.insert(seq) {
            return Err(format!(
                "{path}:{lineno}: duplicate `seq` {seq} — every request must trace exactly once"
            ));
        }
        let total = number("total_us")?;
        let mut phase_sum = 0u64;
        for phase in PHASES {
            phase_sum = phase_sum.saturating_add(number(phase)?);
        }
        if phase_sum > total {
            return Err(format!(
                "{path}:{lineno}: phase times sum to {phase_sum} µs, exceeding total_us {total}"
            ));
        }
        records += 1;
    }
    Ok(records)
}

/// `probterm explain-check <file>`: validates an `explain --format json`
/// artifact. Checks the `probterm-explain-v1` schema fields, that every
/// present witness replayed on the concrete machine, and the exact rational
/// accounting: shown path volumes re-sum to `probability` (equality when
/// the artifact is untruncated, `<=` under `--top`) and
/// `attributed_mass + unaccounted_mass = 1`. Returns a one-line summary.
fn explain_check(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: Value =
        serde_json::from_str(text.trim()).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let schema = value.get("schema").and_then(Value::as_str);
    if schema != Some(probterm::explain::SCHEMA) {
        return Err(format!(
            "{path}: schema is {schema:?}, expected {:?}",
            probterm::explain::SCHEMA
        ));
    }
    for field in [
        "program", "depth", "complete", "probability", "probability_f64", "expected_steps",
        "elapsed_ms", "paths_total", "paths_shown", "paths", "frontier",
    ] {
        if value.get(field).is_none() {
            return Err(format!("{path}: artifact is missing `{field}`"));
        }
    }
    let rational = |object: &Value, field: &str| -> Result<Rational, String> {
        object
            .get(field)
            .and_then(Value::as_str)
            .and_then(Rational::parse)
            .ok_or_else(|| format!("{path}: `{field}` is not a rational string"))
    };
    let probability = rational(&value, "probability")?;
    let frontier = value.get("frontier").unwrap();
    for field in ["paused", "stuck", "interrupted", "exploration_complete", "depth_histogram"] {
        if frontier.get(field).is_none() {
            return Err(format!("{path}: frontier is missing `{field}`"));
        }
    }
    let attributed = rational(frontier, "attributed_mass")?;
    let unaccounted = rational(frontier, "unaccounted_mass")?;
    if &attributed + &unaccounted != Rational::one() {
        return Err(format!(
            "{path}: attributed_mass {attributed} + unaccounted_mass {unaccounted} != 1"
        ));
    }
    let paths = value
        .get("paths")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: `paths` is not an array"))?;
    let shown = value.get("paths_shown").and_then(Value::as_u64).unwrap_or(0);
    let total = value.get("paths_total").and_then(Value::as_u64).unwrap_or(0);
    if paths.len() as u64 != shown {
        return Err(format!("{path}: paths_shown {shown} != {} paths listed", paths.len()));
    }
    let mut sum = Rational::zero();
    let mut witnesses = 0usize;
    for (i, p) in paths.iter().enumerate() {
        for field in ["index", "volume", "method", "samples", "steps", "branches", "constraints"] {
            if p.get(field).is_none() {
                return Err(format!("{path}: path {i} is missing `{field}`"));
            }
        }
        sum = &sum + &rational(p, "volume")?;
        let witness = p.get("witness").unwrap_or(&Value::Null);
        if !witness.is_null() {
            witnesses += 1;
            if witness.get("replayed").and_then(Value::as_bool) != Some(true) {
                return Err(format!(
                    "{path}: path {i} carries a witness that did not replay"
                ));
            }
        }
    }
    if shown == total && sum != probability {
        return Err(format!(
            "{path}: path volumes sum to {sum}, but probability is {probability}"
        ));
    }
    if shown < total && sum > probability {
        return Err(format!(
            "{path}: truncated path volumes sum to {sum}, exceeding probability {probability}"
        ));
    }
    Ok(format!(
        "ok: {shown}/{total} paths, {witnesses} witnesses replayed, probability {probability}, unaccounted {unaccounted}"
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let options = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "catalog" => {
            println!("Table 1 benchmarks:");
            for b in catalog::table1_benchmarks() {
                println!("  {:<18} {}", b.name, b.description);
            }
            println!("Table 2 benchmarks:");
            for b in catalog::table2_benchmarks() {
                println!("  {:<18} {}", b.name, b.description);
            }
            ExitCode::SUCCESS
        }
        "trace-check" => match options.positional.first() {
            None => {
                eprintln!("error: trace-check requires a file argument\n{}", usage());
                ExitCode::FAILURE
            }
            Some(path) => match trace_check(path) {
                Ok(records) => {
                    println!("ok: {records} trace records in {path}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
        },
        "explain-check" => match options.positional.first() {
            None => {
                eprintln!("error: explain-check requires a file argument\n{}", usage());
                ExitCode::FAILURE
            }
            Some(path) => match explain_check(path) {
                Ok(summary) => {
                    println!("{summary}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
        },
        "serve" => {
            let trace = match options.trace.as_deref() {
                None => None,
                Some("-") => Some(TraceSink::to_stderr()),
                Some(path) => match TraceSink::to_file(path) {
                    Ok(sink) => Some(sink),
                    Err(e) => {
                        eprintln!("error: cannot open trace file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let inject = match options.inject.as_deref().map(InjectSpec::parse) {
                None => None,
                Some(Ok(spec)) => Some(spec),
                Some(Err(e)) => {
                    eprintln!("error: bad --inject spec: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let server = Server::with_trace(
                ServerConfig {
                    workers: options.workers,
                    cache_capacity: options.cache,
                    slow_ms: options.slow_ms,
                    queue_depth: options.queue_depth,
                    idle_timeout_ms: options.idle_timeout_ms,
                    inject,
                    ..Default::default()
                },
                trace,
            );
            let served = match &options.addr {
                Some(addr) => match std::net::TcpListener::bind(addr) {
                    Ok(listener) => {
                        match listener.local_addr() {
                            Ok(bound) => eprintln!("probterm-service listening on {bound}"),
                            Err(_) => eprintln!("probterm-service listening on {addr}"),
                        }
                        server.serve_listener(listener)
                    }
                    Err(e) => {
                        eprintln!("error: cannot bind {addr}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => server.serve_stdio(),
            };
            match served {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "analyze" | "lower" | "explain" | "verify" | "simulate" => {
            let (source, term) = match load_program(&options) {
                Ok(loaded) => loaded,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match command.as_str() {
                "analyze" => {
                    let report = analyze(
                        &term,
                        &AnalysisConfig {
                            lower_bound_depth: options.depth,
                            // `--mc RUNS` opts the cross-check in; it is off
                            // by default because it can dwarf the exact
                            // analyses on divergent programs.
                            monte_carlo_runs: if options.runs_set { options.runs } else { 0 },
                            monte_carlo_steps: options.steps,
                            seed: options.seed,
                            profile: options.profile,
                        },
                    );
                    print!("{report}");
                    if options.profile {
                        print_profile("lower", report.lower_bound.profile.as_ref());
                        print_profile(
                            "verify",
                            report.ast.as_ref().and_then(|v| v.profile.as_ref()),
                        );
                    }
                }
                "lower" => {
                    // Defaults live in LowerBoundConfig; the CLI only layers
                    // its flags on top (same builder the service and the
                    // bench harness use).
                    let config = LowerBoundConfig::default()
                        .with_depth(options.depth)
                        .with_profile(options.profile);
                    let result = match options.deadline_ms {
                        None => lower_bound(&term, &config),
                        Some(ms) => {
                            let deadline =
                                std::time::Instant::now() + std::time::Duration::from_millis(ms);
                            let mut check = |_work: usize| {
                                if std::time::Instant::now() > deadline {
                                    Err(())
                                } else {
                                    Ok(())
                                }
                            };
                            // The partial result is sound (Thm. 3.4): an
                            // expired budget only loses bound mass.
                            let (result, _interrupted) =
                                try_lower_bound(&term, &config, &mut check);
                            result
                        }
                    };
                    println!(
                        "Pterm >= {}  ({} paths, {} unexplored, {} ms{})",
                        result.probability.to_decimal_string(10),
                        result.paths,
                        result.unexplored_paths,
                        result.elapsed.as_millis(),
                        if result.interrupted { ", partial: deadline exceeded" } else { "" }
                    );
                    if options.profile {
                        print_profile("lower", result.profile.as_ref());
                    }
                }
                "explain" => {
                    if options.ast {
                        // The AST-verifier execution tree, through the same
                        // DOT renderer the provenance artifacts use.
                        match build_tree(&term) {
                            Ok(sym) => match options.format.as_str() {
                                "dot" => print!("{}", probterm::explain::exec_tree_dot(&sym.tree)),
                                "text" => print!("{}", sym.tree.render()),
                                other => {
                                    eprintln!(
                                        "error: --ast supports text or dot, not `{other}`"
                                    );
                                    return ExitCode::FAILURE;
                                }
                            },
                            Err(e) => {
                                eprintln!("error: cannot build the execution tree: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    } else {
                        let config = ExplainConfig::default()
                            .with_lower(LowerBoundConfig::default().with_depth(options.depth));
                        let deadline = options.deadline_ms.map(|ms| {
                            std::time::Instant::now() + std::time::Duration::from_millis(ms)
                        });
                        let mut check = |_work: usize| match deadline {
                            Some(d) if std::time::Instant::now() > d => Err(()),
                            _ => Ok(()),
                        };
                        // Under an expired deadline the provenance is still a
                        // sound partial artifact (marked incomplete).
                        let (provenance, _interrupted) = try_explain(&term, &config, &mut check);
                        match options.format.as_str() {
                            "text" => {
                                print!(
                                    "{}",
                                    probterm::explain::render_text(&provenance, options.top)
                                );
                            }
                            "dot" => {
                                print!(
                                    "{}",
                                    probterm::explain::render_dot(&provenance, options.top)
                                );
                            }
                            "json" => {
                                let artifact = probterm::explain::render_json(
                                    &provenance,
                                    &source,
                                    options.depth,
                                    options.top,
                                );
                                match serde_json::to_string_pretty(&artifact) {
                                    Ok(json) => println!("{json}"),
                                    Err(e) => {
                                        eprintln!("error: cannot render JSON: {e}");
                                        return ExitCode::FAILURE;
                                    }
                                }
                            }
                            other => {
                                eprintln!(
                                    "error: unknown format `{other}` (use text, json or dot)"
                                );
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
                "verify" => {
                    let verified = if options.profile {
                        try_verify_ast_profiled(&term, true, &mut || Ok(()))
                    } else {
                        analyze_ast(&term)
                    };
                    match verified {
                        Ok(v) => {
                            println!("{v}");
                            if options.profile {
                                print_profile("verify", v.profile.as_ref());
                            }
                        }
                        Err(e) => {
                            eprintln!("verification not applicable: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                "simulate" => {
                    let config = MonteCarloConfig {
                        runs: options.runs,
                        max_steps: options.steps,
                        seed: options.seed,
                        strategy: if options.cbv {
                            Strategy::CallByValue
                        } else {
                            Strategy::CallByName
                        },
                    };
                    let estimate = if options.profile {
                        let (estimate, profile) = estimate_termination_profiled(&term, &config);
                        print_profile("simulate", Some(&profile));
                        estimate
                    } else {
                        estimate_termination(&term, &config)
                    };
                    println!(
                        "terminated {}/{} runs (estimated Pterm {:.4} ± {:.4}); mean steps {:.1}",
                        estimate.terminated,
                        estimate.runs,
                        estimate.probability(),
                        estimate.confidence_99(),
                        estimate.mean_steps
                    );
                }
                _ => unreachable!(),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
