//! `probterm` — command-line interface to the termination analyses.
//!
//! ```text
//! probterm analyze   (<file> | -e <program>)   [--depth N] [--mc RUNS] [--seed N] [--profile]
//! probterm lower     (<file> | -e <program>)   [--depth N] [--deadline-ms N] [--profile]
//! probterm explain   (<file> | -e <program>)   [--format text|json|dot] [--top K] [--depth N] [--deadline-ms N] [--ast]
//! probterm verify    (<file> | -e <program>)   [--profile]
//! probterm simulate  (<file> | -e <program>)   [--runs N] [--steps N] [--seed N] [--cbv] [--profile]
//! probterm serve     [--addr HOST:PORT] [--workers N] [--cache N] [--trace PATH|-] [--slow-ms N]
//!                    [--queue-depth N] [--idle-timeout-ms N] [--inject SPEC]
//!                    [--shards N] [--cache-path PATH] [--max-conns N]
//! probterm top       --addr HOST:PORT             [--once] [--interval-ms N]
//! probterm bench-report [<history.jsonl>]         [--threshold PCT] [--format text|json] [--strict]
//! probterm trace-check <file>
//! probterm explain-check <file>
//! probterm catalog
//! ```
//!
//! Programs use the SPCF surface syntax, e.g.
//! `(fix phi x. if sample <= 0.5 then x else phi (phi (x + 1))) 1`.
//!
//! `serve` speaks newline-delimited JSON over TCP when `--addr` is given and
//! over stdin/stdout otherwise; see the README for the wire protocol.

use probterm::core::astver::{build_tree, try_verify_ast_profiled};
use probterm::core::intervalsem::{
    lower_bound, try_explain, try_lower_bound, ExplainConfig, LowerBoundConfig,
};
use probterm::core::{analyze, analyze_ast, AnalysisConfig};
use probterm::numerics::Rational;
use probterm::service::{InjectSpec, Op, Server, ServerConfig, TraceSink};
use probterm::spcf::{
    catalog, estimate_termination, estimate_termination_profiled, parse_term, MonteCarloConfig,
    Strategy, Term,
};
use probterm_telemetry::EngineProfile;
use serde::Value;
use std::process::ExitCode;

struct Options {
    positional: Vec<String>,
    inline: Option<String>,
    depth: usize,
    runs: usize,
    runs_set: bool,
    steps: usize,
    seed: u64,
    cbv: bool,
    deadline_ms: Option<u64>,
    addr: Option<String>,
    workers: usize,
    cache: usize,
    profile: bool,
    trace: Option<String>,
    format: String,
    top: Option<usize>,
    slow_ms: Option<u64>,
    queue_depth: usize,
    idle_timeout_ms: Option<u64>,
    inject: Option<String>,
    shards: usize,
    cache_path: Option<String>,
    max_conns: usize,
    ast: bool,
    once: bool,
    interval_ms: u64,
    threshold: f64,
    strict: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        positional: Vec::new(),
        inline: None,
        depth: 120,
        runs: 10_000,
        runs_set: false,
        steps: 20_000,
        seed: 2021,
        cbv: false,
        deadline_ms: None,
        addr: None,
        workers: 2,
        cache: 1024,
        profile: false,
        trace: None,
        format: "text".to_string(),
        top: None,
        slow_ms: None,
        queue_depth: 256,
        idle_timeout_ms: None,
        inject: None,
        shards: 0,
        cache_path: None,
        max_conns: 1024,
        ast: false,
        once: false,
        interval_ms: 1000,
        threshold: 20.0,
        strict: false,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-e" | "--expr" => {
                options.inline = Some(
                    iter.next()
                        .ok_or_else(|| "-e requires a program argument".to_string())?
                        .clone(),
                );
            }
            "--depth" => {
                options.depth = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--depth requires a number".to_string())?;
            }
            "--runs" | "--mc" => {
                options.runs = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--runs requires a number".to_string())?;
                options.runs_set = true;
            }
            "--steps" => {
                options.steps = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--steps requires a number".to_string())?;
            }
            "--seed" => {
                options.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--seed requires a number".to_string())?;
            }
            "--cbv" => options.cbv = true,
            "--profile" => options.profile = true,
            "--ast" => options.ast = true,
            "--once" => options.once = true,
            "--strict" => options.strict = true,
            "--interval-ms" => {
                options.interval_ms = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .ok_or_else(|| "--interval-ms requires a positive number".to_string())?;
            }
            "--threshold" => {
                options.threshold = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t.is_finite() && t >= 0.0)
                    .ok_or_else(|| "--threshold requires a percentage".to_string())?;
            }
            "--format" => {
                options.format = iter
                    .next()
                    .ok_or_else(|| "--format requires text, json or dot".to_string())?
                    .clone();
            }
            "--top" => {
                options.top = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--top requires a number".to_string())?,
                );
            }
            "--slow-ms" => {
                options.slow_ms = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--slow-ms requires a number".to_string())?,
                );
            }
            "--trace" => {
                options.trace = Some(
                    iter.next()
                        .ok_or_else(|| "--trace requires a path (or `-` for stderr)".to_string())?
                        .clone(),
                );
            }
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--deadline-ms requires a number".to_string())?,
                );
            }
            "--addr" => {
                options.addr = Some(
                    iter.next()
                        .ok_or_else(|| "--addr requires HOST:PORT".to_string())?
                        .clone(),
                );
            }
            "--workers" => {
                options.workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--workers requires a positive number".to_string())?;
            }
            "--cache" => {
                options.cache = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--cache requires a number".to_string())?;
            }
            "--queue-depth" => {
                options.queue_depth = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--queue-depth requires a number".to_string())?;
            }
            "--idle-timeout-ms" => {
                options.idle_timeout_ms = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or_else(|| {
                            "--idle-timeout-ms requires a positive number".to_string()
                        })?,
                );
            }
            "--inject" => {
                options.inject = Some(
                    iter.next()
                        .ok_or_else(|| "--inject requires a fault spec".to_string())?
                        .clone(),
                );
            }
            "--shards" => {
                options.shards = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--shards requires a number".to_string())?;
            }
            "--cache-path" => {
                options.cache_path = Some(
                    iter.next()
                        .ok_or_else(|| "--cache-path requires a file path".to_string())?
                        .clone(),
                );
            }
            "--max-conns" => {
                options.max_conns = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--max-conns requires a positive number".to_string())?;
            }
            other => options.positional.push(other.to_string()),
        }
    }
    Ok(options)
}

fn load_program(options: &Options) -> Result<(String, Term), String> {
    let source = if let Some(inline) = &options.inline {
        inline.clone()
    } else if let Some(path) = options.positional.first() {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        return Err("no program given: pass a file or -e '<program>'".to_string());
    };
    let term = parse_term(&source).map_err(|e| format!("parse error: {e}"))?;
    Ok((source, term))
}

fn usage() -> &'static str {
    "usage: probterm <analyze|lower|explain|verify|simulate|serve|top|bench-report|trace-check|explain-check|catalog> [<file> | -e '<program>'] [options]\n\
     options: --depth N   exploration depth for the lower-bound engine (default 120)\n\
              --deadline-ms N  wall-clock budget for `lower`/`explain`; an expired\n\
                          budget reports the sound partial result computed so far\n\
              --runs N    Monte-Carlo runs for `simulate` (default 10000)\n\
              --steps N   step budget per Monte-Carlo run (default 20000)\n\
              --seed N    RNG seed for Monte-Carlo runs (default 2021)\n\
              --cbv       simulate with call-by-value instead of call-by-name\n\
              --profile   print engine event profiles (steps, event kinds,\n\
                          forks, frontier depth) after the analysis\n\
     explain: --format F  text (default), json (documented probterm-explain-v1\n\
                          schema) or dot (graphviz digraph of the path tree)\n\
              --top K     show only the K largest volume contributions\n\
              --ast       render the AST-verifier execution tree instead of\n\
                          the symbolic path provenance (text or dot)\n\
     serve:   --addr H:P  serve NDJSON over TCP on H:P (default: stdin/stdout)\n\
              --workers N worker threads (default 2)\n\
              --cache N   result-cache capacity, 0 disables (default 1024)\n\
              --trace P   stream one JSONL trace record per request to file P\n\
                          (`-` streams to stderr; stdout carries the protocol)\n\
              --slow-ms N log a structured stderr line for every request whose\n\
                          engine phase exceeds N ms\n\
              --queue-depth N  shed engine requests with a structured\n\
                          `overloaded` reply (carrying retry_after_ms) once N\n\
                          jobs are queued; 0 disables (default 256)\n\
              --idle-timeout-ms N  close TCP connections idle for N ms with a\n\
                          structured `idle_timeout` notice (default: off)\n\
              --inject S  deterministic fault injection for chaos testing,\n\
                          e.g. 'seed=7;panic=@4;slow=0.1:50;drop=@9'\n\
                          (RULE is a probability or @N = every Nth engine run)\n\
              --shards N  worker-queue shards; identical requests hash to one\n\
                          shard (default: one shard per worker)\n\
              --cache-path P  persist the result cache to P at graceful drain\n\
                          and preload it at boot (version-stamped snapshot)\n\
              --max-conns N  refuse TCP connections beyond N concurrently\n\
                          open, with a structured `overloaded` reply\n\
                          (default 1024)\n\
     top:     --addr H:P  poll `stats` + `inspect` on a running server and\n\
                          redraw a terminal dashboard (served/cache/shed plus\n\
                          the in-flight request table with live bounds)\n\
              --once      print one snapshot and exit (for scripts and CI)\n\
              --interval-ms N  redraw period (default 1000)\n\
     bench-report [<file>]  read a BENCH_history.jsonl (default ./), compare\n\
                          the latest record of every bench against the median\n\
                          of its earlier records, and flag regressions\n\
                          (throughput down or latency up beyond the threshold)\n\
              --threshold PCT  relative change that counts as a regression\n\
                          (default 20)\n\
              --format F  text (default) or json\n\
              --strict    exit nonzero on regressions (default: warn only)\n\
     trace-check <file>:  validate a --trace output file (each line parses as\n\
                          JSON, carries the trace schema fields with a known\n\
                          `op` name, every `seq` is unique and phase times\n\
                          sum to at most `total_us`)\n\
     explain-check <file>: validate an `explain --format json` artifact (schema\n\
                          fields, exact volume accounting, witness replays)"
}

/// Prints one engine profile under the `--profile` flag.
fn print_profile(label: &str, profile: Option<&EngineProfile>) {
    match profile {
        Some(p) => eprintln!("profile[{label}]: {p}"),
        None => eprintln!("profile[{label}]: (not collected)"),
    }
}

/// `probterm trace-check <file>`: every non-empty line must parse as a JSON
/// object carrying the per-request trace schema, every `seq` must be unique
/// (records land in *completion* order — a shed reply written by the reader
/// thread, or one of several workers finishing early, legitimately outruns
/// an earlier-numbered request still in flight — so uniqueness, not file
/// order, is the invariant: one record per request, none dropped or
/// duplicated), every `op` must name a real service op (or `invalid`, the
/// marker for unparseable requests), and the four phase timings must sum to
/// at most `total_us` (phases nest inside the end-to-end timer window, and
/// flooring to whole microseconds only shrinks sums). Errors name the first
/// offending line. Prints a one-line summary.
fn trace_check(path: &str) -> Result<usize, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    const REQUIRED: [&str; 8] = [
        "seq", "op", "queue_us", "cache_us", "engine_us", "serialize_us", "total_us", "outcome",
    ];
    const PHASES: [&str; 4] = ["queue_us", "cache_us", "engine_us", "serialize_us"];
    let known = known_ops();
    let mut records = 0usize;
    let mut seen_seqs = std::collections::HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{lineno}: not valid JSON: {e}"))?;
        for field in REQUIRED {
            if value.get(field).is_none() {
                return Err(format!("{path}:{lineno}: trace record is missing `{field}`"));
            }
        }
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}:{lineno}: `op` is not a string"))?;
        if !known.contains(&op) {
            return Err(format!(
                "{path}:{lineno}: unknown op `{op}` — not in the service op table"
            ));
        }
        let number = |field: &str| -> Result<u64, String> {
            value
                .get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{path}:{lineno}: `{field}` is not a non-negative integer"))
        };
        let seq = number("seq")?;
        if !seen_seqs.insert(seq) {
            return Err(format!(
                "{path}:{lineno}: duplicate `seq` {seq} — every request must trace exactly once"
            ));
        }
        // Optional marker on replies fanned out to coalesced waiters: when
        // present it must be the boolean `true` (leaders and ordinary
        // requests simply omit it).
        if let Some(coalesced) = value.get("coalesced") {
            if coalesced.as_bool() != Some(true) {
                return Err(format!(
                    "{path}:{lineno}: `coalesced` must be the boolean true when present"
                ));
            }
        }
        let total = number("total_us")?;
        let mut phase_sum = 0u64;
        for phase in PHASES {
            phase_sum = phase_sum.saturating_add(number(phase)?);
        }
        if phase_sum > total {
            return Err(format!(
                "{path}:{lineno}: phase times sum to {phase_sum} µs, exceeding total_us {total}"
            ));
        }
        records += 1;
    }
    Ok(records)
}

/// `probterm explain-check <file>`: validates an `explain --format json`
/// artifact. Checks the `probterm-explain-v1` schema fields, that every
/// present witness replayed on the concrete machine, and the exact rational
/// accounting: shown path volumes re-sum to `probability` (equality when
/// the artifact is untruncated, `<=` under `--top`) and
/// `attributed_mass + unaccounted_mass = 1`. Returns a one-line summary.
fn explain_check(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: Value =
        serde_json::from_str(text.trim()).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let schema = value.get("schema").and_then(Value::as_str);
    if schema != Some(probterm::explain::SCHEMA) {
        return Err(format!(
            "{path}: schema is {schema:?}, expected {:?}",
            probterm::explain::SCHEMA
        ));
    }
    for field in [
        "program", "depth", "complete", "probability", "probability_f64", "expected_steps",
        "elapsed_ms", "paths_total", "paths_shown", "paths", "frontier",
    ] {
        if value.get(field).is_none() {
            return Err(format!("{path}: artifact is missing `{field}`"));
        }
    }
    let rational = |object: &Value, field: &str| -> Result<Rational, String> {
        object
            .get(field)
            .and_then(Value::as_str)
            .and_then(Rational::parse)
            .ok_or_else(|| format!("{path}: `{field}` is not a rational string"))
    };
    let probability = rational(&value, "probability")?;
    let frontier = value.get("frontier").unwrap();
    for field in ["paused", "stuck", "interrupted", "exploration_complete", "depth_histogram"] {
        if frontier.get(field).is_none() {
            return Err(format!("{path}: frontier is missing `{field}`"));
        }
    }
    let attributed = rational(frontier, "attributed_mass")?;
    let unaccounted = rational(frontier, "unaccounted_mass")?;
    if &attributed + &unaccounted != Rational::one() {
        return Err(format!(
            "{path}: attributed_mass {attributed} + unaccounted_mass {unaccounted} != 1"
        ));
    }
    let paths = value
        .get("paths")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: `paths` is not an array"))?;
    let shown = value.get("paths_shown").and_then(Value::as_u64).unwrap_or(0);
    let total = value.get("paths_total").and_then(Value::as_u64).unwrap_or(0);
    if paths.len() as u64 != shown {
        return Err(format!("{path}: paths_shown {shown} != {} paths listed", paths.len()));
    }
    let mut sum = Rational::zero();
    let mut witnesses = 0usize;
    for (i, p) in paths.iter().enumerate() {
        for field in ["index", "volume", "method", "samples", "steps", "branches", "constraints"] {
            if p.get(field).is_none() {
                return Err(format!("{path}: path {i} is missing `{field}`"));
            }
        }
        sum = &sum + &rational(p, "volume")?;
        let witness = p.get("witness").unwrap_or(&Value::Null);
        if !witness.is_null() {
            witnesses += 1;
            if witness.get("replayed").and_then(Value::as_bool) != Some(true) {
                return Err(format!(
                    "{path}: path {i} carries a witness that did not replay"
                ));
            }
        }
    }
    if shown == total && sum != probability {
        return Err(format!(
            "{path}: path volumes sum to {sum}, but probability is {probability}"
        ));
    }
    if shown < total && sum > probability {
        return Err(format!(
            "{path}: truncated path volumes sum to {sum}, exceeding probability {probability}"
        ));
    }
    Ok(format!(
        "ok: {shown}/{total} paths, {witnesses} witnesses replayed, probability {probability}, unaccounted {unaccounted}"
    ))
}

/// Every `op` name a trace record may carry: the service op table plus
/// `invalid`, the marker the tracer writes for unparseable requests. Derived
/// from [`Op::ALL`] so a new service op cannot silently desynchronise the
/// checker.
fn known_ops() -> Vec<&'static str> {
    Op::ALL.iter().map(|op| op.as_str()).chain(std::iter::once("invalid")).collect()
}

// ------------------------------------------------------------------- `top`

/// One round-trip to a running `probterm serve --addr`: sends each request
/// line over a fresh TCP connection and returns the `result` payload of each
/// reply, in order. A reconnect per poll keeps the dashboard robust against
/// server idle timeouts and restarts.
fn service_results(addr: &str, requests: &[&str]) -> Result<Vec<Value>, String> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(|e| format!("cannot configure the connection to {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone the connection to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut results = Vec::with_capacity(requests.len());
    // Strictly request/reply: pipelining both requests would let the worker
    // pool finish them in either order, scrambling which payload is which.
    for request in requests {
        writeln!(writer, "{request}").map_err(|e| format!("cannot send to {addr}: {e}"))?;
        writer.flush().map_err(|e| format!("cannot send to {addr}: {e}"))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("no reply from {addr}: {e}"))?;
        let reply: Value = serde_json::from_str(line.trim())
            .map_err(|e| format!("bad reply from {addr}: {e}"))?;
        if reply.get("ok").and_then(Value::as_bool) != Some(true) {
            return Err(format!("service error replying to `{request}`: {}", line.trim()));
        }
        results.push(reply.get("result").cloned().unwrap_or(Value::Null));
    }
    Ok(results)
}

/// Renders one `top` screen from a `stats` and an `inspect` payload.
fn render_top(addr: &str, stats: &Value, inspect: &Value) -> String {
    use std::fmt::Write as _;
    let u = |v: &Value, field: &str| v.get(field).and_then(Value::as_u64).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "probterm top — {addr}   uptime {:.1}s   workers {}   inflight {}",
        u(stats, "uptime_ms") as f64 / 1000.0,
        u(stats, "workers"),
        u(stats, "inflight"),
    );
    let oldest = match stats.get("oldest_entry_ms").and_then(Value::as_u64) {
        Some(ms) => format!("{ms} ms"),
        None => "-".to_string(),
    };
    let _ = writeln!(
        out,
        "served {}   cache {}/{} entries {} B oldest {oldest}   hits {}   misses {}   shed {}",
        u(stats, "served"),
        u(stats, "cache_entries"),
        u(stats, "cache_capacity"),
        u(stats, "cache_bytes"),
        u(stats, "hits"),
        u(stats, "misses"),
        stats.get("robustness").map_or(0, |r| u(r, "shed")),
    );
    if let Some(Value::Object(ops)) = stats.get("ops") {
        if !ops.is_empty() {
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>6} {:>9} {:>9} {:>9}",
                "op", "reqs", "errs", "p50_us", "p95_us", "p99_us"
            );
            for (name, op) in ops {
                let total = op.get("total_us").cloned().unwrap_or(Value::Null);
                let _ = writeln!(
                    out,
                    "{name:<10} {:>8} {:>6} {:>9} {:>9} {:>9}",
                    u(op, "requests"),
                    u(op, "errors"),
                    u(&total, "p50"),
                    u(&total, "p95"),
                    u(&total, "p99"),
                );
            }
        }
    }
    let _ = writeln!(out, "in-flight ({}):", u(inspect, "count"));
    match inspect.get("inflight").and_then(Value::as_array) {
        Some(rows) if !rows.is_empty() => {
            let _ = writeln!(
                out,
                "  {:<14} {:<9} {:>8} {:<7} {:>12} {:>7} {:>9} {:>10}",
                "id", "op", "age_ms", "phase", "steps", "paths", "frontier", "bound"
            );
            for row in rows {
                let id = row.get("id").map_or_else(
                    || "-".to_string(),
                    |v| match v {
                        Value::Str(s) => s.clone(),
                        Value::Null => "-".to_string(),
                        other => serde_json::to_string(other)
                            .unwrap_or_else(|_| "?".to_string()),
                    },
                );
                let empty = Value::Null;
                let p = row.get("progress").unwrap_or(&empty);
                let _ = writeln!(
                    out,
                    "  {id:<14} {:<9} {:>8} {:<7} {:>12} {:>7} {:>9} {:>10.6}",
                    row.get("op").and_then(Value::as_str).unwrap_or("?"),
                    u(row, "age_ms"),
                    row.get("phase").and_then(Value::as_str).unwrap_or("?"),
                    u(p, "steps"),
                    u(p, "paths"),
                    u(p, "frontier"),
                    p.get("bound").and_then(Value::as_f64).unwrap_or(0.0),
                );
            }
        }
        _ => {
            let _ = writeln!(out, "  (idle)");
        }
    }
    out
}

/// `probterm top`: polls `stats` + `inspect` and redraws a dashboard.
/// `--once` prints a single snapshot without clearing the screen, so CI logs
/// stay readable.
fn top_command(options: &Options) -> Result<(), String> {
    let addr = options
        .addr
        .as_deref()
        .ok_or_else(|| "top requires --addr HOST:PORT of a running `probterm serve`".to_string())?;
    let requests =
        [r#"{"id":"top","op":"stats"}"#, r#"{"id":"top","op":"inspect"}"#];
    loop {
        let results = service_results(addr, &requests)?;
        let screen = render_top(addr, &results[0], &results[1]);
        if options.once {
            print!("{screen}");
            return Ok(());
        }
        // Clear and repaint with plain ANSI; no terminal library needed.
        print!("\x1b[2J\x1b[H{screen}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(options.interval_ms));
    }
}

// ---------------------------------------------------------- `bench-report`

/// One flagged metric: the latest record moved beyond the threshold in the
/// bad direction relative to the baseline (median of earlier records).
#[derive(Debug, Clone, PartialEq)]
struct Regression {
    bench: String,
    metric: String,
    baseline: f64,
    latest: f64,
    delta_pct: f64,
}

/// Outcome of a `bench-report` run over one history file.
#[derive(Debug)]
struct BenchReport {
    records: usize,
    benches: usize,
    compared: usize,
    regressions: Vec<Regression>,
}

/// Whether a larger value of `metric` is better (`Some(true)`), worse
/// (`Some(false)`), or not comparable (`None`). Throughputs want to go up;
/// timings want to go down; anything else (counters, sizes, request totals)
/// has no inherent direction and is skipped rather than guessed.
fn metric_direction(metric: &str) -> Option<bool> {
    let name = metric.rsplit('/').next().unwrap_or(metric);
    if name.contains("per_sec") || name.contains("throughput") || name.contains("speedup") {
        Some(true)
    } else if name.ends_with("_us") || name.ends_with("_ms") {
        Some(false)
    } else {
        None
    }
}

/// Flattens one history record's `metrics` value into `(name, value)` pairs.
/// Arrays of scenario objects (the `service_load` shape) prefix each field
/// with the element's `scenario` name (or its index when unnamed); nested
/// objects flatten with `/`-joined paths; non-numeric leaves are dropped.
fn flatten_metrics(metrics: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match metrics {
        Value::Object(fields) => {
            for (key, value) in fields {
                if key == "scenario" {
                    continue;
                }
                let name = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}/{key}")
                };
                match value.as_f64() {
                    Some(x) => out.push((name, x)),
                    None => flatten_metrics(value, &name, out),
                }
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = item
                    .get("scenario")
                    .and_then(Value::as_str)
                    .map_or_else(|| i.to_string(), str::to_string);
                let nested = if prefix.is_empty() {
                    label
                } else {
                    format!("{prefix}/{label}")
                };
                flatten_metrics(item, &nested, out);
            }
        }
        _ => {}
    }
}

/// Median of a non-empty sample (mean of the middle pair for even sizes).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Compares the latest record of every bench against the median of that
/// bench's earlier records, metric by metric. Metrics without a direction,
/// without history, or with a non-positive baseline (relative change is
/// undefined) are skipped; `compared` counts only actual comparisons.
fn analyze_history(
    records: &[(String, Vec<(String, f64)>)],
    threshold_pct: f64,
) -> BenchReport {
    let mut latest_index = std::collections::HashMap::new();
    for (i, (bench, _)) in records.iter().enumerate() {
        latest_index.insert(bench.as_str(), i);
    }
    let mut benches: Vec<&str> = latest_index.keys().copied().collect();
    benches.sort_unstable();
    let mut compared = 0usize;
    let mut regressions = Vec::new();
    for bench in &benches {
        let last = latest_index[bench];
        let mut history: std::collections::HashMap<&str, Vec<f64>> =
            std::collections::HashMap::new();
        for (b, flat) in &records[..last] {
            if b.as_str() != *bench {
                continue;
            }
            for (metric, value) in flat {
                history.entry(metric.as_str()).or_default().push(*value);
            }
        }
        for (metric, latest) in &records[last].1 {
            let Some(higher_is_better) = metric_direction(metric) else { continue };
            let Some(samples) = history.get_mut(metric.as_str()) else { continue };
            let baseline = median(samples);
            if baseline <= 0.0 {
                continue;
            }
            compared += 1;
            let delta_pct = (latest - baseline) / baseline * 100.0;
            let regressed = if higher_is_better {
                delta_pct < -threshold_pct
            } else {
                delta_pct > threshold_pct
            };
            if regressed {
                regressions.push(Regression {
                    bench: (*bench).to_string(),
                    metric: metric.clone(),
                    baseline,
                    latest: *latest,
                    delta_pct,
                });
            }
        }
    }
    BenchReport { records: records.len(), benches: benches.len(), compared, regressions }
}

/// `probterm bench-report <file>`: parses a `BENCH_history.jsonl` (the
/// append-only log the bench harness writes) and runs the regression
/// sentinel over it. Errors name the first offending line.
fn bench_report(path: &str, threshold_pct: f64) -> Result<BenchReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut parsed = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{lineno}: not valid JSON: {e}"))?;
        let bench = value
            .get("bench")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}:{lineno}: history record is missing `bench`"))?
            .to_string();
        let metrics = value
            .get("metrics")
            .ok_or_else(|| format!("{path}:{lineno}: history record is missing `metrics`"))?;
        let mut flat = Vec::new();
        flatten_metrics(metrics, "", &mut flat);
        parsed.push((bench, flat));
    }
    Ok(analyze_history(&parsed, threshold_pct))
}

/// Renders a [`BenchReport`] as text or JSON.
fn render_bench_report(
    report: &BenchReport,
    threshold_pct: f64,
    format: &str,
) -> Result<String, String> {
    match format {
        "text" => {
            use std::fmt::Write as _;
            let mut out = format!(
                "bench-report: {} records, {} benches, {} metrics compared, {} regressions (threshold {threshold_pct}%)\n",
                report.records,
                report.benches,
                report.compared,
                report.regressions.len(),
            );
            for r in &report.regressions {
                let _ = writeln!(
                    out,
                    "  regression {}/{}: baseline {:.3} -> latest {:.3} ({:+.1}%)",
                    r.bench, r.metric, r.baseline, r.latest, r.delta_pct
                );
            }
            Ok(out)
        }
        "json" => {
            let value = Value::Object(vec![
                ("records".into(), Value::UInt(report.records as u128)),
                ("benches".into(), Value::UInt(report.benches as u128)),
                ("compared".into(), Value::UInt(report.compared as u128)),
                ("threshold_pct".into(), Value::Num(threshold_pct)),
                (
                    "regressions".into(),
                    Value::Array(
                        report
                            .regressions
                            .iter()
                            .map(|r| {
                                Value::Object(vec![
                                    ("bench".into(), Value::Str(r.bench.clone())),
                                    ("metric".into(), Value::Str(r.metric.clone())),
                                    ("baseline".into(), Value::Num(r.baseline)),
                                    ("latest".into(), Value::Num(r.latest)),
                                    ("delta_pct".into(), Value::Num(r.delta_pct)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
            serde_json::to_string(&value)
                .map(|s| s + "\n")
                .map_err(|e| format!("cannot render JSON: {e}"))
        }
        other => Err(format!("unknown format `{other}` (use text or json)")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let options = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "catalog" => {
            println!("Table 1 benchmarks:");
            for b in catalog::table1_benchmarks() {
                println!("  {:<18} {}", b.name, b.description);
            }
            println!("Table 2 benchmarks:");
            for b in catalog::table2_benchmarks() {
                println!("  {:<18} {}", b.name, b.description);
            }
            ExitCode::SUCCESS
        }
        "top" => match top_command(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "bench-report" => {
            let path =
                options.positional.first().map_or("BENCH_history.jsonl", String::as_str);
            let rendered = bench_report(path, options.threshold).and_then(|report| {
                render_bench_report(&report, options.threshold, &options.format)
                    .map(|text| (report, text))
            });
            match rendered {
                Ok((report, text)) => {
                    print!("{text}");
                    if report.regressions.is_empty() {
                        ExitCode::SUCCESS
                    } else if options.strict {
                        eprintln!(
                            "error: {} regression(s) beyond {}% in {path}",
                            report.regressions.len(),
                            options.threshold
                        );
                        ExitCode::FAILURE
                    } else {
                        // Soft gate: noisy benches should not block merges
                        // unless the caller opts into --strict.
                        eprintln!(
                            "warning: {} regression(s) beyond {}% in {path} (pass --strict to fail)",
                            report.regressions.len(),
                            options.threshold
                        );
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trace-check" => match options.positional.first() {
            None => {
                eprintln!("error: trace-check requires a file argument\n{}", usage());
                ExitCode::FAILURE
            }
            Some(path) => match trace_check(path) {
                Ok(records) => {
                    println!("ok: {records} trace records in {path}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
        },
        "explain-check" => match options.positional.first() {
            None => {
                eprintln!("error: explain-check requires a file argument\n{}", usage());
                ExitCode::FAILURE
            }
            Some(path) => match explain_check(path) {
                Ok(summary) => {
                    println!("{summary}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
        },
        "serve" => {
            let trace = match options.trace.as_deref() {
                None => None,
                Some("-") => Some(TraceSink::to_stderr()),
                Some(path) => match TraceSink::to_file(path) {
                    Ok(sink) => Some(sink),
                    Err(e) => {
                        eprintln!("error: cannot open trace file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let inject = match options.inject.as_deref().map(InjectSpec::parse) {
                None => None,
                Some(Ok(spec)) => Some(spec),
                Some(Err(e)) => {
                    eprintln!("error: bad --inject spec: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let server = Server::with_trace(
                ServerConfig {
                    workers: options.workers,
                    cache_capacity: options.cache,
                    slow_ms: options.slow_ms,
                    queue_depth: options.queue_depth,
                    idle_timeout_ms: options.idle_timeout_ms,
                    inject,
                    shards: options.shards,
                    cache_path: options.cache_path.clone(),
                    max_conns: options.max_conns,
                    ..Default::default()
                },
                trace,
            );
            let served = match &options.addr {
                Some(addr) => match std::net::TcpListener::bind(addr) {
                    Ok(listener) => {
                        match listener.local_addr() {
                            Ok(bound) => eprintln!("probterm-service listening on {bound}"),
                            Err(_) => eprintln!("probterm-service listening on {addr}"),
                        }
                        server.serve_listener(listener)
                    }
                    Err(e) => {
                        eprintln!("error: cannot bind {addr}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => server.serve_stdio(),
            };
            match served {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "analyze" | "lower" | "explain" | "verify" | "simulate" => {
            let (source, term) = match load_program(&options) {
                Ok(loaded) => loaded,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match command.as_str() {
                "analyze" => {
                    let report = analyze(
                        &term,
                        &AnalysisConfig {
                            lower_bound_depth: options.depth,
                            // `--mc RUNS` opts the cross-check in; it is off
                            // by default because it can dwarf the exact
                            // analyses on divergent programs.
                            monte_carlo_runs: if options.runs_set { options.runs } else { 0 },
                            monte_carlo_steps: options.steps,
                            seed: options.seed,
                            profile: options.profile,
                        },
                    );
                    print!("{report}");
                    if options.profile {
                        print_profile("lower", report.lower_bound.profile.as_ref());
                        print_profile(
                            "verify",
                            report.ast.as_ref().and_then(|v| v.profile.as_ref()),
                        );
                    }
                }
                "lower" => {
                    // Defaults live in LowerBoundConfig; the CLI only layers
                    // its flags on top (same builder the service and the
                    // bench harness use).
                    let config = LowerBoundConfig::default()
                        .with_depth(options.depth)
                        .with_profile(options.profile);
                    let result = match options.deadline_ms {
                        None => lower_bound(&term, &config),
                        Some(ms) => {
                            let deadline =
                                std::time::Instant::now() + std::time::Duration::from_millis(ms);
                            let mut check = |_work: usize| {
                                if std::time::Instant::now() > deadline {
                                    Err(())
                                } else {
                                    Ok(())
                                }
                            };
                            // The partial result is sound (Thm. 3.4): an
                            // expired budget only loses bound mass.
                            let (result, _interrupted) =
                                try_lower_bound(&term, &config, &mut check);
                            result
                        }
                    };
                    println!(
                        "Pterm >= {}  ({} paths, {} unexplored, {} ms{})",
                        result.probability.to_decimal_string(10),
                        result.paths,
                        result.unexplored_paths,
                        result.elapsed.as_millis(),
                        if result.interrupted { ", partial: deadline exceeded" } else { "" }
                    );
                    if options.profile {
                        print_profile("lower", result.profile.as_ref());
                    }
                }
                "explain" => {
                    if options.ast {
                        // The AST-verifier execution tree, through the same
                        // DOT renderer the provenance artifacts use.
                        match build_tree(&term) {
                            Ok(sym) => match options.format.as_str() {
                                "dot" => print!("{}", probterm::explain::exec_tree_dot(&sym.tree)),
                                "text" => print!("{}", sym.tree.render()),
                                other => {
                                    eprintln!(
                                        "error: --ast supports text or dot, not `{other}`"
                                    );
                                    return ExitCode::FAILURE;
                                }
                            },
                            Err(e) => {
                                eprintln!("error: cannot build the execution tree: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    } else {
                        let config = ExplainConfig::default()
                            .with_lower(LowerBoundConfig::default().with_depth(options.depth));
                        let deadline = options.deadline_ms.map(|ms| {
                            std::time::Instant::now() + std::time::Duration::from_millis(ms)
                        });
                        let mut check = |_work: usize| match deadline {
                            Some(d) if std::time::Instant::now() > d => Err(()),
                            _ => Ok(()),
                        };
                        // Under an expired deadline the provenance is still a
                        // sound partial artifact (marked incomplete).
                        let (provenance, _interrupted) = try_explain(&term, &config, &mut check);
                        match options.format.as_str() {
                            "text" => {
                                print!(
                                    "{}",
                                    probterm::explain::render_text(&provenance, options.top)
                                );
                            }
                            "dot" => {
                                print!(
                                    "{}",
                                    probterm::explain::render_dot(&provenance, options.top)
                                );
                            }
                            "json" => {
                                let artifact = probterm::explain::render_json(
                                    &provenance,
                                    &source,
                                    options.depth,
                                    options.top,
                                );
                                match serde_json::to_string_pretty(&artifact) {
                                    Ok(json) => println!("{json}"),
                                    Err(e) => {
                                        eprintln!("error: cannot render JSON: {e}");
                                        return ExitCode::FAILURE;
                                    }
                                }
                            }
                            other => {
                                eprintln!(
                                    "error: unknown format `{other}` (use text, json or dot)"
                                );
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
                "verify" => {
                    let verified = if options.profile {
                        try_verify_ast_profiled(&term, true, &mut || Ok(()))
                    } else {
                        analyze_ast(&term)
                    };
                    match verified {
                        Ok(v) => {
                            println!("{v}");
                            if options.profile {
                                print_profile("verify", v.profile.as_ref());
                            }
                        }
                        Err(e) => {
                            eprintln!("verification not applicable: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                "simulate" => {
                    let config = MonteCarloConfig {
                        runs: options.runs,
                        max_steps: options.steps,
                        seed: options.seed,
                        strategy: if options.cbv {
                            Strategy::CallByValue
                        } else {
                            Strategy::CallByName
                        },
                    };
                    let estimate = if options.profile {
                        let (estimate, profile) = estimate_termination_profiled(&term, &config);
                        print_profile("simulate", Some(&profile));
                        estimate
                    } else {
                        estimate_termination(&term, &config)
                    };
                    println!(
                        "terminated {}/{} runs (estimated Pterm {:.4} ± {:.4}); mean steps {:.1}",
                        estimate.terminated,
                        estimate.runs,
                        estimate.probability(),
                        estimate.confidence_99(),
                        estimate.mean_steps
                    );
                }
                _ => unreachable!(),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("probterm_cli_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn trace_check_rejects_unknown_ops_with_line_numbers() {
        let path = temp_path("trace_ops");
        let good = r#"{"seq":1,"id":1,"op":"lower","queue_us":1,"cache_us":1,"engine_us":1,"serialize_us":1,"total_us":10,"outcome":"ok"}"#;
        let bad = r#"{"seq":2,"id":2,"op":"mystery","queue_us":1,"cache_us":1,"engine_us":1,"serialize_us":1,"total_us":10,"outcome":"ok"}"#;
        std::fs::write(&path, format!("{good}\n{bad}\n")).unwrap();
        let err = trace_check(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains(":2:"), "error names the offending line: {err}");
        assert!(err.contains("unknown op `mystery`"), "{err}");
        // Every op the service can emit — including `invalid` for parse
        // failures and the `inspect` control op — passes.
        let ops = known_ops();
        assert!(ops.contains(&"inspect"));
        assert!(ops.contains(&"invalid"));
        let mut lines = String::new();
        for (i, op) in ops.iter().enumerate() {
            lines.push_str(&format!(
                r#"{{"seq":{i},"op":"{op}","queue_us":0,"cache_us":0,"engine_us":0,"serialize_us":0,"total_us":1,"outcome":"ok"}}"#
            ));
            lines.push('\n');
        }
        std::fs::write(&path, lines).unwrap();
        assert_eq!(trace_check(path.to_str().unwrap()).unwrap(), ops.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_check_validates_the_optional_coalesced_marker() {
        let path = temp_path("trace_coalesced");
        // Fanned-out waiter replies carry `coalesced: true`; plain records
        // omit the field entirely.
        let fanned = r#"{"seq":1,"id":1,"op":"lower","queue_us":0,"cache_us":0,"engine_us":0,"serialize_us":0,"total_us":10,"outcome":"ok","cache":"coalesced","coalesced":true}"#;
        let plain = r#"{"seq":2,"id":2,"op":"lower","queue_us":1,"cache_us":1,"engine_us":1,"serialize_us":1,"total_us":10,"outcome":"ok"}"#;
        std::fs::write(&path, format!("{fanned}\n{plain}\n")).unwrap();
        assert_eq!(trace_check(path.to_str().unwrap()).unwrap(), 2);
        // Anything but the boolean true is a schema violation.
        let bogus = r#"{"seq":3,"op":"lower","queue_us":0,"cache_us":0,"engine_us":0,"serialize_us":0,"total_us":1,"outcome":"ok","coalesced":"yes"}"#;
        std::fs::write(&path, format!("{fanned}\n{bogus}\n")).unwrap();
        let err = trace_check(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains(":2:"), "{err}");
        assert!(err.contains("coalesced"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn metric_directions_follow_the_name() {
        assert_eq!(metric_direction("hot/requests_per_sec"), Some(true));
        assert_eq!(metric_direction("overload/resume_speedup"), Some(true));
        assert_eq!(metric_direction("overload/latency_p99_us"), Some(false));
        assert_eq!(metric_direction("elapsed_ms"), Some(false));
        assert_eq!(metric_direction("hot/cache_hits"), None);
        assert_eq!(metric_direction("shed"), None);
    }

    #[test]
    fn bench_report_flags_an_injected_regression() {
        let path = temp_path("bench_reg");
        let mut lines = String::new();
        // Three healthy rounds, then a round with p95 latency tripled and
        // throughput halved — both must be flagged at the default threshold.
        for p95 in [100, 110, 90] {
            lines.push_str(&format!(
                r#"{{"ts":1,"git_rev":"aaa","bench":"svc","metrics":[{{"scenario":"hot","latency_p95_us":{p95},"requests_per_sec":1000.0,"cache_hits":5}}]}}"#
            ));
            lines.push('\n');
        }
        lines.push_str(
            r#"{"ts":2,"git_rev":"bbb","bench":"svc","metrics":[{"scenario":"hot","latency_p95_us":300,"requests_per_sec":450.0,"cache_hits":9}]}"#,
        );
        lines.push('\n');
        std::fs::write(&path, &lines).unwrap();
        let report = bench_report(path.to_str().unwrap(), 20.0).unwrap();
        assert_eq!(report.records, 4);
        assert_eq!(report.benches, 1);
        assert_eq!(report.compared, 2, "cache_hits has no direction and is skipped");
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
        let latency = report
            .regressions
            .iter()
            .find(|r| r.metric == "hot/latency_p95_us")
            .expect("latency regression flagged");
        assert_eq!(latency.baseline, 100.0, "median of 100/110/90");
        assert_eq!(latency.latest, 300.0);
        assert!(latency.delta_pct > 100.0);
        let throughput = report
            .regressions
            .iter()
            .find(|r| r.metric == "hot/requests_per_sec")
            .expect("throughput regression flagged");
        assert!(throughput.delta_pct < -20.0);
        // A loose enough threshold flags nothing.
        let quiet = bench_report(path.to_str().unwrap(), 250.0).unwrap();
        assert!(quiet.regressions.is_empty(), "{:?}", quiet.regressions);
        // Rendering: the text report names the regression; the JSON report
        // parses and carries it.
        let text = render_bench_report(&report, 20.0, "text").unwrap();
        assert!(text.contains("regression svc/hot/latency_p95_us"), "{text}");
        let json: Value =
            serde_json::from_str(&render_bench_report(&report, 20.0, "json").unwrap()).unwrap();
        assert_eq!(json.get("records").and_then(Value::as_u64), Some(4));
        assert_eq!(
            json.get("regressions").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        assert!(render_bench_report(&report, 20.0, "dot").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bench_report_passes_on_the_committed_history() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_history.jsonl");
        let report = bench_report(path, 20.0).unwrap();
        assert!(report.records >= 1);
        // With a single record per bench there is no baseline yet; with
        // more, the committed history must be regression-free.
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
    }

    #[test]
    fn render_top_reads_stats_and_inspect_payloads() {
        let reply: Value = serde_json::from_str(
            r#"{"id":"x","ok":true,"op":"stats","elapsed_ms":0,"result":{"uptime_ms":508,"served":1,"hits":0,"misses":0,"inflight":0,"cache_entries":3,"cache_capacity":1024,"cache_bytes":2048,"oldest_entry_ms":null,"workers":2,"robustness":{"shed":4},"ops":{"lower":{"requests":7,"errors":0,"total_us":{"p50":10,"p95":20,"p99":30}}}}}"#,
        )
        .unwrap();
        let stats = reply.get("result").cloned().unwrap();
        let inspect: Value = serde_json::from_str(
            r#"{"count":1,"inflight":[{"id":"slow-1","op":"lower","age_ms":210,"phase":"engine","progress":{"steps":1234,"paths":17,"frontier":41,"max_depth":9,"bound":0.912345,"bound_scaled":912345000,"elapsed_ms":210}}]}"#,
        )
        .unwrap();
        let screen = render_top("127.0.0.1:1", &stats, &inspect);
        assert!(screen.contains("uptime 0.5s"), "{screen}");
        assert!(screen.contains("workers 2"), "{screen}");
        assert!(screen.contains("cache 3/1024 entries 2048 B"), "{screen}");
        assert!(screen.contains("shed 4"), "{screen}");
        assert!(screen.contains("lower"), "{screen}");
        assert!(screen.contains("in-flight (1):"), "{screen}");
        assert!(screen.contains("slow-1"), "{screen}");
        assert!(screen.contains("engine"), "{screen}");
        assert!(screen.contains("0.912345"), "{screen}");
    }

    #[test]
    fn median_is_robust_to_order_and_even_sizes() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn flatten_handles_scenario_arrays_and_plain_objects() {
        let nested: Value = serde_json::from_str(
            r#"{"rows":[{"scenario":"hot","latency_p50_us":5},{"latency_p50_us":7}],"total_ms":12}"#,
        )
        .unwrap();
        let mut flat = Vec::new();
        flatten_metrics(&nested, "", &mut flat);
        flat.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            flat,
            vec![
                ("rows/1/latency_p50_us".to_string(), 7.0),
                ("rows/hot/latency_p50_us".to_string(), 5.0),
                ("total_ms".to_string(), 12.0),
            ]
        );
    }
}
