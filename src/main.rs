//! `probterm` — command-line interface to the termination analyses.
//!
//! ```text
//! probterm analyze   (<file> | -e <program>)   [--depth N] [--mc RUNS] [--seed N] [--profile]
//! probterm lower     (<file> | -e <program>)   [--depth N] [--deadline-ms N] [--profile]
//! probterm verify    (<file> | -e <program>)   [--profile]
//! probterm simulate  (<file> | -e <program>)   [--runs N] [--steps N] [--seed N] [--cbv] [--profile]
//! probterm serve     [--addr HOST:PORT] [--workers N] [--cache N] [--trace PATH|-]
//! probterm trace-check <file>
//! probterm catalog
//! ```
//!
//! Programs use the SPCF surface syntax, e.g.
//! `(fix phi x. if sample <= 0.5 then x else phi (phi (x + 1))) 1`.
//!
//! `serve` speaks newline-delimited JSON over TCP when `--addr` is given and
//! over stdin/stdout otherwise; see the README for the wire protocol.

use probterm::core::astver::try_verify_ast_profiled;
use probterm::core::intervalsem::{lower_bound, try_lower_bound, LowerBoundConfig};
use probterm::core::{analyze, analyze_ast, AnalysisConfig};
use probterm::service::{Server, ServerConfig, TraceSink};
use probterm::spcf::{
    catalog, estimate_termination, estimate_termination_profiled, parse_term, MonteCarloConfig,
    Strategy, Term,
};
use probterm_telemetry::EngineProfile;
use std::process::ExitCode;

struct Options {
    positional: Vec<String>,
    inline: Option<String>,
    depth: usize,
    runs: usize,
    runs_set: bool,
    steps: usize,
    seed: u64,
    cbv: bool,
    deadline_ms: Option<u64>,
    addr: Option<String>,
    workers: usize,
    cache: usize,
    profile: bool,
    trace: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        positional: Vec::new(),
        inline: None,
        depth: 120,
        runs: 10_000,
        runs_set: false,
        steps: 20_000,
        seed: 2021,
        cbv: false,
        deadline_ms: None,
        addr: None,
        workers: 2,
        cache: 1024,
        profile: false,
        trace: None,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-e" | "--expr" => {
                options.inline = Some(
                    iter.next()
                        .ok_or_else(|| "-e requires a program argument".to_string())?
                        .clone(),
                );
            }
            "--depth" => {
                options.depth = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--depth requires a number".to_string())?;
            }
            "--runs" | "--mc" => {
                options.runs = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--runs requires a number".to_string())?;
                options.runs_set = true;
            }
            "--steps" => {
                options.steps = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--steps requires a number".to_string())?;
            }
            "--seed" => {
                options.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--seed requires a number".to_string())?;
            }
            "--cbv" => options.cbv = true,
            "--profile" => options.profile = true,
            "--trace" => {
                options.trace = Some(
                    iter.next()
                        .ok_or_else(|| "--trace requires a path (or `-` for stderr)".to_string())?
                        .clone(),
                );
            }
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--deadline-ms requires a number".to_string())?,
                );
            }
            "--addr" => {
                options.addr = Some(
                    iter.next()
                        .ok_or_else(|| "--addr requires HOST:PORT".to_string())?
                        .clone(),
                );
            }
            "--workers" => {
                options.workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--workers requires a positive number".to_string())?;
            }
            "--cache" => {
                options.cache = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--cache requires a number".to_string())?;
            }
            other => options.positional.push(other.to_string()),
        }
    }
    Ok(options)
}

fn load_program(options: &Options) -> Result<Term, String> {
    let source = if let Some(inline) = &options.inline {
        inline.clone()
    } else if let Some(path) = options.positional.first() {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        return Err("no program given: pass a file or -e '<program>'".to_string());
    };
    parse_term(&source).map_err(|e| format!("parse error: {e}"))
}

fn usage() -> &'static str {
    "usage: probterm <analyze|lower|verify|simulate|serve|trace-check|catalog> [<file> | -e '<program>'] [options]\n\
     options: --depth N   exploration depth for the lower-bound engine (default 120)\n\
              --deadline-ms N  wall-clock budget for `lower`; an expired budget\n\
                          reports the sound partial bound computed so far\n\
              --runs N    Monte-Carlo runs for `simulate` (default 10000)\n\
              --steps N   step budget per Monte-Carlo run (default 20000)\n\
              --seed N    RNG seed for Monte-Carlo runs (default 2021)\n\
              --cbv       simulate with call-by-value instead of call-by-name\n\
              --profile   print engine event profiles (steps, event kinds,\n\
                          forks, frontier depth) after the analysis\n\
     serve:   --addr H:P  serve NDJSON over TCP on H:P (default: stdin/stdout)\n\
              --workers N worker threads (default 2)\n\
              --cache N   result-cache capacity, 0 disables (default 1024)\n\
              --trace P   stream one JSONL trace record per request to file P\n\
                          (`-` streams to stderr; stdout carries the protocol)\n\
     trace-check <file>:  validate a --trace output file (each line parses as\n\
                          JSON and carries the trace schema fields)"
}

/// Prints one engine profile under the `--profile` flag.
fn print_profile(label: &str, profile: Option<&EngineProfile>) {
    match profile {
        Some(p) => eprintln!("profile[{label}]: {p}"),
        None => eprintln!("profile[{label}]: (not collected)"),
    }
}

/// `probterm trace-check <file>`: every non-empty line must parse as a JSON
/// object carrying the per-request trace schema. Prints a one-line summary.
fn trace_check(path: &str) -> Result<usize, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    const REQUIRED: [&str; 8] = [
        "seq", "op", "queue_us", "cache_us", "engine_us", "serialize_us", "total_us", "outcome",
    ];
    let mut records = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: not valid JSON: {e}", lineno + 1))?;
        for field in REQUIRED {
            if value.get(field).is_none() {
                return Err(format!(
                    "{path}:{}: trace record is missing `{field}`",
                    lineno + 1
                ));
            }
        }
        records += 1;
    }
    Ok(records)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let options = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "catalog" => {
            println!("Table 1 benchmarks:");
            for b in catalog::table1_benchmarks() {
                println!("  {:<18} {}", b.name, b.description);
            }
            println!("Table 2 benchmarks:");
            for b in catalog::table2_benchmarks() {
                println!("  {:<18} {}", b.name, b.description);
            }
            ExitCode::SUCCESS
        }
        "trace-check" => match options.positional.first() {
            None => {
                eprintln!("error: trace-check requires a file argument\n{}", usage());
                ExitCode::FAILURE
            }
            Some(path) => match trace_check(path) {
                Ok(records) => {
                    println!("ok: {records} trace records in {path}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
        },
        "serve" => {
            let trace = match options.trace.as_deref() {
                None => None,
                Some("-") => Some(TraceSink::to_stderr()),
                Some(path) => match TraceSink::to_file(path) {
                    Ok(sink) => Some(sink),
                    Err(e) => {
                        eprintln!("error: cannot open trace file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let server = Server::with_trace(
                ServerConfig {
                    workers: options.workers,
                    cache_capacity: options.cache,
                    ..Default::default()
                },
                trace,
            );
            let served = match &options.addr {
                Some(addr) => match std::net::TcpListener::bind(addr) {
                    Ok(listener) => {
                        match listener.local_addr() {
                            Ok(bound) => eprintln!("probterm-service listening on {bound}"),
                            Err(_) => eprintln!("probterm-service listening on {addr}"),
                        }
                        server.serve_listener(listener)
                    }
                    Err(e) => {
                        eprintln!("error: cannot bind {addr}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => server.serve_stdio(),
            };
            match served {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "analyze" | "lower" | "verify" | "simulate" => {
            let term = match load_program(&options) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match command.as_str() {
                "analyze" => {
                    let report = analyze(
                        &term,
                        &AnalysisConfig {
                            lower_bound_depth: options.depth,
                            // `--mc RUNS` opts the cross-check in; it is off
                            // by default because it can dwarf the exact
                            // analyses on divergent programs.
                            monte_carlo_runs: if options.runs_set { options.runs } else { 0 },
                            monte_carlo_steps: options.steps,
                            seed: options.seed,
                            profile: options.profile,
                        },
                    );
                    print!("{report}");
                    if options.profile {
                        print_profile("lower", report.lower_bound.profile.as_ref());
                        print_profile(
                            "verify",
                            report.ast.as_ref().and_then(|v| v.profile.as_ref()),
                        );
                    }
                }
                "lower" => {
                    // Defaults live in LowerBoundConfig; the CLI only layers
                    // its flags on top (same builder the service and the
                    // bench harness use).
                    let config = LowerBoundConfig::default()
                        .with_depth(options.depth)
                        .with_profile(options.profile);
                    let result = match options.deadline_ms {
                        None => lower_bound(&term, &config),
                        Some(ms) => {
                            let deadline =
                                std::time::Instant::now() + std::time::Duration::from_millis(ms);
                            let mut check = |_work: usize| {
                                if std::time::Instant::now() > deadline {
                                    Err(())
                                } else {
                                    Ok(())
                                }
                            };
                            // The partial result is sound (Thm. 3.4): an
                            // expired budget only loses bound mass.
                            let (result, _interrupted) =
                                try_lower_bound(&term, &config, &mut check);
                            result
                        }
                    };
                    println!(
                        "Pterm >= {}  ({} paths, {} unexplored, {} ms{})",
                        result.probability.to_decimal_string(10),
                        result.paths,
                        result.unexplored_paths,
                        result.elapsed.as_millis(),
                        if result.interrupted { ", partial: deadline exceeded" } else { "" }
                    );
                    if options.profile {
                        print_profile("lower", result.profile.as_ref());
                    }
                }
                "verify" => {
                    let verified = if options.profile {
                        try_verify_ast_profiled(&term, true, &mut || Ok(()))
                    } else {
                        analyze_ast(&term)
                    };
                    match verified {
                        Ok(v) => {
                            println!("{v}");
                            if options.profile {
                                print_profile("verify", v.profile.as_ref());
                            }
                        }
                        Err(e) => {
                            eprintln!("verification not applicable: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                "simulate" => {
                    let config = MonteCarloConfig {
                        runs: options.runs,
                        max_steps: options.steps,
                        seed: options.seed,
                        strategy: if options.cbv {
                            Strategy::CallByValue
                        } else {
                            Strategy::CallByName
                        },
                    };
                    let estimate = if options.profile {
                        let (estimate, profile) = estimate_termination_profiled(&term, &config);
                        print_profile("simulate", Some(&profile));
                        estimate
                    } else {
                        estimate_termination(&term, &config)
                    };
                    println!(
                        "terminated {}/{} runs (estimated Pterm {:.4} ± {:.4}); mean steps {:.1}",
                        estimate.terminated,
                        estimate.runs,
                        estimate.probability(),
                        estimate.confidence_99(),
                        estimate.mean_steps
                    );
                }
                _ => unreachable!(),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
