//! `probterm` — command-line interface to the termination analyses.
//!
//! ```text
//! probterm analyze   (<file> | -e <program>)   [--depth N] [--mc RUNS] [--seed N]
//! probterm lower     (<file> | -e <program>)   [--depth N] [--deadline-ms N]
//! probterm verify    (<file> | -e <program>)
//! probterm simulate  (<file> | -e <program>)   [--runs N] [--steps N] [--seed N] [--cbv]
//! probterm serve     [--addr HOST:PORT] [--workers N] [--cache N]
//! probterm catalog
//! ```
//!
//! Programs use the SPCF surface syntax, e.g.
//! `(fix phi x. if sample <= 0.5 then x else phi (phi (x + 1))) 1`.
//!
//! `serve` speaks newline-delimited JSON over TCP when `--addr` is given and
//! over stdin/stdout otherwise; see the README for the wire protocol.

use probterm::core::intervalsem::{lower_bound, try_lower_bound, LowerBoundConfig};
use probterm::core::{analyze, analyze_ast, AnalysisConfig};
use probterm::service::{Server, ServerConfig};
use probterm::spcf::{catalog, estimate_termination, parse_term, MonteCarloConfig, Strategy, Term};
use std::process::ExitCode;

struct Options {
    positional: Vec<String>,
    inline: Option<String>,
    depth: usize,
    runs: usize,
    runs_set: bool,
    steps: usize,
    seed: u64,
    cbv: bool,
    deadline_ms: Option<u64>,
    addr: Option<String>,
    workers: usize,
    cache: usize,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        positional: Vec::new(),
        inline: None,
        depth: 120,
        runs: 10_000,
        runs_set: false,
        steps: 20_000,
        seed: 2021,
        cbv: false,
        deadline_ms: None,
        addr: None,
        workers: 2,
        cache: 1024,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-e" | "--expr" => {
                options.inline = Some(
                    iter.next()
                        .ok_or_else(|| "-e requires a program argument".to_string())?
                        .clone(),
                );
            }
            "--depth" => {
                options.depth = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--depth requires a number".to_string())?;
            }
            "--runs" | "--mc" => {
                options.runs = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--runs requires a number".to_string())?;
                options.runs_set = true;
            }
            "--steps" => {
                options.steps = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--steps requires a number".to_string())?;
            }
            "--seed" => {
                options.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--seed requires a number".to_string())?;
            }
            "--cbv" => options.cbv = true,
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--deadline-ms requires a number".to_string())?,
                );
            }
            "--addr" => {
                options.addr = Some(
                    iter.next()
                        .ok_or_else(|| "--addr requires HOST:PORT".to_string())?
                        .clone(),
                );
            }
            "--workers" => {
                options.workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--workers requires a positive number".to_string())?;
            }
            "--cache" => {
                options.cache = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--cache requires a number".to_string())?;
            }
            other => options.positional.push(other.to_string()),
        }
    }
    Ok(options)
}

fn load_program(options: &Options) -> Result<Term, String> {
    let source = if let Some(inline) = &options.inline {
        inline.clone()
    } else if let Some(path) = options.positional.first() {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        return Err("no program given: pass a file or -e '<program>'".to_string());
    };
    parse_term(&source).map_err(|e| format!("parse error: {e}"))
}

fn usage() -> &'static str {
    "usage: probterm <analyze|lower|verify|simulate|serve|catalog> [<file> | -e '<program>'] [options]\n\
     options: --depth N   exploration depth for the lower-bound engine (default 120)\n\
              --deadline-ms N  wall-clock budget for `lower`; an expired budget\n\
                          reports the sound partial bound computed so far\n\
              --runs N    Monte-Carlo runs for `simulate` (default 10000)\n\
              --steps N   step budget per Monte-Carlo run (default 20000)\n\
              --seed N    RNG seed for Monte-Carlo runs (default 2021)\n\
              --cbv       simulate with call-by-value instead of call-by-name\n\
     serve:   --addr H:P  serve NDJSON over TCP on H:P (default: stdin/stdout)\n\
              --workers N worker threads (default 2)\n\
              --cache N   result-cache capacity, 0 disables (default 1024)"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let options = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "catalog" => {
            println!("Table 1 benchmarks:");
            for b in catalog::table1_benchmarks() {
                println!("  {:<18} {}", b.name, b.description);
            }
            println!("Table 2 benchmarks:");
            for b in catalog::table2_benchmarks() {
                println!("  {:<18} {}", b.name, b.description);
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let server = Server::new(ServerConfig {
                workers: options.workers,
                cache_capacity: options.cache,
                ..Default::default()
            });
            let served = match &options.addr {
                Some(addr) => match std::net::TcpListener::bind(addr) {
                    Ok(listener) => {
                        match listener.local_addr() {
                            Ok(bound) => eprintln!("probterm-service listening on {bound}"),
                            Err(_) => eprintln!("probterm-service listening on {addr}"),
                        }
                        server.serve_listener(listener)
                    }
                    Err(e) => {
                        eprintln!("error: cannot bind {addr}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => server.serve_stdio(),
            };
            match served {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "analyze" | "lower" | "verify" | "simulate" => {
            let term = match load_program(&options) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match command.as_str() {
                "analyze" => {
                    let report = analyze(
                        &term,
                        &AnalysisConfig {
                            lower_bound_depth: options.depth,
                            // `--mc RUNS` opts the cross-check in; it is off
                            // by default because it can dwarf the exact
                            // analyses on divergent programs.
                            monte_carlo_runs: if options.runs_set { options.runs } else { 0 },
                            monte_carlo_steps: options.steps,
                            seed: options.seed,
                        },
                    );
                    print!("{report}");
                }
                "lower" => {
                    // Defaults live in LowerBoundConfig; the CLI only layers
                    // its flags on top (same builder the service and the
                    // bench harness use).
                    let config = LowerBoundConfig::default().with_depth(options.depth);
                    let result = match options.deadline_ms {
                        None => lower_bound(&term, &config),
                        Some(ms) => {
                            let deadline =
                                std::time::Instant::now() + std::time::Duration::from_millis(ms);
                            let mut check = |_work: usize| {
                                if std::time::Instant::now() > deadline {
                                    Err(())
                                } else {
                                    Ok(())
                                }
                            };
                            // The partial result is sound (Thm. 3.4): an
                            // expired budget only loses bound mass.
                            let (result, _interrupted) =
                                try_lower_bound(&term, &config, &mut check);
                            result
                        }
                    };
                    println!(
                        "Pterm >= {}  ({} paths, {} unexplored, {} ms{})",
                        result.probability.to_decimal_string(10),
                        result.paths,
                        result.unexplored_paths,
                        result.elapsed.as_millis(),
                        if result.interrupted { ", partial: deadline exceeded" } else { "" }
                    );
                }
                "verify" => match analyze_ast(&term) {
                    Ok(v) => println!("{v}"),
                    Err(e) => {
                        eprintln!("verification not applicable: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                "simulate" => {
                    let estimate = estimate_termination(
                        &term,
                        &MonteCarloConfig {
                            runs: options.runs,
                            max_steps: options.steps,
                            seed: options.seed,
                            strategy: if options.cbv {
                                Strategy::CallByValue
                            } else {
                                Strategy::CallByName
                            },
                        },
                    );
                    println!(
                        "terminated {}/{} runs (estimated Pterm {:.4} ± {:.4}); mean steps {:.1}",
                        estimate.terminated,
                        estimate.runs,
                        estimate.probability(),
                        estimate.confidence_99(),
                        estimate.mean_steps
                    );
                }
                _ => unreachable!(),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
