#!/usr/bin/env bash
# Tier-1 verification for the probterm workspace.
#
# `cargo test` alone stops at the first failing test *binary*, silently
# skipping every alphabetically-later suite; `--no-fail-fast` makes a red run
# report the full picture. The release build comes first so optimized
# artifacts exist for benchmarking even when a test fails.
set -uo pipefail

cd "$(dirname "$0")/.."

status=0

# --workspace is load-bearing: the root manifest is a workspace *and* a
# package, so a bare `cargo test` silently tests only the root package.
echo "== cargo build --release --workspace =="
cargo build --release --workspace --offline || status=$?

echo "== cargo test -q --workspace --no-fail-fast =="
cargo test -q --workspace --offline --no-fail-fast || status=$?

if [ "$status" -ne 0 ]; then
    echo "CI: FAILED (status $status)"
else
    echo "CI: OK"
fi
exit "$status"
