#!/usr/bin/env bash
# Tier-1 verification for the probterm workspace.
#
# `cargo test` alone stops at the first failing test *binary*, silently
# skipping every alphabetically-later suite; `--no-fail-fast` makes a red run
# report the full picture. The release build comes first so optimized
# artifacts exist for benchmarking even when a test fails.
set -uo pipefail

cd "$(dirname "$0")/.."

status=0

# --workspace is load-bearing: the root manifest is a workspace *and* a
# package, so a bare `cargo test` silently tests only the root package.
echo "== cargo build --release --workspace =="
cargo build --release --workspace --offline || status=$?

echo "== cargo test -q --workspace --no-fail-fast =="
cargo test -q --workspace --offline --no-fail-fast || status=$?

# ---------------------------------------------------------------------------
# Differential suites: the environment machine vs. the substitution-based
# reference steppers, for the concrete evaluator and for symbolic
# exploration. Both run inside the workspace pass above; re-running them
# explicitly keeps a red diff from hiding among hundreds of other tests.
echo "== differential suites (machine vs substitution reference) =="
cargo test -q --offline -p probterm-spcf --test machine_differential || status=$?
cargo test -q --offline -p probterm-intervalsem --test symbolic_differential || status=$?

# ---------------------------------------------------------------------------
# CLI smoke test: `probterm lower` (complete and deadline-cut partial) and
# `probterm verify` against known answers, each bounded by a timeout.
echo "== CLI smoke test =="
cli_status=0
if [ -x target/release/probterm ]; then
    lower_out=$(timeout 60 target/release/probterm lower \
        -e '(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0' --depth 25)
    case "$lower_out" in
        *"Pterm >= 0.9"*) echo "cli ok: lower ($lower_out)" ;;
        *) echo "cli FAILED: lower: $lower_out"; cli_status=1 ;;
    esac
    partial_out=$(timeout 60 target/release/probterm lower \
        -e '(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0' \
        --depth 4000 --deadline-ms 100)
    case "$partial_out" in
        *"partial: deadline exceeded"*) echo "cli ok: lower --deadline-ms ($partial_out)" ;;
        *) echo "cli FAILED: partial lower: $partial_out"; cli_status=1 ;;
    esac
    case "$partial_out" in
        *"Pterm >= 0.0000000000"*) echo "cli FAILED: partial bound is zero"; cli_status=1 ;;
    esac
    verify_out=$(timeout 60 target/release/probterm verify \
        -e '(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 1')
    case "$verify_out" in
        *"AST"*) echo "cli ok: verify ($verify_out)" ;;
        *) echo "cli FAILED: verify: $verify_out"; cli_status=1 ;;
    esac
else
    echo "cli FAILED: target/release/probterm missing (release build failed?)"
    cli_status=1
fi
if [ "$cli_status" -ne 0 ]; then
    echo "CLI smoke test: FAILED"
    status=1
else
    echo "CLI smoke test: OK"
fi

# ---------------------------------------------------------------------------
# Explainability smoke test: `probterm explain` on a catalogue-style term that
# explores completely and on a deadline-truncated one; both JSON artifacts
# must satisfy `probterm explain-check` (schema, exact mass accounting,
# witness replay), and the DOT rendering must be a well-formed digraph.
echo "== explain smoke test =="
explain_status=0
if [ -x target/release/probterm ]; then
    complete_json=$(mktemp /tmp/probterm-explain.XXXXXX.json)
    timeout 60 target/release/probterm explain \
        -e 'if sample <= 1/3 then 0 else sample + 1' --depth 30 \
        --format json > "$complete_json"
    if grep -Eq '"complete": *true' "$complete_json"; then
        echo "explain ok: complete exploration flagged complete"
    else
        echo "explain FAILED: complete term not flagged complete"
        explain_status=1
    fi
    check_out=$(target/release/probterm explain-check "$complete_json")
    case "$check_out" in
        ok:*"unaccounted 0"*) echo "explain ok: explain-check ($check_out)" ;;
        *) echo "explain FAILED: explain-check: $check_out"; explain_status=1 ;;
    esac
    truncated_json=$(mktemp /tmp/probterm-explain.XXXXXX.json)
    timeout 60 target/release/probterm explain \
        -e '(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0' \
        --depth 4000 --deadline-ms 100 --format json > "$truncated_json"
    if grep -Eq '"complete": *false' "$truncated_json"; then
        echo "explain ok: deadline-cut exploration flagged incomplete"
    else
        echo "explain FAILED: truncated term not flagged incomplete"
        explain_status=1
    fi
    truncated_out=$(target/release/probterm explain-check "$truncated_json")
    case "$truncated_out" in
        ok:*) echo "explain ok: truncated explain-check ($truncated_out)" ;;
        *) echo "explain FAILED: truncated explain-check: $truncated_out"; explain_status=1 ;;
    esac
    rm -f "$complete_json" "$truncated_json"
    dot_out=$(timeout 60 target/release/probterm explain \
        -e '(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0' \
        --depth 25 --format dot)
    opens=$(printf '%s' "$dot_out" | grep -c '{')
    closes=$(printf '%s' "$dot_out" | grep -c '}')
    case "$dot_out" in
        "digraph "*)
            if [ "$opens" -eq "$closes" ] && [ "$opens" -ge 1 ]; then
                echo "explain ok: DOT well-formed ($opens brace pairs)"
            else
                echo "explain FAILED: DOT braces unbalanced ($opens vs $closes)"
                explain_status=1
            fi
            ;;
        *)
            echo "explain FAILED: DOT output missing digraph header"
            explain_status=1
            ;;
    esac
else
    echo "explain FAILED: target/release/probterm missing (release build failed?)"
    explain_status=1
fi
if [ "$explain_status" -ne 0 ]; then
    echo "explain smoke test: FAILED"
    status=1
else
    echo "explain smoke test: OK"
fi

# ---------------------------------------------------------------------------
# Service smoke test: boot `probterm serve` on a loopback port with request
# tracing on, drive a short mixed batch over bash's /dev/tcp (valid requests,
# a deliberate parse error, a deadline-exceeded request), check each reply
# line — including the `metrics` Prometheus exposition and the per-op `stats`
# percentiles — assert a graceful shutdown with exit code 0, and validate the
# JSONL trace with `probterm trace-check`.
echo "== service smoke test =="
smoke_status=0
if [ -x target/release/probterm ]; then
    port=$((21000 + RANDOM % 20000))
    trace_file=$(mktemp /tmp/probterm-trace.XXXXXX.jsonl)
    target/release/probterm serve --addr "127.0.0.1:$port" --workers 2 \
        --trace "$trace_file" &
    server_pid=$!
    # Wait for the listener to come up.
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
            exec 3>&- 3<&-
            break
        fi
        sleep 0.1
    done
    smoke_request() { # smoke_request <request-json> <required-substring>
        local reply
        if ! exec 3<>"/dev/tcp/127.0.0.1/$port"; then
            echo "smoke: cannot connect for: $1"
            smoke_status=1
            return
        fi
        printf '%s\n' "$1" >&3
        IFS= read -r -t 30 reply <&3 || reply=""
        exec 3>&- 3<&-
        case "$reply" in
            *"$2"*) echo "smoke ok: $2" ;;
            *)
                echo "smoke FAILED: request $1"
                echo "  wanted substring: $2"
                echo "  got reply:        $reply"
                smoke_status=1
                ;;
        esac
    }
    smoke_request '{"id":1,"op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0","depth":30}' '"ok":true'
    smoke_request '{"id":2,"op":"verify","program":"(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 1"}' '"verified":true'
    smoke_request '{"id":3,"op":"simulate","program":"(fix phi x. phi x) 0","runs":400000,"steps":2500,"deadline_ms":40}' '"code":"budget_exceeded"'
    smoke_request '{"id":7,"op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0","depth":400,"deadline_ms":25}' '"complete":false'
    smoke_request '{"id":4,"op":"lower","program":"((("}' '"code":"parse_error"'
    smoke_request 'this is not json' '"code":"parse_error"'
    smoke_request '{"id":5,"op":"stats"}' '"misses":'
    # Per-op latency percentiles in the stats reply.
    smoke_request '{"id":8,"op":"stats"}' '"p95":'
    # Prometheus-style text exposition via the metrics op.
    smoke_request '{"id":9,"op":"metrics"}' 'probterm_requests_total'
    # Provenance artifact through the cache-fronted explain op.
    smoke_request '{"id":10,"op":"explain","program":"(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0","depth":30,"top":3}' '"schema":"probterm-explain-v1"'
    # Live introspection: an idle server reports an empty in-flight table.
    smoke_request '{"id":11,"op":"inspect"}' '"inflight"'
    smoke_request '{"id":6,"op":"shutdown"}' '"ok":true'
    if wait "$server_pid"; then
        echo "smoke ok: graceful shutdown (exit 0)"
    else
        echo "smoke FAILED: server exited non-zero"
        smoke_status=1
    fi
    # Every request above must have produced exactly one parseable JSONL
    # trace record carrying the schema fields.
    trace_out=$(target/release/probterm trace-check "$trace_file")
    case "$trace_out" in
        "ok: 12 trace records"*) echo "smoke ok: trace ($trace_out)" ;;
        *)
            echo "smoke FAILED: trace validation: $trace_out"
            smoke_status=1
            ;;
    esac
    rm -f "$trace_file"
else
    echo "smoke FAILED: target/release/probterm missing (release build failed?)"
    smoke_status=1
fi
if [ "$smoke_status" -ne 0 ]; then
    echo "service smoke test: FAILED"
    status=1
else
    echo "service smoke test: OK"
fi

# ---------------------------------------------------------------------------
# Chaos smoke test: boot `probterm serve` with deterministic fault injection
# (every 4th engine run panics), a single worker and an admission queue of
# depth 1, then drive a scripted batch that exercises the robustness layer
# end to end: a deadline-cut lower that leaves a resumable checkpoint, a
# richer retry that *resumes* it, an injected engine panic surfacing as a
# structured `internal` error, and a queue-saturation shed with
# `overloaded` + `retry_after_ms`. The `stats` robustness counters and the
# JSONL trace must account for all of it, and shutdown must stay graceful.
echo "== chaos smoke test =="
chaos_status=0
if [ -x target/release/probterm ]; then
    chaos_port=$((21000 + RANDOM % 20000))
    chaos_trace=$(mktemp /tmp/probterm-chaos.XXXXXX.jsonl)
    target/release/probterm serve --addr "127.0.0.1:$chaos_port" --workers 1 \
        --queue-depth 1 --inject 'seed=11;panic=@4' --trace "$chaos_trace" &
    chaos_pid=$!
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$chaos_port") 2>/dev/null; then
            exec 3>&- 3<&-
            break
        fi
        sleep 0.1
    done
    chaos_request() { # chaos_request <request-json> <required-substring>
        local reply
        if ! exec 3<>"/dev/tcp/127.0.0.1/$chaos_port"; then
            echo "chaos: cannot connect for: $1"
            chaos_status=1
            return
        fi
        printf '%s\n' "$1" >&3
        IFS= read -r -t 30 reply <&3 || reply=""
        exec 3>&- 3<&-
        case "$reply" in
            *"$2"*) echo "chaos ok: $2" ;;
            *)
                echo "chaos FAILED: request $1"
                echo "  wanted substring: $2"
                echo "  got reply:        $reply"
                chaos_status=1
                ;;
        esac
    }
    geo='(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0'
    # Engine run 1: a plain complete lower.
    chaos_request '{"id":1,"op":"lower","program":"'"$geo"'","depth":25}' '"ok":true'
    # Engine run 2: deadline-cut partial that must embed a resume checkpoint.
    chaos_request '{"id":2,"op":"lower","program":"'"$geo"'","depth":400,"deadline_ms":60}' '"checkpoint"'
    # Engine run 3: a much richer retry resumes the checkpoint instead of
    # recomputing from scratch.
    chaos_request '{"id":3,"op":"lower","program":"'"$geo"'","depth":400,"deadline_ms":2000}' '"resumed":true'
    # Engine run 4: the injected panic (panic=@4) surfaces as a structured
    # internal error, not a dead worker or a dropped line.
    chaos_request '{"id":4,"op":"verify","program":"(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 1"}' '"code":"internal"'
    # Queue saturation: pin the single worker with a deadline-bounded run,
    # then send two quick engine requests back to back on one connection —
    # the first fills the depth-1 queue, the second must be shed immediately
    # by the reader with `overloaded` + `retry_after_ms`. The two must be
    # *distinct* (different `runs`): an identical second request would
    # coalesce onto the first's flight instead of being shed.
    if exec 4<>"/dev/tcp/127.0.0.1/$chaos_port" &&
        exec 5<>"/dev/tcp/127.0.0.1/$chaos_port"; then
        printf '%s\n' '{"id":20,"op":"simulate","program":"(fix phi x. phi x) 0","runs":400000,"steps":2500,"deadline_ms":600}' >&4
        sleep 0.3
        printf '%s\n' '{"id":21,"op":"simulate","program":"sample","runs":10}' >&5
        printf '%s\n' '{"id":22,"op":"simulate","program":"sample","runs":11}' >&5
        IFS= read -r -t 30 shed_reply <&5 || shed_reply=""
        case "$shed_reply" in
            *'"overloaded"'*'"retry_after_ms"'*) echo "chaos ok: shed with retry_after_ms" ;;
            *)
                echo "chaos FAILED: expected overloaded shed, got: $shed_reply"
                chaos_status=1
                ;;
        esac
        IFS= read -r -t 30 admitted_reply <&5 || admitted_reply=""
        case "$admitted_reply" in
            *'"ok":true'*) echo "chaos ok: admitted request completed" ;;
            *)
                echo "chaos FAILED: admitted request: $admitted_reply"
                chaos_status=1
                ;;
        esac
        IFS= read -r -t 30 pinned_reply <&4 || pinned_reply=""
        case "$pinned_reply" in
            *'"code":"budget_exceeded"'*) echo "chaos ok: pinned request hit its own budget" ;;
            *)
                echo "chaos FAILED: pinned request: $pinned_reply"
                chaos_status=1
                ;;
        esac
        exec 4>&- 4<&- 5>&- 5<&-
    else
        echo "chaos FAILED: cannot open shed connections"
        chaos_status=1
    fi
    # The robustness counters must account for everything injected above.
    if exec 3<>"/dev/tcp/127.0.0.1/$chaos_port"; then
        printf '%s\n' '{"id":23,"op":"stats"}' >&3
        IFS= read -r -t 30 stats_reply <&3 || stats_reply=""
        exec 3>&- 3<&-
        for want in '"shed":1' '"resumed":1' '"injected_faults":1' '"checkpointed_frontiers":1'; do
            case "$stats_reply" in
                *"$want"*) echo "chaos ok: stats $want" ;;
                *)
                    echo "chaos FAILED: stats missing $want: $stats_reply"
                    chaos_status=1
                    ;;
            esac
        done
    else
        echo "chaos FAILED: cannot connect for stats"
        chaos_status=1
    fi
    chaos_request '{"id":24,"op":"shutdown"}' '"ok":true'
    if wait "$chaos_pid"; then
        echo "chaos ok: graceful shutdown after injected faults (exit 0)"
    else
        echo "chaos FAILED: server exited non-zero"
        chaos_status=1
    fi
    # Every request — including the shed one, replied by the reader thread —
    # must appear exactly once in the trace.
    chaos_trace_out=$(target/release/probterm trace-check "$chaos_trace")
    case "$chaos_trace_out" in
        "ok: 9 trace records"*) echo "chaos ok: trace ($chaos_trace_out)" ;;
        *)
            echo "chaos FAILED: trace validation: $chaos_trace_out"
            chaos_status=1
            ;;
    esac
    rm -f "$chaos_trace"
else
    echo "chaos FAILED: target/release/probterm missing (release build failed?)"
    chaos_status=1
fi
if [ "$chaos_status" -ne 0 ]; then
    echo "chaos smoke test: FAILED"
    status=1
else
    echo "chaos smoke test: OK"
fi

# ---------------------------------------------------------------------------
# Observability smoke test: `probterm top --once` renders a dashboard from a
# loopback server's `stats` + `inspect` replies, and the bench-history
# regression sentinel runs over the committed BENCH_history.jsonl as a soft
# gate (it warns on regressions; only --strict turns that into a failure).
echo "== observability smoke test =="
obs_status=0
if [ -x target/release/probterm ]; then
    obs_port=$((21000 + RANDOM % 20000))
    target/release/probterm serve --addr "127.0.0.1:$obs_port" --workers 1 &
    obs_pid=$!
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$obs_port") 2>/dev/null; then
            exec 3>&- 3<&-
            break
        fi
        sleep 0.1
    done
    top_out=$(timeout 30 target/release/probterm top --addr "127.0.0.1:$obs_port" --once)
    case "$top_out" in
        *"probterm top"*"in-flight"*)
            echo "obs ok: top --once renders a dashboard"
            ;;
        *)
            echo "obs FAILED: top --once: $top_out"
            obs_status=1
            ;;
    esac
    if exec 3<>"/dev/tcp/127.0.0.1/$obs_port"; then
        printf '%s\n' '{"id":1,"op":"shutdown"}' >&3
        IFS= read -r -t 30 _ <&3 || true
        exec 3>&- 3<&-
    fi
    if wait "$obs_pid"; then
        echo "obs ok: graceful shutdown (exit 0)"
    else
        echo "obs FAILED: server exited non-zero"
        obs_status=1
    fi
    if bench_out=$(timeout 30 target/release/probterm bench-report BENCH_history.jsonl); then
        case "$bench_out" in
            "bench-report:"*)
                echo "obs ok: bench-report ($(printf '%s' "$bench_out" | head -1))"
                ;;
            *)
                echo "obs FAILED: bench-report output: $bench_out"
                obs_status=1
                ;;
        esac
    else
        echo "obs FAILED: bench-report exited non-zero (soft gate must pass without --strict)"
        obs_status=1
    fi
else
    echo "obs FAILED: target/release/probterm missing (release build failed?)"
    obs_status=1
fi
if [ "$obs_status" -ne 0 ]; then
    echo "observability smoke test: FAILED"
    status=1
else
    echo "observability smoke test: OK"
fi

# ---------------------------------------------------------------------------
# Coalescing smoke test: a leader's engine run is slowed by injection to
# 1000 ms, three identical requests sent mid-flight must attach to it instead
# of enqueueing — exactly one engine run (`"misses":1`), three accounted
# waiters — and every reply must carry the leader's result.
echo "== coalescing smoke test =="
coalesce_status=0
if [ -x target/release/probterm ]; then
    co_port=$((21000 + RANDOM % 20000))
    target/release/probterm serve --addr "127.0.0.1:$co_port" --workers 1 \
        --inject 'seed=3;slow=@1:1000' &
    co_pid=$!
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$co_port") 2>/dev/null; then
            exec 3>&- 3<&-
            break
        fi
        sleep 0.1
    done
    co_lower='{"id":1,"op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0","depth":40}'
    if exec 4<>"/dev/tcp/127.0.0.1/$co_port" &&
        exec 5<>"/dev/tcp/127.0.0.1/$co_port" &&
        exec 6<>"/dev/tcp/127.0.0.1/$co_port" &&
        exec 7<>"/dev/tcp/127.0.0.1/$co_port"; then
        printf '%s\n' "$co_lower" >&4   # leader: engine run sleeps 1000 ms
        sleep 0.3
        for fd in 5 6 7; do             # joiners arrive mid-flight
            printf '%s\n' "$co_lower" >&$fd
        done
        IFS= read -r -t 30 leader_reply <&4 || leader_reply=""
        case "$leader_reply" in
            *'"cache":"miss"'*) echo "coalesce ok: leader ran the engine" ;;
            *)
                echo "coalesce FAILED: leader reply: $leader_reply"
                coalesce_status=1
                ;;
        esac
        for fd in 5 6 7; do
            IFS= read -r -t 30 joiner_reply <&$fd || joiner_reply=""
            case "$joiner_reply" in
                *'"cache":"coalesced"'*) echo "coalesce ok: joiner fd$fd coalesced" ;;
                *)
                    echo "coalesce FAILED: joiner fd$fd reply: $joiner_reply"
                    coalesce_status=1
                    ;;
            esac
        done
        exec 4>&- 4<&- 5>&- 5<&- 6>&- 6<&- 7>&- 7<&-
    else
        echo "coalesce FAILED: cannot open connections"
        coalesce_status=1
    fi
    if exec 3<>"/dev/tcp/127.0.0.1/$co_port"; then
        printf '%s\n' '{"id":9,"op":"stats"}' >&3
        IFS= read -r -t 30 co_stats <&3 || co_stats=""
        exec 3>&- 3<&-
        for want in '"misses":1' '"coalesced_waiters":3'; do
            case "$co_stats" in
                *"$want"*) echo "coalesce ok: stats $want" ;;
                *)
                    echo "coalesce FAILED: stats missing $want: $co_stats"
                    coalesce_status=1
                    ;;
            esac
        done
    else
        echo "coalesce FAILED: cannot connect for stats"
        coalesce_status=1
    fi
    if exec 3<>"/dev/tcp/127.0.0.1/$co_port"; then
        printf '%s\n' '{"id":10,"op":"shutdown"}' >&3
        IFS= read -r -t 30 _ <&3 || true
        exec 3>&- 3<&-
    fi
    if wait "$co_pid"; then
        echo "coalesce ok: graceful shutdown (exit 0)"
    else
        echo "coalesce FAILED: server exited non-zero"
        coalesce_status=1
    fi
else
    echo "coalesce FAILED: target/release/probterm missing (release build failed?)"
    coalesce_status=1
fi
if [ "$coalesce_status" -ne 0 ]; then
    echo "coalescing smoke test: FAILED"
    status=1
else
    echo "coalescing smoke test: OK"
fi

# ---------------------------------------------------------------------------
# Persistence smoke test: a `--cache-path` server computes a result, writes
# its snapshot on graceful shutdown, and a freshly-booted server on the same
# path must answer the identical request as a cache hit without an engine run.
echo "== persistence smoke test =="
persist_status=0
if [ -x target/release/probterm ]; then
    cache_file=$(mktemp -u /tmp/probterm-cache.XXXXXX.jsonl)
    persist_request='{"id":1,"op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0","depth":35}'
    persist_round() { # persist_round <port> <required-substring> <label>
        local reply
        if ! exec 3<>"/dev/tcp/127.0.0.1/$1"; then
            echo "persist FAILED: cannot connect ($3)"
            persist_status=1
            return
        fi
        printf '%s\n' "$persist_request" >&3
        IFS= read -r -t 30 reply <&3 || reply=""
        case "$reply" in
            *"$2"*) echo "persist ok: $3" ;;
            *)
                echo "persist FAILED: $3 reply: $reply"
                persist_status=1
                ;;
        esac
        printf '%s\n' '{"id":2,"op":"shutdown"}' >&3
        IFS= read -r -t 30 _ <&3 || true
        exec 3>&- 3<&-
    }
    p_port=$((21000 + RANDOM % 20000))
    target/release/probterm serve --addr "127.0.0.1:$p_port" --workers 1 \
        --cache-path "$cache_file" &
    p_pid=$!
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$p_port") 2>/dev/null; then
            exec 3>&- 3<&-
            break
        fi
        sleep 0.1
    done
    persist_round "$p_port" '"cache":"miss"' "cold run computes"
    if wait "$p_pid"; then
        echo "persist ok: first server drained gracefully"
    else
        echo "persist FAILED: first server exited non-zero"
        persist_status=1
    fi
    if [ -s "$cache_file" ]; then
        echo "persist ok: snapshot written on drain"
    else
        echo "persist FAILED: no snapshot at $cache_file"
        persist_status=1
    fi
    p_port=$((21000 + RANDOM % 20000))
    target/release/probterm serve --addr "127.0.0.1:$p_port" --workers 1 \
        --cache-path "$cache_file" &
    p_pid=$!
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$p_port") 2>/dev/null; then
            exec 3>&- 3<&-
            break
        fi
        sleep 0.1
    done
    persist_round "$p_port" '"cache":"hit"' "reborn server serves the snapshot"
    if wait "$p_pid"; then
        echo "persist ok: reborn server drained gracefully"
    else
        echo "persist FAILED: reborn server exited non-zero"
        persist_status=1
    fi
    rm -f "$cache_file"
else
    echo "persist FAILED: target/release/probterm missing (release build failed?)"
    persist_status=1
fi
if [ "$persist_status" -ne 0 ]; then
    echo "persistence smoke test: FAILED"
    status=1
else
    echo "persistence smoke test: OK"
fi

if [ "$status" -ne 0 ]; then
    echo "CI: FAILED (status $status)"
else
    echo "CI: OK"
fi
exit "$status"
