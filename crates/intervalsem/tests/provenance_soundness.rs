//! Soundness of the provenance layer: the explainability artifact must be an
//! *exact* decomposition of the lower-bound computation it explains.
//!
//! For every catalogue benchmark (and for randomly generated closed terms):
//!
//! - the per-path volumes in the [`Provenance`] re-sum — by exact rational
//!   arithmetic, not float tolerance — to the probability the standalone
//!   [`lower_bound`] API reports for the same configuration;
//! - `attributed_mass + unaccounted_mass = 1`;
//! - every synthesized witness replays to termination on the concrete CEK
//!   machine, in exactly as many steps as the symbolic path took;
//! - `unaccounted_mass = 0` iff the exploration completed (on the catalogue,
//!   where every abandoned frontier region and box-sweep residue carries
//!   positive mass).

use probterm_intervalsem::{
    explain, lower_bound, ExplainConfig, LowerBoundConfig, Provenance, VolumeMethod,
};
use probterm_numerics::Rational;
use probterm_spcf::{catalog, Prim, Term};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn check_provenance(name: &str, term: &Term, lower: &LowerBoundConfig) -> Provenance {
    let reference = lower_bound(term, lower);
    let provenance = explain(term, &ExplainConfig::default().with_lower(lower.clone()));

    // The artifact explains the same computation the standalone API runs.
    assert_eq!(
        provenance.result.probability, reference.probability,
        "{name}: provenance and lower_bound disagree on the bound"
    );
    // Per-path volumes re-sum exactly to the reported probability.
    assert_eq!(
        provenance.attributed_mass(),
        reference.probability,
        "{name}: per-path volumes do not sum to the lower bound"
    );
    assert_eq!(
        provenance.frontier.attributed_mass, provenance.attributed_mass(),
        "{name}: frontier summary caches a different attributed mass"
    );
    assert_eq!(
        &provenance.frontier.attributed_mass + &provenance.frontier.unaccounted_mass,
        Rational::one(),
        "{name}: attributed + unaccounted != 1"
    );
    // Every path with certified mass carries a witness that replayed on the
    // concrete machine, taking exactly the symbolic path's step count.
    for path in &provenance.paths {
        if path.method == VolumeMethod::Unmeasured {
            assert_eq!(path.volume, Rational::zero(), "{name}: unmeasured path has volume");
            continue;
        }
        if path.volume > Rational::zero() {
            let witness = path.witness.as_ref().unwrap_or_else(|| {
                panic!("{name}: path {} has mass but no witness", path.index)
            });
            assert!(witness.replayed, "{name}: witness of path {} did not replay", path.index);
            assert_eq!(
                witness.replay_steps,
                Some(path.steps),
                "{name}: witness of path {} replayed in a different step count",
                path.index
            );
        }
    }
    // The headline frontier invariant: no unaccounted mass iff the
    // exploration ran to completion.
    assert_eq!(
        provenance.frontier.unaccounted_mass == Rational::zero(),
        provenance.frontier.complete,
        "{name}: unaccounted_mass = {} but complete = {}",
        provenance.frontier.unaccounted_mass,
        provenance.frontier.complete
    );
    provenance
}

#[test]
fn whole_catalogue_is_exactly_attributed() {
    let mut all = catalog::table1_benchmarks();
    all.extend(catalog::table2_benchmarks());
    all.push(catalog::triangle_example());
    for b in &all {
        // Pedestrian explodes combinatorially with depth; keep it shallower.
        let depth = if b.name == "pedestrian" { 25 } else { 35 };
        let lower = LowerBoundConfig::default().with_depth(depth).with_max_paths(4_000);
        let provenance = check_provenance(&b.name, &b.term, &lower);
        // Catalogue terms certify mass at these depths; a silently empty
        // artifact would make the re-summation check vacuous.
        assert!(
            provenance.attributed_mass() > Rational::zero(),
            "{}: no mass attributed",
            b.name
        );
    }
}

#[test]
fn deterministic_terms_complete_with_zero_unaccounted_mass() {
    // The `iff` direction the recursive catalogue cannot exercise: a finite
    // path tree explores completely and accounts for every drop of mass.
    for (name, source) in [
        ("arith", "1 + 2 * 3"),
        ("single_branch", "if sample <= 1/3 then 0 else 1"),
        ("two_draws", "if sample <= 1/2 then (if sample <= 1/2 then 0 else 1) else 2"),
    ] {
        let term = probterm_spcf::parse_term(source).expect("parse");
        let lower = LowerBoundConfig::default().with_depth(60);
        let provenance = check_provenance(name, &term, &lower);
        assert!(provenance.frontier.complete, "{name}: must complete");
        assert_eq!(provenance.frontier.unaccounted_mass, Rational::zero(), "{name}");
        assert_eq!(provenance.attributed_mass(), Rational::one(), "{name}");
    }
}

// ----------------------------------------------------------------- proptest

/// Binder-name pool (shadowing on purpose, as in the differential tests).
const POOL: [&str; 4] = ["x", "y", "phi", "acc"];

/// Generates a random *closed* term with at most `depth` nested constructors
/// (variables are only drawn from the enclosing scope) — the same shape as
/// `symbolic_differential.rs` uses, so the provenance layer faces stuck
/// terms, duplicated thunks, partial primitives and nested fixpoints.
fn random_term(rng: &mut StdRng, depth: usize, scope: &mut Vec<String>) -> Term {
    let choice = if depth == 0 { rng.gen_range(0usize..3) } else { rng.gen_range(0usize..9) };
    match choice {
        0 => Term::Num(random_ratio(rng)),
        1 => Term::Sample,
        2 => {
            if scope.is_empty() {
                Term::Num(random_ratio(rng))
            } else {
                let index = rng.gen_range(0usize..scope.len());
                Term::var(&scope[index])
            }
        }
        3 => {
            let name = POOL[rng.gen_range(0usize..POOL.len())];
            scope.push(name.to_string());
            let body = random_term(rng, depth - 1, scope);
            scope.pop();
            Term::lam(name, body)
        }
        4 => {
            let f = POOL[rng.gen_range(0usize..POOL.len())];
            let x = POOL[rng.gen_range(0usize..POOL.len())];
            scope.push(f.to_string());
            scope.push(x.to_string());
            let body = random_term(rng, depth - 1, scope);
            scope.pop();
            scope.pop();
            Term::fix(f, x, body)
        }
        5 => Term::app(
            random_term(rng, depth - 1, scope),
            random_term(rng, depth - 1, scope),
        ),
        6 => Term::ite(
            random_term(rng, depth - 1, scope),
            random_term(rng, depth - 1, scope),
            random_term(rng, depth - 1, scope),
        ),
        7 => Term::score(random_term(rng, depth - 1, scope)),
        _ => {
            let prims = [
                Prim::Add,
                Prim::Sub,
                Prim::Mul,
                Prim::Neg,
                Prim::Abs,
                Prim::Min,
                Prim::Max,
                Prim::Exp,
                Prim::Log,
                Prim::Sig,
                Prim::Floor,
            ];
            let prim = prims[rng.gen_range(0usize..prims.len())];
            let args = (0..prim.arity())
                .map(|_| random_term(rng, depth - 1, scope))
                .collect();
            Term::Prim(prim, args)
        }
    }
}

fn random_ratio(rng: &mut StdRng) -> Rational {
    Rational::from_ratio(rng.gen_range(-20i64..21), rng.gen_range(1i64..8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact attribution and witness replay hold on random closed terms,
    /// not just the curated catalogue.
    #[test]
    fn random_closed_terms_are_exactly_attributed(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = 2 + (seed % 4) as usize;
        let term = random_term(&mut rng, depth, &mut Vec::new());
        let lower = LowerBoundConfig::default().with_depth(40).with_max_paths(1_500);
        let reference = lower_bound(&term, &lower);
        let provenance = explain(&term, &ExplainConfig::default().with_lower(lower));
        prop_assert_eq!(
            provenance.attributed_mass(),
            reference.probability,
            "seed {} on `{}`",
            seed,
            term
        );
        for path in &provenance.paths {
            if let Some(witness) = &path.witness {
                prop_assert!(
                    witness.replayed,
                    "seed {}: witness of path {} did not replay on `{}`",
                    seed,
                    path.index,
                    term
                );
            }
        }
    }
}
