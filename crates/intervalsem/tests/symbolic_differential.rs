//! Differential harness for symbolic exploration: the environment-machine
//! explorer must agree *exactly* with the substitution-based reference
//! stepper (`explore_substitution`) — same terminated paths in the same
//! order, with identical branch oracles, path constraints, sample counts and
//! step counts, and identical out-of-fuel/stuck tallies — across the whole
//! benchmark catalogue and on randomly generated closed terms.
//!
//! This mirrors `crates/spcf/tests/machine_differential.rs`, which plays the
//! same game for the concrete evaluator.

use probterm_intervalsem::{explore, explore_substitution, ExplorationConfig};
use probterm_numerics::Rational;
use probterm_spcf::{catalog, Prim, Term};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_explorations_agree(name: &str, term: &Term, config: &ExplorationConfig) {
    let machine = explore(term, config);
    let reference = explore_substitution(term, config);
    assert_eq!(
        machine.terminated.len(),
        reference.terminated.len(),
        "{name}: terminated path count differs (machine {} vs reference {})",
        machine.terminated.len(),
        reference.terminated.len()
    );
    for (index, (m, r)) in machine
        .terminated
        .iter()
        .zip(reference.terminated.iter())
        .enumerate()
    {
        assert_eq!(m.branches, r.branches, "{name}: path {index} oracle differs");
        assert_eq!(
            m.constraints, r.constraints,
            "{name}: path {index} constraints differ"
        );
        assert_eq!(
            m.sample_count, r.sample_count,
            "{name}: path {index} sample count differs"
        );
        assert_eq!(m.steps, r.steps, "{name}: path {index} step count differs");
        assert_eq!(m.result, r.result, "{name}: path {index} result differs");
    }
    assert_eq!(machine, reference, "{name}: explorations differ");
}

#[test]
fn whole_catalogue_agrees_at_several_depths() {
    let mut all = catalog::table1_benchmarks();
    all.extend(catalog::table2_benchmarks());
    all.push(catalog::triangle_example());
    for b in &all {
        // Pedestrian explodes combinatorially with depth; keep it shallower.
        let depths: &[usize] = if b.name == "pedestrian" { &[12, 25] } else { &[12, 35] };
        for &depth in depths {
            let config = ExplorationConfig::default()
                .with_max_steps_per_path(depth)
                .with_max_paths(4_000);
            assert_explorations_agree(&format!("{} @ depth {depth}", b.name), &b.term, &config);
        }
    }
}

#[test]
fn path_weights_agree_on_recursive_examples() {
    // Paths being equal, their measured probabilities (the weights that feed
    // the lower-bound engine) must be equal too — checked explicitly on the
    // catalogue's recursive workhorses.
    for (name, term, depth) in [
        ("geometric", catalog::geometric(Rational::from_ratio(1, 2)).term, 60),
        ("triangle", catalog::triangle_example().term, 30),
        (
            "printer_nonaffine",
            catalog::printer_nonaffine(Rational::from_ratio(1, 2)).term,
            30,
        ),
    ] {
        let config = ExplorationConfig::default()
            .with_max_steps_per_path(depth)
            .with_max_paths(4_000);
        let machine = explore(&term, &config);
        let reference = explore_substitution(&term, &config);
        let machine_mass: Rational = machine.terminated.iter().map(|p| p.probability(400)).sum();
        let reference_mass: Rational =
            reference.terminated.iter().map(|p| p.probability(400)).sum();
        assert_eq!(machine_mass, reference_mass, "{name}: certified mass differs");
        assert!(machine_mass > Rational::zero(), "{name}: no mass certified");
    }
}

#[test]
fn max_paths_cutoff_is_taken_at_the_same_point() {
    // The breadth-first processing order must match, so the path-budget
    // safety valve abandons exactly the same frontier.
    let gr = catalog::golden_ratio().term;
    let config = ExplorationConfig::default()
        .with_max_steps_per_path(60)
        .with_max_paths(25);
    assert_explorations_agree("golden_ratio (tight path budget)", &gr, &config);
    let cut = explore(&gr, &config);
    assert!(cut.out_of_fuel > 0, "the tight budget must actually cut");
}

// ----------------------------------------------------------------- proptest

/// Binder-name pool (shadowing on purpose, as in the spcf roundtrip tests).
const POOL: [&str; 4] = ["x", "y", "phi", "acc"];

/// Generates a random *closed* term with at most `depth` nested constructors
/// (variables are only drawn from the enclosing scope).
fn random_term(rng: &mut StdRng, depth: usize, scope: &mut Vec<String>) -> Term {
    let choice = if depth == 0 { rng.gen_range(0usize..3) } else { rng.gen_range(0usize..9) };
    match choice {
        0 => Term::Num(random_ratio(rng)),
        1 => Term::Sample,
        2 => {
            if scope.is_empty() {
                Term::Num(random_ratio(rng))
            } else {
                let index = rng.gen_range(0usize..scope.len());
                Term::var(&scope[index])
            }
        }
        3 => {
            let name = POOL[rng.gen_range(0usize..POOL.len())];
            scope.push(name.to_string());
            let body = random_term(rng, depth - 1, scope);
            scope.pop();
            Term::lam(name, body)
        }
        4 => {
            let f = POOL[rng.gen_range(0usize..POOL.len())];
            let x = POOL[rng.gen_range(0usize..POOL.len())];
            scope.push(f.to_string());
            scope.push(x.to_string());
            let body = random_term(rng, depth - 1, scope);
            scope.pop();
            scope.pop();
            Term::fix(f, x, body)
        }
        5 => Term::app(
            random_term(rng, depth - 1, scope),
            random_term(rng, depth - 1, scope),
        ),
        6 => Term::ite(
            random_term(rng, depth - 1, scope),
            random_term(rng, depth - 1, scope),
            random_term(rng, depth - 1, scope),
        ),
        7 => Term::score(random_term(rng, depth - 1, scope)),
        _ => {
            let prims = [
                Prim::Add,
                Prim::Sub,
                Prim::Mul,
                Prim::Neg,
                Prim::Abs,
                Prim::Min,
                Prim::Max,
                Prim::Exp,
                Prim::Log,
                Prim::Sig,
                Prim::Floor,
            ];
            let prim = prims[rng.gen_range(0usize..prims.len())];
            let args = (0..prim.arity())
                .map(|_| random_term(rng, depth - 1, scope))
                .collect();
            Term::Prim(prim, args)
        }
    }
}

fn random_ratio(rng: &mut StdRng) -> Rational {
    Rational::from_ratio(rng.gen_range(-20i64..21), rng.gen_range(1i64..8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Machine and substitution explorations agree on random closed terms,
    /// including stuck shapes, duplicated thunks and nested fixpoints.
    #[test]
    fn random_closed_terms_explore_identically(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = 2 + (seed % 4) as usize;
        let term = random_term(&mut rng, depth, &mut Vec::new());
        let config = ExplorationConfig::default()
            .with_max_steps_per_path(40)
            .with_max_paths(1_500);
        let machine = explore(&term, &config);
        let reference = explore_substitution(&term, &config);
        prop_assert_eq!(machine, reference, "seed {} on `{}`", seed, term);
    }
}
