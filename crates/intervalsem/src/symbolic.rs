//! Stochastic symbolic execution (paper App. B.5 and §7.1).
//!
//! Instead of evaluating a term on a fixed trace, symbolic execution
//! abstracts the `i`-th `sample` redex by a fresh *sample variable* `αᵢ` and
//! postpones primitive functions, producing *symbolic values*. Control flow
//! is resolved by exploring both branches of every conditional whose guard is
//! symbolic, recording the corresponding *symbolic constraint* (`V ≤ 0` or
//! `V > 0`), which corresponds to fixing a conditional oracle `κ ∈ {L, R}*`
//! (App. B.4).
//!
//! Every terminating path therefore describes the set of standard traces
//! `Sat_m(Δ) = T^{(κ)}_{M,term}` (Proposition B.8) on which the program
//! terminates with that exact branching behaviour; the lower-bound engine
//! measures these sets.
//!
//! # Execution substrate
//!
//! Exploration runs on the shared environment machine
//! ([`probterm_spcf::absmachine`]) instantiated at symbolic literals: the
//! machine pauses at each `sample`/primitive/branch/`score` redex and this
//! module interprets the effect, *forking* the (cheaply clonable) machine at
//! conditionals whose guard mentions sample variables. Each machine step is
//! O(1) amortized, so exploring to depth `d` is linear in `d` per path — the
//! historical whole-term-substitution stepper was quadratic (the unexplored
//! recursion grows the term as the path deepens). That stepper survives as
//! [`explore_substitution`], the reference the machine is differentially
//! tested against (`tests/symbolic_differential.rs`).
//!
//! # Interruption
//!
//! [`try_explore`] threads a cooperative check through the exploration loop,
//! so a caller (the analysis service enforcing `deadline_ms`) can cancel
//! *mid-exploration* and still receive every path terminated so far — a
//! sound, monotonically improvable partial result by Theorem 3.4.

use probterm_numerics::{Interval, IntervalBox, Rational};
use probterm_polytope::UnitCubePolytope;
use probterm_spcf::absmachine::{DomainSpec, Event, Machine, NoAtom};
use probterm_spcf::{Ident, Prim, Strategy, Term};
use probterm_telemetry::{EngineProfile, ProfileCell, ProgressCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// A symbolic value of base type: an expression over sample variables,
/// rational constants and primitive functions.
#[derive(Debug, Clone, PartialEq)]
pub enum SymValue {
    /// A rational constant.
    Const(Rational),
    /// The `i`-th sample variable `αᵢ`.
    Var(usize),
    /// A postponed primitive application `f̄(V₁, …, V_{|f|})`.
    Prim(Prim, Vec<SymValue>),
}

impl SymValue {
    /// Evaluates the symbolic value at a concrete assignment of the sample
    /// variables. Returns `None` if a partial primitive is applied outside
    /// its domain.
    pub fn eval(&self, assignment: &[Rational]) -> Option<Rational> {
        match self {
            SymValue::Const(r) => Some(r.clone()),
            SymValue::Var(i) => assignment.get(*i).cloned(),
            SymValue::Prim(p, args) => {
                let values: Option<Vec<Rational>> =
                    args.iter().map(|a| a.eval(assignment)).collect();
                p.eval(&values?)
            }
        }
    }

    /// Evaluates an interval enclosure of the symbolic value over a box of
    /// sample-variable values. Returns `None` if a partial primitive may be
    /// applied outside its domain anywhere in the box.
    pub fn eval_interval(&self, boxes: &IntervalBox) -> Option<Interval> {
        match self {
            SymValue::Const(r) => Some(Interval::point(r.clone())),
            SymValue::Var(i) => boxes.intervals().get(*i).cloned(),
            SymValue::Prim(p, args) => {
                let values: Option<Vec<Interval>> =
                    args.iter().map(|a| a.eval_interval(boxes)).collect();
                crate::iterm::prim_interval(*p, &values?)
            }
        }
    }

    /// The highest sample-variable index occurring in the value, if any.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            SymValue::Const(_) => None,
            SymValue::Var(i) => Some(*i),
            SymValue::Prim(_, args) => args.iter().filter_map(SymValue::max_var).max(),
        }
    }

    /// Attempts to view the value as an affine expression `Σ cᵢ·αᵢ + k` over
    /// `dimension` sample variables. Returns `(coefficients, constant)`.
    ///
    /// Only addition, subtraction, negation and multiplication in which at
    /// least one factor is constant are affine; anything else returns `None`.
    pub fn as_affine(&self, dimension: usize) -> Option<(Vec<Rational>, Rational)> {
        match self {
            SymValue::Const(r) => Some((vec![Rational::zero(); dimension], r.clone())),
            SymValue::Var(i) => {
                if *i >= dimension {
                    return None;
                }
                let mut coeffs = vec![Rational::zero(); dimension];
                coeffs[*i] = Rational::one();
                Some((coeffs, Rational::zero()))
            }
            SymValue::Prim(p, args) => match p {
                Prim::Add | Prim::Sub => {
                    let (ca, ka) = args[0].as_affine(dimension)?;
                    let (cb, kb) = args[1].as_affine(dimension)?;
                    let combine = |a: &Rational, b: &Rational| {
                        if *p == Prim::Add {
                            a + b
                        } else {
                            a - b
                        }
                    };
                    Some((
                        ca.iter().zip(&cb).map(|(a, b)| combine(a, b)).collect(),
                        combine(&ka, &kb),
                    ))
                }
                Prim::Neg => {
                    let (c, k) = args[0].as_affine(dimension)?;
                    Some((c.iter().map(|x| -x).collect(), -k))
                }
                Prim::Mul => {
                    let (ca, ka) = args[0].as_affine(dimension)?;
                    let (cb, kb) = args[1].as_affine(dimension)?;
                    if ca.iter().all(Rational::is_zero) {
                        Some((cb.iter().map(|x| x * &ka).collect(), &ka * &kb))
                    } else if cb.iter().all(Rational::is_zero) {
                        Some((ca.iter().map(|x| x * &kb).collect(), &ka * &kb))
                    } else {
                        None
                    }
                }
                _ => None,
            },
        }
    }

    /// Returns `true` if the value contains no sample variables.
    pub fn is_constant(&self) -> bool {
        self.max_var().is_none()
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymValue::Const(r) => write!(f, "{r}"),
            SymValue::Var(i) => write!(f, "α{i}"),
            SymValue::Prim(p, args) => {
                write!(f, "{}(", p.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The comparison recorded for a path constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// The value is `≤ 0` (then-branch of a conditional).
    NonPositive,
    /// The value is `> 0` (else-branch of a conditional).
    Positive,
    /// The value is `≥ 0` (successful `score`).
    NonNegative,
}

/// A symbolic (in)equality `V ⊲⊳ 0` collected along a path (App. B.5).
#[derive(Debug, Clone, PartialEq)]
pub struct SymConstraint {
    /// The symbolic value being compared with zero.
    pub value: SymValue,
    /// The comparison.
    pub kind: ConstraintKind,
}

impl SymConstraint {
    /// Checks the constraint at a concrete assignment (`None` when the value
    /// is undefined there).
    pub fn holds_at(&self, assignment: &[Rational]) -> Option<bool> {
        let v = self.value.eval(assignment)?;
        Some(match self.kind {
            ConstraintKind::NonPositive => !v.is_positive(),
            ConstraintKind::Positive => v.is_positive(),
            ConstraintKind::NonNegative => !v.is_negative(),
        })
    }

    /// Interval check over a box: `Some(true)` when the constraint certainly
    /// holds on the whole box, `Some(false)` when it certainly fails on the
    /// whole box, and `None` when undecided.
    pub fn check_box(&self, boxes: &IntervalBox) -> Option<bool> {
        let iv = match self.value.eval_interval(boxes) {
            Some(iv) => iv,
            None => return Some(false),
        };
        match self.kind {
            ConstraintKind::NonPositive => {
                if iv.certainly_nonpositive() {
                    Some(true)
                } else if iv.certainly_positive() {
                    Some(false)
                } else {
                    None
                }
            }
            ConstraintKind::Positive => {
                if iv.certainly_positive() {
                    Some(true)
                } else if iv.certainly_nonpositive() {
                    Some(false)
                } else {
                    None
                }
            }
            ConstraintKind::NonNegative => {
                if !iv.lo().is_negative() {
                    Some(true)
                } else if iv.hi().is_negative() {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    /// Translates the constraint into a linear inequality `c·α ≤ b` when the
    /// underlying value is affine. For strict constraints the closure is
    /// returned (sound for volume purposes: the boundary is a null set).
    pub fn as_linear(&self, dimension: usize) -> Option<(Vec<Rational>, Rational)> {
        let (coeffs, constant) = self.value.as_affine(dimension)?;
        Some(match self.kind {
            // V ≤ 0  ⟺  c·α ≤ -k
            ConstraintKind::NonPositive => (coeffs, -constant),
            // V > 0  ⟺  -c·α < k  (closed for measuring purposes)
            ConstraintKind::Positive => (coeffs.iter().map(|x| -x).collect(), constant),
            // V ≥ 0  ⟺  -c·α ≤ k
            ConstraintKind::NonNegative => (coeffs.iter().map(|x| -x).collect(), constant),
        })
    }
}

impl fmt::Display for SymConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            ConstraintKind::NonPositive => "<= 0",
            ConstraintKind::Positive => "> 0",
            ConstraintKind::NonNegative => ">= 0",
        };
        write!(f, "{} {op}", self.value)
    }
}

/// A branching decision along a path (the conditional oracle `κ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branch {
    /// The then-branch (`𝒍`).
    Then,
    /// The else-branch (`𝒓`).
    Else,
}

/// A terminating symbolic path: a conditional oracle together with the path
/// constraint and bookkeeping information.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicPath {
    /// Number of sample variables drawn along the path.
    pub sample_count: usize,
    /// The branch decisions taken, in order.
    pub branches: Vec<Branch>,
    /// The collected path constraints `Δ`.
    pub constraints: Vec<SymConstraint>,
    /// Number of small-step reductions performed on the path.
    pub steps: usize,
    /// The symbolic result value (for base-type programs).
    pub result: Option<SymValue>,
}

impl SymbolicPath {
    /// Returns `true` if every constraint is affine in the sample variables,
    /// in which case the path region is a convex polytope and its probability
    /// can be computed exactly.
    pub fn is_linear(&self) -> bool {
        self.constraints
            .iter()
            .all(|c| c.as_linear(self.sample_count).is_some())
    }

    /// Builds the polytope `{α ∈ [0,1]^m | Δ}` for linear paths.
    pub fn to_polytope(&self) -> Option<UnitCubePolytope> {
        let mut poly = UnitCubePolytope::new(self.sample_count);
        for c in &self.constraints {
            let (coeffs, bound) = c.as_linear(self.sample_count)?;
            poly.add(coeffs, bound);
        }
        Some(poly)
    }

    /// Exact probability of the path region for linear paths.
    ///
    /// The constraint system is first split into independent groups of sample
    /// variables (constraints sharing no variable are probabilistically
    /// independent), and the volume of each low-dimensional group is computed
    /// separately — long paths whose constraints are all univariate (the common
    /// case for the Table 1 benchmarks) therefore take linear time instead of
    /// invoking the volume oracle in the full trace dimension.
    pub fn exact_probability(&self) -> Option<Rational> {
        let linear: Vec<(Vec<Rational>, Rational)> = self
            .constraints
            .iter()
            .map(|c| c.as_linear(self.sample_count))
            .collect::<Option<Vec<_>>>()?;
        // Union-find over sample variables connected by shared constraints.
        let mut parent: Vec<usize> = (0..self.sample_count).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for (coeffs, _) in &linear {
            let vars: Vec<usize> = coeffs
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.is_zero())
                .map(|(i, _)| i)
                .collect();
            for pair in vars.windows(2) {
                let a = find(&mut parent, pair[0]);
                let b = find(&mut parent, pair[1]);
                parent[a] = b;
            }
        }
        let mut probability = Rational::one();
        // Constant constraints (no variables): either trivially true or the path is empty.
        for (coeffs, bound) in &linear {
            if coeffs.iter().all(Rational::is_zero) && bound.is_negative() {
                return Some(Rational::zero());
            }
        }
        // Process each connected component separately.
        let roots: Vec<usize> = (0..self.sample_count)
            .map(|i| find(&mut parent, i))
            .collect();
        let mut distinct_roots: Vec<usize> = roots.clone();
        distinct_roots.sort_unstable();
        distinct_roots.dedup();
        // The exact volume oracle is exponential in the dimension; beyond this
        // threshold the caller falls back to the (sound) box-splitting sweep.
        const MAX_EXACT_DIMENSION: usize = 7;
        for root in distinct_roots {
            let component: Vec<usize> = (0..self.sample_count)
                .filter(|i| roots[*i] == root)
                .collect();
            if component.len() > MAX_EXACT_DIMENSION {
                return None;
            }
            let index_of: std::collections::HashMap<usize, usize> = component
                .iter()
                .enumerate()
                .map(|(local, global)| (*global, local))
                .collect();
            let mut poly = UnitCubePolytope::new(component.len());
            let mut has_constraint = false;
            for (coeffs, bound) in &linear {
                let support: Vec<usize> = coeffs
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.is_zero())
                    .map(|(i, _)| i)
                    .collect();
                if support.is_empty() || roots[support[0]] != root {
                    continue;
                }
                let mut local = vec![Rational::zero(); component.len()];
                for i in support {
                    local[index_of[&i]] = coeffs[i].clone();
                }
                poly.add(local, bound.clone());
                has_constraint = true;
            }
            if has_constraint {
                probability *= &poly.probability();
                if probability.is_zero() {
                    return Some(probability);
                }
            }
        }
        Some(probability)
    }

    /// Lower-bounds the probability of the path region by adaptive box
    /// splitting with interval arithmetic — the "sweep" of §7.1. Works for
    /// arbitrary (non-linear) constraints; `max_boxes` bounds the work.
    pub fn box_lower_bound(&self, max_boxes: usize) -> Rational {
        self.try_box_lower_bound::<std::convert::Infallible>(max_boxes, &mut |_| Ok(()))
            .0
    }

    /// Interruptible [`SymbolicPath::box_lower_bound`]: `check(work)` runs
    /// periodically during the sweep and, when it fails, the partial sum
    /// accumulated so far is returned together with the error. Boxes already
    /// proven inside the region stay counted — a truncated sweep is still a
    /// sound lower bound, just a looser one, so deadline-bounded measurement
    /// never has to discard work.
    pub fn try_box_lower_bound<E>(
        &self,
        max_boxes: usize,
        check: &mut dyn FnMut(usize) -> Result<(), E>,
    ) -> (Rational, Option<E>) {
        let mut total = Rational::zero();
        let mut queue: VecDeque<IntervalBox> = VecDeque::new();
        queue.push_back(IntervalBox::unit(self.sample_count));
        let mut processed = 0usize;
        while let Some(cube) = queue.pop_front() {
            processed += 1;
            if processed > max_boxes {
                break;
            }
            if processed % 64 == 0 {
                if let Err(e) = check(processed) {
                    return (total, Some(e));
                }
            }
            let mut all_hold = true;
            let mut any_fail = false;
            for c in &self.constraints {
                match c.check_box(&cube) {
                    Some(true) => {}
                    Some(false) => {
                        any_fail = true;
                        break;
                    }
                    None => all_hold = false,
                }
            }
            if any_fail {
                continue;
            }
            if all_hold {
                total += cube.volume();
                continue;
            }
            match cube.bisect_widest() {
                Some((a, b)) => {
                    queue.push_back(a);
                    queue.push_back(b);
                }
                None => continue,
            }
        }
        (total, None)
    }

    /// Probability of the path region: exact for linear constraint systems,
    /// a box-splitting lower bound otherwise.
    pub fn probability(&self, max_boxes: usize) -> Rational {
        match self.exact_probability() {
            Some(p) => p,
            None => self.box_lower_bound(max_boxes),
        }
    }

    /// Searches the path region for a concrete *witness*: a sample vector on
    /// which the concrete machine provably follows this path. The search
    /// bisects the unit cube until it finds a box on which every constraint
    /// certainly holds and the terminal value is certainly defined, then
    /// returns the box midpoints.
    ///
    /// Strict (`> 0`) constraints are satisfied strictly because a box only
    /// passes `check_box` when the enclosure is certainly positive. Under
    /// call-by-name, every primitive application the concrete machine forces
    /// along the path occurs inside a recorded constraint or the terminal
    /// result, so requiring the result's interval enclosure to exist on the
    /// box rules out replays that would strand on a partial primitive (e.g.
    /// `log`) applied outside its domain.
    ///
    /// Returns `None` when `max_boxes` bisections were not enough — possible
    /// for thin or empty regions, never for a region containing an interior
    /// box wider than the budget allows refining to.
    pub fn find_witness(&self, max_boxes: usize) -> Option<Vec<Rational>> {
        // How a box relates to the path region: certainly outside, certainly
        // inside (with the result defined), or ambiguous — carrying the
        // descent heuristic: how many conditions the whole box decides true,
        // and how many its midpoint *point* satisfies.
        enum Fit {
            Outside,
            Inside,
            Ambiguous(usize, usize),
        }
        let conditions = self.constraints.len() + usize::from(self.result.is_some());
        let holds_on = |cube: &IntervalBox| -> Option<usize> {
            let mut decided = 0usize;
            for c in &self.constraints {
                match c.check_box(cube) {
                    Some(true) => decided += 1,
                    Some(false) => return None,
                    None => {}
                }
            }
            if let Some(result) = &self.result {
                if result.eval_interval(cube).is_some() {
                    decided += 1;
                }
            }
            Some(decided)
        };
        let midpoint =
            |cube: &IntervalBox| -> Vec<Rational> { cube.intervals().iter().map(Interval::midpoint).collect() };
        // A rational point is a degenerate box, and interval arithmetic on a
        // point decides affine constraints *exactly* (strict ones included —
        // the very comparisons that stay ambiguous forever on any box whose
        // edge sits on the constraint boundary). Transcendental enclosures
        // stay outward-rounded, so a point test is still conservative, never
        // unsound. Unlike `holds_on`, a failing condition does not zero the
        // score: the count must keep its gradient so the descent can trade
        // one violated constraint off against the others.
        let point_fit = |cube: &IntervalBox| -> usize {
            let point = IntervalBox::new(
                cube.intervals().iter().map(|iv| Interval::point(iv.midpoint())).collect(),
            );
            let mut satisfied = 0usize;
            for c in &self.constraints {
                if c.check_box(&point) == Some(true) {
                    satisfied += 1;
                }
            }
            if let Some(result) = &self.result {
                if result.eval_interval(&point).is_some() {
                    satisfied += 1;
                }
            }
            satisfied
        };
        let fit = |cube: &IntervalBox| -> Fit {
            let Some(decided) = holds_on(cube) else { return Fit::Outside };
            if decided == conditions {
                return Fit::Inside;
            }
            let at_midpoint = point_fit(cube);
            if at_midpoint == conditions {
                // The midpoint itself is certified: every constraint holds
                // there and the result is defined, so it is a witness even
                // though the surrounding box still straddles a boundary.
                return Fit::Inside;
            }
            Fit::Ambiguous(decided, at_midpoint)
        };
        let root = IntervalBox::unit(self.sample_count);
        match fit(&root) {
            Fit::Inside => return Some(midpoint(&root)),
            Fit::Outside => return None,
            Fit::Ambiguous(..) => {}
        }
        // Depth-first over ambiguous boxes — a witness is one point, so the
        // search descends into one half of every ambiguous box and
        // backtracks on refutation (breadth-first bisection would spread the
        // budget over the whole frontier and exhaust it at shallow depths
        // once a path has many sample dimensions). Children are evaluated
        // *before* pushing and ordered by how promising they are: first by
        // conditions the whole box decides true (bisecting the dimension of
        // an undecided single-variable constraint yields one child that
        // settles it), then by conditions the midpoint satisfies (the only
        // gradient available for multivariate constraints like `α_i > α_j`,
        // whose box checks tie on both halves of every bisection along the
        // boundary diagonal).
        let mut stack = vec![root];
        let mut processed = 0usize;
        while let Some(cube) = stack.pop() {
            processed += 1;
            if processed > max_boxes {
                break;
            }
            let Some((a, b)) = cube.bisect_widest() else { continue };
            let fit_a = fit(&a);
            if matches!(fit_a, Fit::Inside) {
                return Some(midpoint(&a));
            }
            let fit_b = fit(&b);
            if matches!(fit_b, Fit::Inside) {
                return Some(midpoint(&b));
            }
            match (fit_a, fit_b) {
                (Fit::Ambiguous(da, pa), Fit::Ambiguous(db, pb)) => {
                    // Last pushed is popped first.
                    if (da, pa) <= (db, pb) {
                        stack.push(a);
                        stack.push(b);
                    } else {
                        stack.push(b);
                        stack.push(a);
                    }
                }
                (Fit::Ambiguous(..), _) => stack.push(a),
                (_, Fit::Ambiguous(..)) => stack.push(b),
                _ => {}
            }
        }
        None
    }
}

/// A path that was abandoned mid-flight: it neither terminated nor got
/// stuck, but ran out of step budget, fell beyond the path budget, or was
/// still paused in the BFS queue when an interruption cut the exploration
/// short. Frontier paths carry the mass the reported lower bound is missing;
/// the provenance layer summarises them as the `unaccounted_mass` gap and a
/// depth histogram (see [`crate::provenance`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPath {
    /// Small-step reductions performed before the path was cut off.
    pub steps: usize,
    /// Branch decisions taken so far — `branches.len()` is the path's depth
    /// in the symbolic execution tree.
    pub branches: Vec<Branch>,
}

impl FrontierPath {
    /// Depth of the path in the symbolic execution tree (branches taken).
    pub fn depth(&self) -> usize {
        self.branches.len()
    }
}

/// The outcome of a bounded symbolic exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Paths that reached a value within the budget.
    pub terminated: Vec<SymbolicPath>,
    /// Number of paths abandoned because the step budget, the path budget or
    /// an interruption cut them off.
    pub out_of_fuel: usize,
    /// One record per abandoned path (so `frontier.len() == out_of_fuel`),
    /// in abandonment order: what was still in flight when the exploration
    /// stopped. The substitution reference populates this identically — the
    /// differential suite compares whole [`Exploration`] values.
    pub frontier: Vec<FrontierPath>,
    /// Number of paths that got stuck.
    pub stuck: usize,
    /// `true` when the exploration was cancelled by the cooperative check of
    /// [`try_explore`]. The `terminated` paths collected up to that point are
    /// still sound (Theorem 3.4): interruption only loses bound mass, never
    /// adds unsound mass.
    pub interrupted: bool,
    /// Machine profile of the run (steps, event kinds, forks, max BFS
    /// frontier), present iff [`ExplorationConfig::profile`] was set. The
    /// substitution reference never profiles, so differential comparisons
    /// against it require profiling off (both sides `None`).
    pub profile: Option<EngineProfile>,
}

/// Configuration of the symbolic exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorationConfig {
    /// Maximum number of small steps per path (the exploration depth `d`).
    pub max_steps_per_path: usize,
    /// Maximum total number of paths to process (safety valve).
    pub max_paths: usize,
    /// When `true`, the exploration attaches a machine profile and reports it
    /// in [`Exploration::profile`]. Off by default: the disabled path costs
    /// one `Option` check per machine step/event.
    pub profile: bool,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        ExplorationConfig {
            max_steps_per_path: 500,
            max_paths: 100_000,
            profile: false,
        }
    }
}

impl ExplorationConfig {
    /// Builder: sets the exploration depth (max small steps per path).
    #[must_use]
    pub fn with_max_steps_per_path(mut self, max_steps_per_path: usize) -> Self {
        self.max_steps_per_path = max_steps_per_path;
        self
    }

    /// Builder: sets the total path budget.
    #[must_use]
    pub fn with_max_paths(mut self, max_paths: usize) -> Self {
        self.max_paths = max_paths;
        self
    }

    /// Builder: enables or disables machine profiling.
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }
}

fn sym_const(r: &Rational) -> SymValue {
    SymValue::Const(r.clone())
}

fn sym_spec() -> DomainSpec<SymValue, NoAtom> {
    DomainSpec {
        strategy: Strategy::CallByName,
        lit_of_num: sym_const,
        atom_of_free: None,
        opaque_fix: false,
        // The symbolic stepper tests value-ness before fuel.
        value_first: true,
    }
}

/// One paused path of a checkpointed exploration, as *replayable data*: the
/// branch decisions (`κ` prefix) that lead from the root to the paused node,
/// plus the step count at which the path was cut off.
///
/// Machines borrow the term they run, so a frontier cannot be serialised as
/// machine state; instead a resumed exploration replays each seed
/// deterministically on a fresh machine, consuming the recorded branches as
/// an oracle at every symbolic conditional (constant guards decide
/// themselves and consume nothing). Symbolic execution is deterministic
/// given the oracle, so replay lands on exactly the paused node; the sibling
/// subtrees along the way were already accounted for (terminated, stuck, or
/// their own frontier records) by the run that produced the checkpoint, and
/// are *not* re-explored — replay follows the oracle without forking.
///
/// `steps` lets a resume short-circuit fuel-exhausted paths: a seed with
/// `steps >= max_steps_per_path` would only exhaust again under the same
/// budget, so it is re-tallied into the frontier without replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySeed {
    /// Small-step reductions the path had performed when it was cut off.
    pub steps: usize,
    /// Branch decisions from the root to the paused node.
    pub branches: Vec<Branch>,
}

impl ReplaySeed {
    /// Renders the seed as `"<steps>:<TE...>"` — one `T`/`E` per branch —
    /// the compact form partial-result cache entries store.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}:", self.steps);
        for b in &self.branches {
            out.push(match b {
                Branch::Then => 'T',
                Branch::Else => 'E',
            });
        }
        out
    }

    /// Parses the [`ReplaySeed::render`] form; `None` on any malformation.
    #[must_use]
    pub fn parse(text: &str) -> Option<ReplaySeed> {
        let (steps, branches) = text.split_once(':')?;
        let steps = steps.parse().ok()?;
        let branches = branches
            .chars()
            .map(|c| match c {
                'T' => Some(Branch::Then),
                'E' => Some(Branch::Else),
                _ => None,
            })
            .collect::<Option<Vec<Branch>>>()?;
        Some(ReplaySeed { steps, branches })
    }
}

/// Converts a checkpointed frontier into the seeds a resumed exploration
/// takes: the [`ReplaySeed::render`]-compatible data of every frontier path.
#[must_use]
pub fn frontier_seeds(frontier: &[FrontierPath]) -> Vec<ReplaySeed> {
    frontier
        .iter()
        .map(|p| ReplaySeed { steps: p.steps, branches: p.branches.clone() })
        .collect()
}

/// One in-flight path of the exploration: a paused machine plus the symbolic
/// bookkeeping (sample counter, oracle, constraints). `oracle` holds branch
/// decisions still to be *replayed* from a [`ReplaySeed`] — empty except
/// while a resumed path is being driven back to its paused node.
struct PathState<'a> {
    machine: Machine<'a, SymValue, NoAtom>,
    samples: usize,
    branches: Vec<Branch>,
    constraints: Vec<SymConstraint>,
    oracle: VecDeque<Branch>,
}

impl PathState<'_> {
    /// The frontier record for an abandoned path. Replay decisions not yet
    /// consumed are appended: recording only the replayed prefix would name
    /// an *ancestor* of the checkpointed node, and resuming from an ancestor
    /// re-explores sibling subtrees whose mass the previous run already
    /// counted — double counting, i.e. an unsound bound.
    fn into_frontier(self) -> FrontierPath {
        let PathState { machine, mut branches, oracle, .. } = self;
        branches.extend(oracle);
        FrontierPath { steps: machine.steps(), branches }
    }
}

/// Explores the CbN symbolic execution tree of a closed term breadth-first,
/// collecting every path that reaches a value within the budget.
pub fn explore(term: &Term, config: &ExplorationConfig) -> Exploration {
    let (exploration, interrupted) =
        try_explore::<std::convert::Infallible>(term, config, &mut |_| Ok(()));
    debug_assert!(interrupted.is_none());
    exploration
}

/// Like [`explore`], but calls `check(work)` with a monotone work counter —
/// once before each path and periodically *within* long paths — and stops
/// early with its error when it fails.
///
/// The returned [`Exploration`] contains every path that terminated before
/// the interruption (a sound partial result); abandoned paths are tallied in
/// `out_of_fuel` and `interrupted` is set. This is the hook through which the
/// analysis service enforces per-request deadlines mid-exploration.
pub fn try_explore<E>(
    term: &Term,
    config: &ExplorationConfig,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
) -> (Exploration, Option<E>) {
    try_explore_seeded(term, config, None, check, &mut |_, _| Ok(()))
}

/// The resumable, incrementally-measuring variant of [`try_explore`].
///
/// * `seeds` — `None` starts a fresh exploration from the root;
///   `Some(seeds)` *resumes* a checkpointed one: each seed is replayed
///   deterministically back to its paused node (see [`ReplaySeed`]) and
///   exploration continues from there. The resulting exploration covers
///   exactly the subtrees the checkpoint left unexplored, so combining it
///   with the checkpointed run's tallies reproduces a from-scratch run —
///   terminated paths partition identically, and no measured path is ever
///   re-explored.
/// * `on_terminated` — called with every path the instant it terminates,
///   *before* exploration continues, so callers can measure path volumes
///   incrementally instead of post-hoc. It receives the cooperative check
///   as its second argument (for deadline-aware measurement); returning an
///   error interrupts the exploration exactly like a failing `check`: the
///   queue drains to the frontier and the partial result stays sound.
///
/// With `seeds = None` and a no-op hook this is exactly [`try_explore`] —
/// the differential suite's guarantee carries over unchanged.
pub fn try_explore_seeded<'t, E>(
    term: &'t Term,
    config: &ExplorationConfig,
    seeds: Option<&[ReplaySeed]>,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
    on_terminated: &mut dyn FnMut(
        &SymbolicPath,
        &mut dyn FnMut(usize) -> Result<(), E>,
    ) -> Result<(), E>,
) -> (Exploration, Option<E>) {
    try_explore_seeded_progress(term, config, seeds, None, check, on_terminated)
}

/// Like [`try_explore_seeded`], but additionally publishes live progress
/// (work counter, frontier size, current path depth) into `progress` at the
/// existing cooperative-check poll points — once per path plus every 256
/// work units within long paths. When `progress` is `None` the cost is a
/// single `Option` discriminant check per poll point; the overhead guard in
/// `crates/bench` holds the disabled path to within 5% of baseline.
///
/// Terminated-path counts and the monotone bound are published by the
/// *measuring* caller ([`try_lower_bound`](crate::try_lower_bound) and
/// friends), which alone knows path volumes.
pub fn try_explore_seeded_progress<'t, E>(
    term: &'t Term,
    config: &ExplorationConfig,
    seeds: Option<&[ReplaySeed]>,
    progress: Option<&ProgressCell>,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
    on_terminated: &mut dyn FnMut(
        &SymbolicPath,
        &mut dyn FnMut(usize) -> Result<(), E>,
    ) -> Result<(), E>,
) -> (Exploration, Option<E>) {
    let profile = config.profile.then(ProfileCell::shared);
    let new_machine = |oracle: VecDeque<Branch>| {
        let mut machine = Machine::new(sym_spec(), term, config.max_steps_per_path);
        if let Some(cell) = &profile {
            machine.set_profile(Rc::clone(cell));
        }
        PathState {
            machine,
            samples: 0,
            branches: Vec::new(),
            constraints: Vec::new(),
            oracle,
        }
    };
    let mut queue: VecDeque<PathState<'_>> = VecDeque::new();
    let mut result = Exploration {
        terminated: Vec::new(),
        out_of_fuel: 0,
        frontier: Vec::new(),
        stuck: 0,
        interrupted: false,
        profile: None,
    };
    match seeds {
        None => queue.push_back(new_machine(VecDeque::new())),
        Some(seeds) => {
            for seed in seeds {
                if seed.steps >= config.max_steps_per_path {
                    // The seed exhausted this very step budget: replaying it
                    // would grind through `max_steps_per_path` reductions
                    // only to run out of fuel at the same node. Re-tally it
                    // into the frontier directly.
                    result.out_of_fuel += 1;
                    result.frontier.push(FrontierPath {
                        steps: seed.steps,
                        branches: seed.branches.clone(),
                    });
                } else {
                    queue.push_back(new_machine(seed.branches.iter().copied().collect()));
                }
            }
        }
    }
    let mut processed = 0usize;
    let mut work = 0usize;
    let mut interruption: Option<E> = None;
    'exploration: while let Some(mut path) = queue.pop_front() {
        processed += 1;
        if processed > config.max_paths {
            result.out_of_fuel += 1 + queue.len();
            result.frontier.push(path.into_frontier());
            result.frontier.extend(queue.drain(..).map(PathState::into_frontier));
            break;
        }
        if let Some(cell) = progress {
            cell.publish_exploration(work as u64, queue.len() as u64, path.machine.steps() as u64);
        }
        if let Err(e) = check(work) {
            result.interrupted = true;
            result.out_of_fuel += 1 + queue.len();
            result.frontier.push(path.into_frontier());
            result.frontier.extend(queue.drain(..).map(PathState::into_frontier));
            result.profile = profile.as_ref().map(|cell| cell.snapshot());
            return (result, Some(e));
        }
        loop {
            work += 1;
            if work % 256 == 0 {
                if let Some(cell) = progress {
                    cell.publish_exploration(
                        work as u64,
                        queue.len() as u64,
                        path.machine.steps() as u64,
                    );
                }
                if let Err(e) = check(work) {
                    result.interrupted = true;
                    result.out_of_fuel += 1 + queue.len();
                    result.frontier.push(path.into_frontier());
                    result.frontier.extend(queue.drain(..).map(PathState::into_frontier));
                    interruption = Some(e);
                    break 'exploration;
                }
            }
            match path.machine.next_event() {
                Event::Done(value) => {
                    let terminated = SymbolicPath {
                        sample_count: path.samples,
                        branches: std::mem::take(&mut path.branches),
                        constraints: std::mem::take(&mut path.constraints),
                        steps: path.machine.steps(),
                        result: value.into_lit(),
                    };
                    let hooked = on_terminated(&terminated, check);
                    result.terminated.push(terminated);
                    if let Err(e) = hooked {
                        result.interrupted = true;
                        result.out_of_fuel += queue.len();
                        result.frontier.extend(queue.drain(..).map(PathState::into_frontier));
                        interruption = Some(e);
                        break 'exploration;
                    }
                    break;
                }
                Event::OutOfFuel => {
                    result.out_of_fuel += 1;
                    result.frontier.push(path.into_frontier());
                    break;
                }
                Event::Stuck(_) => {
                    result.stuck += 1;
                    break;
                }
                Event::Sample => {
                    let v = SymValue::Var(path.samples);
                    path.samples += 1;
                    path.machine.resume_lit(v);
                }
                Event::PrimReady(p, args) => {
                    // Constant-fold when every argument is a constant;
                    // postpone the application otherwise.
                    if args.iter().all(SymValue::is_constant) {
                        let concrete: Option<Vec<Rational>> =
                            args.iter().map(|v| v.eval(&[])).collect();
                        match concrete.and_then(|c| p.eval(&c)) {
                            Some(r) => path.machine.resume_lit(SymValue::Const(r)),
                            None => {
                                result.stuck += 1;
                                break;
                            }
                        }
                    } else {
                        path.machine.resume_lit(SymValue::Prim(p, args));
                    }
                }
                Event::BranchReady(guard) => {
                    // Constant guards are decided outright; symbolic guards
                    // fork the paused machine into both branches — unless a
                    // replay oracle is pending, in which case the recorded
                    // decision is followed without forking (the sibling
                    // subtree belongs to the run that wrote the checkpoint).
                    if let SymValue::Const(r) = &guard {
                        let take_then = !r.is_positive();
                        path.machine.resume_branch(take_then);
                    } else if let Some(b) = path.oracle.pop_front() {
                        let take_then = matches!(b, Branch::Then);
                        path.machine.resume_branch(take_then);
                        path.branches.push(b);
                        path.constraints.push(SymConstraint {
                            value: guard,
                            kind: if take_then {
                                ConstraintKind::NonPositive
                            } else {
                                ConstraintKind::Positive
                            },
                        });
                    } else {
                        let mut else_path = PathState {
                            machine: path.machine.clone(),
                            samples: path.samples,
                            branches: path.branches.clone(),
                            constraints: path.constraints.clone(),
                            oracle: VecDeque::new(),
                        };
                        path.machine.resume_branch(true);
                        path.branches.push(Branch::Then);
                        path.constraints.push(SymConstraint {
                            value: guard.clone(),
                            kind: ConstraintKind::NonPositive,
                        });
                        else_path.machine.resume_branch(false);
                        else_path.branches.push(Branch::Else);
                        else_path.constraints.push(SymConstraint {
                            value: guard,
                            kind: ConstraintKind::Positive,
                        });
                        queue.push_back(path);
                        queue.push_back(else_path);
                        if let Some(cell) = &profile {
                            cell.count_fork();
                            cell.observe_frontier(queue.len());
                        }
                        break;
                    }
                }
                Event::ScoreReady(v) => match &v {
                    SymValue::Const(r) if r.is_negative() => {
                        result.stuck += 1;
                        break;
                    }
                    SymValue::Const(_) => path.machine.resume_lit(v),
                    _ => {
                        path.constraints.push(SymConstraint {
                            value: v.clone(),
                            kind: ConstraintKind::NonNegative,
                        });
                        path.machine.resume_lit(v);
                    }
                },
                Event::AtomApplied(atom) => match atom {},
                Event::FixEncountered(_) => {
                    unreachable!("opaque_fix is off for symbolic exploration")
                }
            }
        }
    }
    result.profile = profile.as_ref().map(|cell| cell.snapshot());
    (result, interruption)
}

// --------------------------------------------------------------- reference

/// The internal symbolic term of the substitution-based reference stepper:
/// SPCF with sample variables and postponed primitive applications.
#[derive(Debug, Clone, PartialEq)]
enum STerm {
    Val(SymValue),
    Var(Ident),
    Lam(Ident, Box<STerm>),
    Fix(Ident, Ident, Box<STerm>),
    App(Box<STerm>, Box<STerm>),
    If(Box<STerm>, Box<STerm>, Box<STerm>),
    Prim(Prim, Vec<STerm>),
    Sample,
    Score(Box<STerm>),
}

impl STerm {
    fn embed(term: &Term) -> STerm {
        match term {
            Term::Var(x) => STerm::Var(x.clone()),
            Term::Num(r) => STerm::Val(SymValue::Const(r.clone())),
            Term::Lam(x, b) => STerm::Lam(x.clone(), Box::new(STerm::embed(b))),
            Term::Fix(p, x, b) => STerm::Fix(p.clone(), x.clone(), Box::new(STerm::embed(b))),
            Term::App(f, a) => STerm::App(Box::new(STerm::embed(f)), Box::new(STerm::embed(a))),
            Term::If(g, t, e) => STerm::If(
                Box::new(STerm::embed(g)),
                Box::new(STerm::embed(t)),
                Box::new(STerm::embed(e)),
            ),
            Term::Prim(p, args) => STerm::Prim(*p, args.iter().map(STerm::embed).collect()),
            Term::Sample => STerm::Sample,
            Term::Score(m) => STerm::Score(Box::new(STerm::embed(m))),
        }
    }

    /// Symbolic values of the grammar. A lone free variable is *not* treated
    /// as a terminated result (an open term carries no termination mass), so
    /// the reference agrees with the environment machine on open inputs.
    fn is_value(&self) -> bool {
        matches!(self, STerm::Val(_) | STerm::Lam(_, _) | STerm::Fix(_, _, _))
    }

    fn as_symvalue(&self) -> Option<&SymValue> {
        match self {
            STerm::Val(v) => Some(v),
            _ => None,
        }
    }

    fn subst(&self, x: &Ident, replacement: &STerm) -> STerm {
        match self {
            STerm::Var(y) => {
                if y == x {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            STerm::Val(_) | STerm::Sample => self.clone(),
            STerm::Lam(y, b) => {
                if y == x {
                    self.clone()
                } else {
                    STerm::Lam(y.clone(), Box::new(b.subst(x, replacement)))
                }
            }
            STerm::Fix(phi, y, b) => {
                if phi == x || y == x {
                    self.clone()
                } else {
                    STerm::Fix(phi.clone(), y.clone(), Box::new(b.subst(x, replacement)))
                }
            }
            STerm::App(f, a) => STerm::App(
                Box::new(f.subst(x, replacement)),
                Box::new(a.subst(x, replacement)),
            ),
            STerm::If(g, t, e) => STerm::If(
                Box::new(g.subst(x, replacement)),
                Box::new(t.subst(x, replacement)),
                Box::new(e.subst(x, replacement)),
            ),
            STerm::Prim(p, args) => {
                STerm::Prim(*p, args.iter().map(|a| a.subst(x, replacement)).collect())
            }
            STerm::Score(m) => STerm::Score(Box::new(m.subst(x, replacement))),
        }
    }
}

struct RefPathState {
    term: STerm,
    samples: usize,
    branches: Vec<Branch>,
    constraints: Vec<SymConstraint>,
    steps: usize,
}

/// The substitution-based reference explorer: semantically identical to
/// [`explore`] but small-stepping by whole-term capture-avoiding substitution
/// (`O(d²)` per path of depth `d` instead of `O(d)`).
///
/// Kept — like `probterm_spcf::run_substitution` — as the executable
/// specification the environment machine is differentially tested against;
/// see `tests/symbolic_differential.rs` and the `symbolic_scaling` benchmark.
pub fn explore_substitution(term: &Term, config: &ExplorationConfig) -> Exploration {
    let mut queue: VecDeque<RefPathState> = VecDeque::new();
    queue.push_back(RefPathState {
        term: STerm::embed(term),
        samples: 0,
        branches: Vec::new(),
        constraints: Vec::new(),
        steps: 0,
    });
    let mut result = Exploration {
        terminated: Vec::new(),
        out_of_fuel: 0,
        frontier: Vec::new(),
        stuck: 0,
        interrupted: false,
        profile: None,
    };
    let mut processed = 0usize;
    while let Some(mut state) = queue.pop_front() {
        processed += 1;
        if processed > config.max_paths {
            result.out_of_fuel += 1 + queue.len();
            result.frontier.push(FrontierPath {
                steps: state.steps,
                branches: state.branches,
            });
            result.frontier.extend(queue.drain(..).map(|s| FrontierPath {
                steps: s.steps,
                branches: s.branches,
            }));
            break;
        }
        loop {
            if state.term.is_value() {
                result.terminated.push(SymbolicPath {
                    sample_count: state.samples,
                    branches: state.branches,
                    constraints: state.constraints,
                    steps: state.steps,
                    result: state.term.as_symvalue().cloned(),
                });
                break;
            }
            if state.steps >= config.max_steps_per_path {
                result.out_of_fuel += 1;
                result.frontier.push(FrontierPath {
                    steps: state.steps,
                    branches: std::mem::take(&mut state.branches),
                });
                break;
            }
            match sym_step(state.term.clone(), &mut state) {
                StepResult::Continue(next) => {
                    state.term = next;
                    state.steps += 1;
                }
                StepResult::Fork(then_state, else_state) => {
                    queue.push_back(then_state);
                    queue.push_back(else_state);
                    break;
                }
                StepResult::Stuck => {
                    result.stuck += 1;
                    break;
                }
            }
        }
    }
    result
}

enum StepResult {
    Continue(STerm),
    Fork(RefPathState, RefPathState),
    Stuck,
}

/// One symbolic CbN step by substitution. Forks at conditionals whose guard
/// is a symbolic value that mentions sample variables; guards that are
/// constants are resolved deterministically.
fn sym_step(term: STerm, state: &mut RefPathState) -> StepResult {
    enum Frame {
        AppFun(STerm),
        If(STerm, STerm),
        Score,
        Prim(Prim, Vec<STerm>, Vec<STerm>),
    }
    fn plug(frames: Vec<Frame>, mut t: STerm) -> STerm {
        for frame in frames.into_iter().rev() {
            t = match frame {
                Frame::AppFun(arg) => STerm::App(Box::new(t), Box::new(arg)),
                Frame::If(a, b) => STerm::If(Box::new(t), Box::new(a), Box::new(b)),
                Frame::Score => STerm::Score(Box::new(t)),
                Frame::Prim(p, mut prefix, suffix) => {
                    prefix.push(t);
                    prefix.extend(suffix);
                    STerm::Prim(p, prefix)
                }
            };
        }
        t
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut current = term;
    loop {
        match current {
            STerm::App(fun, arg) => match *fun {
                STerm::Lam(ref x, ref body) => {
                    return StepResult::Continue(plug(frames, body.subst(x, &arg)));
                }
                STerm::Fix(ref phi, ref x, ref body) => {
                    let unrolled = body.subst(x, &arg).subst(phi, &fun);
                    return StepResult::Continue(plug(frames, unrolled));
                }
                ref f if f.is_value() => return StepResult::Stuck,
                _ => {
                    frames.push(Frame::AppFun(*arg));
                    current = *fun;
                }
            },
            STerm::If(guard, then, els) => match *guard {
                STerm::Val(v) => {
                    // Constant guards are decided outright; symbolic guards fork.
                    if let SymValue::Const(r) = &v {
                        let taken = if r.is_positive() { *els } else { *then };
                        return StepResult::Continue(plug(frames, taken));
                    }
                    // Rebuild both continuations (the frames are shared, so the
                    // then-continuation uses a structural copy of them).
                    let then_frames_term = plug(
                        frames
                            .iter()
                            .map(|f| match f {
                                Frame::AppFun(a) => Frame::AppFun(a.clone()),
                                Frame::If(a, b) => Frame::If(a.clone(), b.clone()),
                                Frame::Score => Frame::Score,
                                Frame::Prim(p, a, b) => Frame::Prim(*p, a.clone(), b.clone()),
                            })
                            .collect(),
                        (*then).clone(),
                    );
                    let else_frames_term = plug(frames, *els);
                    let mut then_state = RefPathState {
                        term: then_frames_term,
                        samples: state.samples,
                        branches: state.branches.clone(),
                        constraints: state.constraints.clone(),
                        steps: state.steps + 1,
                    };
                    then_state.branches.push(Branch::Then);
                    then_state.constraints.push(SymConstraint {
                        value: v.clone(),
                        kind: ConstraintKind::NonPositive,
                    });
                    let mut else_state = RefPathState {
                        term: else_frames_term,
                        samples: state.samples,
                        branches: state.branches.clone(),
                        constraints: state.constraints.clone(),
                        steps: state.steps + 1,
                    };
                    else_state.branches.push(Branch::Else);
                    else_state.constraints.push(SymConstraint {
                        value: v,
                        kind: ConstraintKind::Positive,
                    });
                    return StepResult::Fork(then_state, else_state);
                }
                ref g if g.is_value() => return StepResult::Stuck,
                _ => {
                    frames.push(Frame::If(*then, *els));
                    current = *guard;
                }
            },
            STerm::Score(inner) => match *inner {
                STerm::Val(v) => {
                    match &v {
                        SymValue::Const(r) if r.is_negative() => return StepResult::Stuck,
                        SymValue::Const(_) => {}
                        _ => state.constraints.push(SymConstraint {
                            value: v.clone(),
                            kind: ConstraintKind::NonNegative,
                        }),
                    }
                    return StepResult::Continue(plug(frames, STerm::Val(v)));
                }
                ref m if m.is_value() => return StepResult::Stuck,
                _ => {
                    frames.push(Frame::Score);
                    current = *inner;
                }
            },
            STerm::Sample => {
                let v = SymValue::Var(state.samples);
                state.samples += 1;
                return StepResult::Continue(plug(frames, STerm::Val(v)));
            }
            STerm::Prim(p, mut args) => {
                match args.iter().position(|a| a.as_symvalue().is_none()) {
                    None => {
                        let values: Vec<SymValue> = args
                            .iter()
                            .map(|a| a.as_symvalue().expect("all symbolic values").clone())
                            .collect();
                        // Constant-fold when every argument is a constant.
                        let folded = if values.iter().all(SymValue::is_constant) {
                            let concrete: Option<Vec<Rational>> =
                                values.iter().map(|v| v.eval(&[])).collect();
                            match concrete.and_then(|c| p.eval(&c)) {
                                Some(r) => SymValue::Const(r),
                                None => return StepResult::Stuck,
                            }
                        } else {
                            SymValue::Prim(p, values)
                        };
                        return StepResult::Continue(plug(frames, STerm::Val(folded)));
                    }
                    Some(i) if args[i].is_value() => return StepResult::Stuck,
                    Some(i) => {
                        let suffix = args.split_off(i + 1);
                        let focus = args.pop().expect("argument at position i");
                        frames.push(Frame::Prim(p, args, suffix));
                        current = focus;
                    }
                }
            }
            STerm::Var(_) | STerm::Val(_) | STerm::Lam(_, _) | STerm::Fix(_, _, _) => {
                return StepResult::Stuck;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::parse_term;

    fn explore_src(src: &str, steps: usize) -> Exploration {
        let term = parse_term(src).unwrap();
        explore(
            &term,
            &ExplorationConfig::default()
                .with_max_steps_per_path(steps)
                .with_max_paths(10_000),
        )
    }

    #[test]
    fn deterministic_terms_have_one_trivial_path() {
        let e = explore_src("1 + 2 * 3", 100);
        assert_eq!(e.terminated.len(), 1);
        let p = &e.terminated[0];
        assert_eq!(p.sample_count, 0);
        assert!(p.constraints.is_empty());
        assert_eq!(p.result, Some(SymValue::Const(Rational::from_int(7))));
        assert_eq!(p.probability(100), Rational::one());
    }

    #[test]
    fn single_conditional_splits_the_unit_interval() {
        let e = explore_src("if sample <= 0.25 then 0 else 1", 100);
        assert_eq!(e.terminated.len(), 2);
        let total: Rational = e.terminated.iter().map(|p| p.probability(100)).sum();
        assert_eq!(total, Rational::one());
        let probs: Vec<Rational> = e.terminated.iter().map(|p| p.probability(100)).collect();
        assert!(probs.contains(&Rational::from_ratio(1, 4)));
        assert!(probs.contains(&Rational::from_ratio(3, 4)));
        // Each path records one branch decision and one constraint.
        for p in &e.terminated {
            assert_eq!(p.branches.len(), 1);
            assert_eq!(p.constraints.len(), 1);
            assert!(p.is_linear());
        }
    }

    #[test]
    fn replay_seeds_round_trip_and_reject_garbage() {
        let seed = ReplaySeed {
            steps: 42,
            branches: vec![Branch::Then, Branch::Else, Branch::Else, Branch::Then],
        };
        assert_eq!(seed.render(), "42:TEET");
        assert_eq!(ReplaySeed::parse("42:TEET"), Some(seed));
        assert_eq!(ReplaySeed::parse("7:"), Some(ReplaySeed { steps: 7, branches: vec![] }));
        for bad in ["", "TEET", "42", "42:TXET", "-1:T", "9:te"] {
            assert_eq!(ReplaySeed::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn seeded_exploration_covers_exactly_the_frontier_subtrees() {
        // Cut a geometric exploration short, then re-explore from its
        // frontier seeds: the union of terminated paths must equal a full
        // exploration's, with no path appearing twice.
        let term =
            parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        let config = ExplorationConfig::default().with_max_steps_per_path(150);
        let full = explore(&term, &config);
        let mut budget = 6usize;
        let (first, err) = try_explore(&term, &config, &mut |_| {
            if budget == 0 {
                Err(())
            } else {
                budget -= 1;
                Ok(())
            }
        });
        assert!(err.is_some());
        assert!(first.interrupted && !first.frontier.is_empty());
        let seeds = frontier_seeds(&first.frontier);
        let (second, err2) = try_explore_seeded::<()>(
            &term,
            &config,
            Some(&seeds),
            &mut |_| Ok(()),
            &mut |_, _| Ok(()),
        );
        assert!(err2.is_none());
        let key = |p: &&SymbolicPath| -> Vec<bool> {
            p.branches.iter().map(|b| matches!(b, Branch::Else)).collect()
        };
        let mut combined: Vec<&SymbolicPath> =
            first.terminated.iter().chain(second.terminated.iter()).collect();
        combined.sort_by_key(key);
        let mut reference: Vec<&SymbolicPath> = full.terminated.iter().collect();
        reference.sort_by_key(key);
        assert_eq!(combined, reference, "resume must partition the path tree");
        assert_eq!(first.stuck + second.stuck, full.stuck);
        assert_eq!(second.out_of_fuel, full.out_of_fuel);
    }

    #[test]
    fn triangle_example_has_nonbox_path_regions() {
        // Ex. 3.5: the no-recursion path terminates iff α0 + α1 ≤ 1, probability 1/2.
        let e = explore_src(
            "(fix phi x. if sample + sample - 1 then x else phi x) 0",
            25,
        );
        assert!(!e.terminated.is_empty());
        let first = &e.terminated[0];
        assert_eq!(first.sample_count, 2);
        assert!(first.is_linear());
        assert_eq!(first.exact_probability(), Some(Rational::from_ratio(1, 2)));
        // The box-splitting lower bound converges towards 1/2 from below.
        let lb = first.box_lower_bound(4_000);
        assert!(lb <= Rational::from_ratio(1, 2));
        assert!(lb > Rational::from_ratio(2, 5), "lower bound too weak: {lb}");
    }

    #[test]
    fn geometric_paths_have_powers_of_p() {
        let e = explore_src(
            "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0",
            200,
        );
        // Terminating after k failures has probability (1/2)^{k+1}.
        let mut probs: Vec<Rational> = e.terminated.iter().map(|p| p.probability(100)).collect();
        probs.sort();
        probs.reverse();
        assert!(probs.len() >= 3);
        assert_eq!(probs[0], Rational::from_ratio(1, 2));
        assert_eq!(probs[1], Rational::from_ratio(1, 4));
        assert_eq!(probs[2], Rational::from_ratio(1, 8));
        // All paths are linear and their branch histories are distinct.
        for p in &e.terminated {
            assert!(p.is_linear());
        }
    }

    #[test]
    fn score_records_nonnegativity_constraints() {
        let e = explore_src("score(sample - 1/2)", 100);
        assert_eq!(e.terminated.len(), 1);
        let p = &e.terminated[0];
        assert_eq!(p.constraints.len(), 1);
        assert_eq!(p.constraints[0].kind, ConstraintKind::NonNegative);
        assert_eq!(p.exact_probability(), Some(Rational::from_ratio(1, 2)));
        // A certainly-negative score is stuck.
        let e = explore_src("score(0 - 1)", 100);
        assert_eq!(e.terminated.len(), 0);
        assert_eq!(e.stuck, 1);
    }

    #[test]
    fn nonlinear_constraints_fall_back_to_box_bounds() {
        // Terminates iff α0·α1 ≤ 1/2; the region has measure (1 + ln 2)/2 ≈ 0.8466.
        let e = explore_src("if sample * sample <= 1/2 then 0 else 1", 100);
        assert_eq!(e.terminated.len(), 2);
        let nonlinear = e
            .terminated
            .iter()
            .find(|p| p.branches == vec![Branch::Then])
            .unwrap();
        assert!(!nonlinear.is_linear());
        assert!(nonlinear.exact_probability().is_none());
        let lb = nonlinear.probability(3_000);
        let truth = (1.0 + std::f64::consts::LN_2) / 2.0;
        assert!(lb.to_f64() <= truth);
        assert!(lb.to_f64() > truth - 0.1, "lower bound too weak: {}", lb.to_f64());
    }

    #[test]
    fn sample_variable_evaluation_and_affine_views() {
        // α0 + 2·α1 - 1
        let v = SymValue::Prim(
            Prim::Sub,
            vec![
                SymValue::Prim(
                    Prim::Add,
                    vec![
                        SymValue::Var(0),
                        SymValue::Prim(
                            Prim::Mul,
                            vec![SymValue::Const(Rational::from_int(2)), SymValue::Var(1)],
                        ),
                    ],
                ),
                SymValue::Const(Rational::one()),
            ],
        );
        let assignment = vec![Rational::from_ratio(1, 2), Rational::from_ratio(1, 4)];
        assert_eq!(v.eval(&assignment), Some(Rational::zero()));
        let (coeffs, k) = v.as_affine(2).unwrap();
        assert_eq!(coeffs, vec![Rational::one(), Rational::from_int(2)]);
        assert_eq!(k, -Rational::one());
        assert_eq!(v.max_var(), Some(1));
        assert!(!v.is_constant());
        // sig(α0) is not affine but has an interval enclosure.
        let s = SymValue::Prim(Prim::Sig, vec![SymValue::Var(0)]);
        assert!(s.as_affine(1).is_none());
        let enclosure = s.eval_interval(&IntervalBox::unit(1)).unwrap();
        assert!(enclosure.lo().to_f64() >= 0.49 && enclosure.hi().to_f64() <= 0.74);
        assert!(format!("{v}").contains("α0"));
    }

    #[test]
    fn out_of_fuel_paths_are_counted_not_lost() {
        let e = explore_src("(fix phi x. if sample <= 1/2 then x else phi x) 0", 12);
        assert!(e.out_of_fuel > 0);
        assert!(!e.terminated.is_empty());
        assert!(!e.interrupted);
    }

    #[test]
    fn machine_and_substitution_reference_agree_on_a_spot_check() {
        // The full catalogue + proptest differential lives in
        // tests/symbolic_differential.rs; this is a fast in-crate smoke check.
        for (src, depth) in [
            ("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0", 60),
            ("(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 1", 40),
            ("score(sample - 1/2) + sample", 50),
            ("if sample * sample <= 1/2 then 0 else (lam y. y) 1", 50),
        ] {
            let term = parse_term(src).unwrap();
            let config = ExplorationConfig::default()
                .with_max_steps_per_path(depth)
                .with_max_paths(5_000);
            let machine = explore(&term, &config);
            let reference = explore_substitution(&term, &config);
            assert_eq!(machine, reference, "disagreement on `{src}`");
        }
    }

    #[test]
    fn interruption_returns_sound_partial_results() {
        let term =
            parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        let config = ExplorationConfig::default().with_max_steps_per_path(400);
        // Interrupt after a couple of terminated paths' worth of work.
        let mut budget = 6usize;
        let (partial, err) = try_explore(&term, &config, &mut |_work| {
            if budget == 0 {
                Err("deadline")
            } else {
                budget -= 1;
                Ok(())
            }
        });
        assert_eq!(err, Some("deadline"));
        assert!(partial.interrupted);
        let full = explore(&term, &config);
        assert!(!full.interrupted);
        assert!(partial.terminated.len() < full.terminated.len());
        // Every partial path is literally one of the full exploration's
        // paths, so the partial probability mass is a monotone lower bound.
        for path in &partial.terminated {
            assert!(full.terminated.contains(path));
        }
        let partial_mass: Rational =
            partial.terminated.iter().map(|p| p.probability(100)).sum();
        let full_mass: Rational = full.terminated.iter().map(|p| p.probability(100)).sum();
        assert!(partial_mass <= full_mass);
        assert!(partial_mass > Rational::zero());
    }
}
