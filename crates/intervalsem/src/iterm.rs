//! Interval terms and the interval-based reduction of paper §3.1.
//!
//! Interval terms replace real-valued numerals by closed intervals `[a, b]`
//! (read as "an unknown value within `[a, b]`"). The reduction relation
//! `⟨M, ℘⟩ ⇝ ⟨M′, ℘′⟩` (Fig. 9) consumes an *interval trace* `℘` — a finite
//! sequence of subintervals of `[0, 1]` — at `sample` redexes, and primitive
//! functions act through their interval-preserving lifts `f̂`.
//!
//! The embedding `(·)^2ℑ` maps a standard term to the interval term in which
//! every numeral `r` becomes the point interval `[r, r]`; soundness
//! (Theorem 3.4) says that the weights of pairwise-compatible terminating
//! interval traces of `M^2ℑ` lower-bound `Pterm(M)`.
//!
//! [`run_interval`] executes the reduction on the shared environment machine
//! ([`probterm_spcf::absmachine`]) instantiated at interval literals — the
//! embedding happens implicitly as numerals are focused, so the reduction
//! runs directly on the source [`Term`] in O(1) amortized per step. The
//! [`ITerm`] datatype survives as the *specification* artifact: the paper's
//! refinement relation `M ⊳ 𝕄` ([`ITerm::refines`]) and the rendered form of
//! interval terms.

use probterm_numerics::{Interval, Rational};
use probterm_spcf::absmachine::{DomainSpec, Event, Machine, NoAtom, Value};
use probterm_spcf::{Ident, Prim, Strategy, Term};
use std::fmt;

/// A term of interval SPCF: identical to [`Term`] except that numerals are
/// intervals.
#[derive(Debug, Clone, PartialEq)]
pub enum ITerm {
    /// A variable.
    Var(Ident),
    /// An interval numeral `[a, b]`.
    Num(Interval),
    /// λ-abstraction.
    Lam(Ident, Box<ITerm>),
    /// Fixpoint `μφ x. M`.
    Fix(Ident, Ident, Box<ITerm>),
    /// Application.
    App(Box<ITerm>, Box<ITerm>),
    /// Conditional branching on `≤ 0`.
    If(Box<ITerm>, Box<ITerm>, Box<ITerm>),
    /// Primitive function application.
    Prim(Prim, Vec<ITerm>),
    /// Uniform sample.
    Sample,
    /// Conditioning.
    Score(Box<ITerm>),
}

impl ITerm {
    /// The canonical embedding `(·)^2ℑ`: every numeral `r` becomes `[r, r]`.
    pub fn embed(term: &Term) -> ITerm {
        match term {
            Term::Var(x) => ITerm::Var(x.clone()),
            Term::Num(r) => ITerm::Num(Interval::point(r.clone())),
            Term::Lam(x, b) => ITerm::Lam(x.clone(), Box::new(ITerm::embed(b))),
            Term::Fix(phi, x, b) => {
                ITerm::Fix(phi.clone(), x.clone(), Box::new(ITerm::embed(b)))
            }
            Term::App(f, a) => ITerm::App(Box::new(ITerm::embed(f)), Box::new(ITerm::embed(a))),
            Term::If(g, t, e) => ITerm::If(
                Box::new(ITerm::embed(g)),
                Box::new(ITerm::embed(t)),
                Box::new(ITerm::embed(e)),
            ),
            Term::Prim(p, args) => ITerm::Prim(*p, args.iter().map(ITerm::embed).collect()),
            Term::Sample => ITerm::Sample,
            Term::Score(m) => ITerm::Score(Box::new(ITerm::embed(m))),
        }
    }

    /// Returns `true` if the term is an interval value.
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            ITerm::Var(_) | ITerm::Num(_) | ITerm::Lam(_, _) | ITerm::Fix(_, _, _)
        )
    }

    /// Returns the interval if the term is an interval numeral.
    pub fn as_num(&self) -> Option<&Interval> {
        match self {
            ITerm::Num(iv) => Some(iv),
            _ => None,
        }
    }

    /// The refinement relation `M ⊳ 𝕄` of App. B.3: `term` refines `self` if
    /// they agree structurally and every numeral of `term` lies in the
    /// corresponding interval numeral of `self`.
    pub fn refines(&self, term: &Term) -> bool {
        match (term, self) {
            (Term::Var(x), ITerm::Var(y)) => x == y,
            (Term::Num(r), ITerm::Num(iv)) => iv.contains(r),
            (Term::Sample, ITerm::Sample) => true,
            (Term::Lam(x, b), ITerm::Lam(y, c)) => x == y && c.refines(b),
            (Term::Fix(p1, x1, b1), ITerm::Fix(p2, x2, b2)) => {
                p1 == p2 && x1 == x2 && b2.refines(b1)
            }
            (Term::App(f1, a1), ITerm::App(f2, a2)) => f2.refines(f1) && a2.refines(a1),
            (Term::If(g1, t1, e1), ITerm::If(g2, t2, e2)) => {
                g2.refines(g1) && t2.refines(t1) && e2.refines(e1)
            }
            (Term::Prim(p1, a1), ITerm::Prim(p2, a2)) => {
                p1 == p2 && a1.len() == a2.len() && a2.iter().zip(a1).all(|(i, t)| i.refines(t))
            }
            (Term::Score(m1), ITerm::Score(m2)) => m2.refines(m1),
            _ => false,
        }
    }
}

impl fmt::Display for ITerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ITerm::Var(x) => write!(f, "{x}"),
            ITerm::Num(iv) => write!(f, "{iv}"),
            ITerm::Lam(x, b) => write!(f, "lam {x}. {b}"),
            ITerm::Fix(phi, x, b) => write!(f, "fix {phi} {x}. {b}"),
            ITerm::App(g, a) => write!(f, "({g}) ({a})"),
            ITerm::If(g, t, e) => write!(f, "if {g} then {t} else {e}"),
            ITerm::Prim(p, args) => {
                write!(f, "{}(", p.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ITerm::Sample => write!(f, "sample"),
            ITerm::Score(m) => write!(f, "score({m})"),
        }
    }
}

/// An interval trace `℘ ∈ Sℑ`: a finite sequence of subintervals of `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntervalTrace {
    intervals: Vec<Interval>,
}

impl IntervalTrace {
    /// The empty interval trace `ε`.
    pub fn empty() -> IntervalTrace {
        IntervalTrace::default()
    }

    /// Builds an interval trace.
    ///
    /// # Panics
    ///
    /// Panics if some interval is not contained in `[0, 1]`.
    pub fn new(intervals: Vec<Interval>) -> IntervalTrace {
        assert!(
            intervals
                .iter()
                .all(|iv| Interval::unit().contains_interval(iv)),
            "interval traces must consist of subintervals of [0,1]"
        );
        IntervalTrace { intervals }
    }

    /// Builds a trace from `(lo_n, lo_d, hi_n, hi_d)` quadruples.
    ///
    /// # Panics
    ///
    /// Panics on malformed intervals.
    pub fn from_ratios(quads: &[(i64, i64, i64, i64)]) -> IntervalTrace {
        IntervalTrace::new(
            quads
                .iter()
                .map(|(a, b, c, d)| Interval::from_ratios(*a, *b, *c, *d))
                .collect(),
        )
    }

    /// The intervals of the trace.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The weight `ω(℘) = Π (bᵢ − aᵢ)` of the trace (paper §3.2).
    pub fn weight(&self) -> Rational {
        self.intervals.iter().map(Interval::width).product()
    }

    /// Compatibility of two interval traces (Definition 3.3): different
    /// lengths, or almost disjoint at some position.
    pub fn compatible(&self, other: &IntervalTrace) -> bool {
        if self.len() != other.len() {
            return true;
        }
        self.intervals
            .iter()
            .zip(other.intervals.iter())
            .any(|(a, b)| a.almost_disjoint(b))
    }

    /// Returns `true` if the standard trace (sequence of draws) refines this
    /// interval trace: same length and pointwise membership.
    pub fn refined_by(&self, trace: &[Rational]) -> bool {
        trace.len() == self.len()
            && self
                .intervals
                .iter()
                .zip(trace)
                .all(|(iv, r)| iv.contains(r))
    }
}

impl fmt::Display for IntervalTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "ε");
        }
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

/// Checks that a countable (here: finite) set of interval traces is pairwise
/// compatible, as required by the soundness theorem (Thm. 3.4).
pub fn pairwise_compatible(traces: &[IntervalTrace]) -> bool {
    for (i, a) in traces.iter().enumerate() {
        for b in &traces[i + 1..] {
            if !a.compatible(b) {
                return false;
            }
        }
    }
    true
}

/// Evaluates the interval-preserving lift `f̂` of a primitive function.
///
/// Returns `None` when the argument box is outside the primitive's domain
/// (e.g. `log` of an interval touching zero), in which case the interval
/// reduction is stuck.
///
/// # Panics
///
/// Panics on arity mismatch.
pub fn prim_interval(p: Prim, args: &[Interval]) -> Option<Interval> {
    assert_eq!(args.len(), p.arity(), "arity mismatch for {p:?}");
    Some(match p {
        Prim::Add => args[0].add(&args[1]),
        Prim::Sub => args[0].sub(&args[1]),
        Prim::Mul => args[0].mul(&args[1]),
        Prim::Neg => args[0].neg(),
        Prim::Abs => args[0].abs(),
        Prim::Min => args[0].min_iv(&args[1]),
        Prim::Max => args[0].max_iv(&args[1]),
        Prim::Exp => args[0].exp(),
        Prim::Log => {
            if !args[0].lo().is_positive() {
                return None;
            }
            args[0].log()
        }
        Prim::Sig => args[0].sig(),
        Prim::Floor => {
            let lo = Rational::from_bigint(args[0].lo().floor());
            let hi = Rational::from_bigint(args[0].hi().floor());
            Interval::new(lo, hi)
        }
    })
}

/// Why an interval reduction could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IStuck {
    /// The interval trace is exhausted at a `sample` redex.
    TraceExhausted,
    /// A guard interval straddles zero, so the branch cannot be decided.
    UndecidedBranch,
    /// `score` of an interval whose lower end is negative.
    ScoreMaybeNegative,
    /// A primitive was applied outside its domain.
    PrimDomain(Prim),
    /// An ill-formed application or open term.
    IllFormed,
}

/// A terminal interval value (the result of a terminating interval run).
#[derive(Debug, Clone, PartialEq)]
pub enum IValue {
    /// An interval numeral.
    Num(Interval),
    /// A function value (λ or fixpoint closure); base-type programs never
    /// produce one.
    Closure,
}

impl IValue {
    /// Returns the interval if the value is an interval numeral.
    pub fn as_num(&self) -> Option<&Interval> {
        match self {
            IValue::Num(iv) => Some(iv),
            IValue::Closure => None,
        }
    }
}

/// The result of running the interval reduction to completion.
#[derive(Debug, Clone, PartialEq)]
pub enum IOutcome {
    /// Reached a value with the trace fully consumed after the given number of steps.
    Terminated {
        /// The final interval value.
        value: IValue,
        /// Number of reduction steps `#℘↓(M)`.
        steps: usize,
    },
    /// Reached a value but the interval trace was not fully consumed.
    LeftoverTrace,
    /// The reduction is stuck.
    Stuck(IStuck),
    /// The step budget ran out.
    OutOfFuel,
}

impl IOutcome {
    /// Returns `true` if the outcome certifies termination on the trace.
    pub fn is_terminated(&self) -> bool {
        matches!(self, IOutcome::Terminated { .. })
    }
}

fn interval_point(r: &Rational) -> Interval {
    Interval::point(r.clone())
}

fn interval_spec() -> DomainSpec<Interval, NoAtom> {
    DomainSpec {
        strategy: Strategy::CallByName,
        // The embedding `(·)^2ℑ` applied lazily: numerals become point
        // intervals as they are focused.
        lit_of_num: interval_point,
        atom_of_free: None,
        opaque_fix: false,
        // The interval reference tests value-ness before fuel.
        value_first: true,
    }
}

/// Runs the CbN interval reduction of `term^2ℑ` on the interval trace
/// `trace` (Fig. 9), with a step budget.
///
/// A result of [`IOutcome::Terminated`] certifies that `trace` belongs to
/// `Tℑ_{M,term}`, so by Theorem 3.4 its weight is a sound contribution to a
/// lower bound on `Pterm`. Step counts agree with the standard reduction on
/// every refining standard trace (Lemma B.2).
pub fn run_interval(term: &Term, trace: &IntervalTrace, max_steps: usize) -> IOutcome {
    let mut machine = Machine::new(interval_spec(), term, max_steps);
    let mut position = 0usize;
    loop {
        match machine.next_event() {
            Event::Done(value) => {
                if position != trace.len() {
                    return IOutcome::LeftoverTrace;
                }
                let value = match value {
                    Value::Lit(iv) => IValue::Num(iv),
                    Value::Closure { .. } => IValue::Closure,
                    Value::Atom(atom) => match atom {},
                };
                return IOutcome::Terminated { value, steps: machine.steps() };
            }
            Event::OutOfFuel => return IOutcome::OutOfFuel,
            Event::Stuck(_) => return IOutcome::Stuck(IStuck::IllFormed),
            Event::Sample => {
                let Some(iv) = trace.intervals().get(position) else {
                    return IOutcome::Stuck(IStuck::TraceExhausted);
                };
                position += 1;
                machine.resume_lit(iv.clone());
            }
            Event::PrimReady(p, args) => match prim_interval(p, &args) {
                Some(result) => machine.resume_lit(result),
                None => return IOutcome::Stuck(IStuck::PrimDomain(p)),
            },
            Event::BranchReady(iv) => {
                if iv.certainly_nonpositive() {
                    machine.resume_branch(true);
                } else if iv.certainly_positive() {
                    machine.resume_branch(false);
                } else {
                    return IOutcome::Stuck(IStuck::UndecidedBranch);
                }
            }
            Event::ScoreReady(iv) => {
                if iv.lo().is_negative() {
                    return IOutcome::Stuck(IStuck::ScoreMaybeNegative);
                }
                machine.resume_lit(iv);
            }
            Event::AtomApplied(atom) => match atom {},
            Event::FixEncountered(_) => {
                unreachable!("opaque_fix is off for the interval reduction")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::parse_term;

    fn term(src: &str) -> Term {
        parse_term(src).unwrap()
    }

    fn iv(a: i64, b: i64, c: i64, d: i64) -> Interval {
        Interval::from_ratios(a, b, c, d)
    }

    #[test]
    fn embedding_produces_point_intervals() {
        let t = ITerm::embed(&term("1 + 0.5"));
        match t {
            ITerm::Prim(Prim::Add, args) => {
                assert_eq!(args[0].as_num().unwrap(), &Interval::point(Rational::one()));
                assert!(args[1].as_num().unwrap().is_point());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Embedding refines the original term.
        let original = term("(fix phi x. if sample <= 0.5 then x else phi (x+1)) 1");
        assert!(ITerm::embed(&original).refines(&original));
    }

    #[test]
    fn interval_weights_and_compatibility() {
        let a = IntervalTrace::from_ratios(&[(0, 1, 1, 2), (0, 1, 1, 3)]);
        assert_eq!(a.weight(), Rational::from_ratio(1, 6));
        let b = IntervalTrace::from_ratios(&[(1, 2, 1, 1), (0, 1, 1, 1)]);
        assert!(a.compatible(&b));
        let c = IntervalTrace::from_ratios(&[(0, 1, 1, 1)]);
        assert!(a.compatible(&c)); // different length
        let d = IntervalTrace::from_ratios(&[(1, 4, 3, 4), (0, 1, 1, 1)]);
        assert!(!a.compatible(&d));
        assert!(pairwise_compatible(&[a.clone(), b.clone(), c.clone()]));
        assert!(!pairwise_compatible(&[a, b, c, d]));
        // The paper's example of four pairwise compatible traces (§3.2).
        let ts = vec![
            IntervalTrace::from_ratios(&[(0, 1, 1, 1), (0, 1, 1, 3)]),
            IntervalTrace::from_ratios(&[(0, 1, 1, 1), (1, 3, 1, 2)]),
            IntervalTrace::from_ratios(&[(0, 1, 1, 1), (3, 4, 1, 1)]),
            IntervalTrace::from_ratios(&[(0, 1, 1, 1)]),
        ];
        assert!(pairwise_compatible(&ts));
    }

    #[test]
    #[should_panic(expected = "subintervals of [0,1]")]
    fn interval_traces_must_be_in_unit_range() {
        let _ = IntervalTrace::new(vec![Interval::from_ratios(0, 1, 3, 2)]);
    }

    #[test]
    fn prim_interval_lifts() {
        let a = iv(0, 1, 1, 2);
        let b = iv(1, 4, 3, 4);
        assert_eq!(prim_interval(Prim::Add, &[a.clone(), b.clone()]).unwrap(), iv(1, 4, 5, 4));
        assert_eq!(prim_interval(Prim::Sub, &[a.clone(), b.clone()]).unwrap(), iv(-3, 4, 1, 4));
        assert_eq!(prim_interval(Prim::Neg, &[a.clone()]).unwrap(), iv(-1, 2, 0, 1));
        assert_eq!(prim_interval(Prim::Min, &[a.clone(), b.clone()]).unwrap(), iv(0, 1, 1, 2));
        assert_eq!(prim_interval(Prim::Max, &[a.clone(), b.clone()]).unwrap(), iv(1, 4, 3, 4));
        assert_eq!(
            prim_interval(Prim::Floor, &[iv(1, 2, 7, 2)]).unwrap(),
            iv(0, 1, 3, 1)
        );
        assert!(prim_interval(Prim::Log, &[iv(0, 1, 1, 1)]).is_none());
        assert!(prim_interval(Prim::Log, &[iv(1, 2, 1, 1)]).is_some());
    }

    #[test]
    fn interval_reduction_on_deterministic_terms() {
        let out = run_interval(&term("1 + 2 * 3"), &IntervalTrace::empty(), 100);
        match out {
            IOutcome::Terminated { value, steps } => {
                assert_eq!(value.as_num().unwrap(), &Interval::point(Rational::from_int(7)));
                assert!(steps > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn interval_reduction_consumes_interval_traces() {
        // Example B.4: if(sample - 0.5, 0, 1) terminates on [0, 1/4] via the then branch.
        let t = term("if sample <= 0.5 then 0 else 1");
        let good = IntervalTrace::from_ratios(&[(0, 1, 1, 4)]);
        assert!(run_interval(&t, &good, 100).is_terminated());
        // The full unit interval cannot decide the branch (Ex. B.4).
        let undecided = IntervalTrace::from_ratios(&[(0, 1, 1, 1)]);
        assert_eq!(
            run_interval(&t, &undecided, 100),
            IOutcome::Stuck(IStuck::UndecidedBranch)
        );
        // Right branch.
        let right = IntervalTrace::from_ratios(&[(3, 4, 1, 1)]);
        assert!(run_interval(&t, &right, 100).is_terminated());
        // Exhausted and leftover traces are rejected.
        assert_eq!(
            run_interval(&t, &IntervalTrace::empty(), 100),
            IOutcome::Stuck(IStuck::TraceExhausted)
        );
        let too_long = IntervalTrace::from_ratios(&[(0, 1, 1, 4), (0, 1, 1, 4)]);
        assert_eq!(run_interval(&t, &too_long, 100), IOutcome::LeftoverTrace);
    }

    #[test]
    fn geometric_term_terminates_on_nested_interval_traces() {
        // geo(1/2): the trace [3/4,1]·[0,1/2] makes one recursive call then
        // stops. (The first interval must be strictly above 1/2: with the
        // interval [1/2, 1] the guard `sample − 1/2` would contain 0 and the
        // branch would be undecidable, cf. Fig. 9.)
        let t = term("(fix phi x. if sample <= 0.5 then x else phi (x + 1)) 0");
        let trace = IntervalTrace::from_ratios(&[(3, 4, 1, 1), (0, 1, 1, 2)]);
        let out = run_interval(&t, &trace, 1000);
        match out {
            IOutcome::Terminated { value, .. } => {
                assert_eq!(
                    value.as_num().unwrap(),
                    &Interval::point(Rational::from_int(1))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Its weight is 1/4 · 1/2 = 1/8, a sound lower-bound contribution.
        assert_eq!(trace.weight(), Rational::from_ratio(1, 8));
        // The boundary-touching trace of Ex. B.4 is genuinely undecided.
        let undecided = IntervalTrace::from_ratios(&[(1, 2, 1, 1), (0, 1, 1, 2)]);
        assert_eq!(
            run_interval(&t, &undecided, 1000),
            IOutcome::Stuck(IStuck::UndecidedBranch)
        );
    }

    #[test]
    fn soundness_lemma_b2_on_refining_traces() {
        // If ℘ terminates for M^2ℑ then every standard trace refining ℘ terminates for M
        // with the same step count (Lemma B.2) — check on a concrete instance.
        use probterm_spcf::{run, FixedTrace, Strategy};
        let src = "(fix phi x. if sample <= 0.5 then x else phi (x + 1)) 0";
        let t = term(src);
        let itrace = IntervalTrace::from_ratios(&[(3, 4, 1, 1), (0, 1, 1, 2)]);
        let iout = run_interval(&t, &itrace, 1000);
        let IOutcome::Terminated { steps, .. } = iout else {
            panic!("interval run did not terminate");
        };
        for standard in [
            vec![Rational::from_ratio(3, 4), Rational::from_ratio(1, 4)],
            vec![Rational::from_ratio(9, 10), Rational::from_ratio(1, 2)],
        ] {
            assert!(itrace.refined_by(&standard));
            let mut fixed = FixedTrace::new(standard);
            let run_result = run(Strategy::CallByName, &t, &mut fixed, 1000);
            assert!(run_result.outcome.is_terminated());
            assert_eq!(run_result.steps, steps);
        }
    }

    #[test]
    fn score_and_fuel_behaviour() {
        let t = term("score(sample)");
        let ok = IntervalTrace::from_ratios(&[(0, 1, 1, 2)]);
        assert!(run_interval(&t, &ok, 100).is_terminated());
        let neg = term("score(sample - 1)");
        assert_eq!(
            run_interval(&neg, &ok, 100),
            IOutcome::Stuck(IStuck::ScoreMaybeNegative)
        );
        let diverge = term("(fix phi x. phi x) 0");
        assert_eq!(
            run_interval(&diverge, &IntervalTrace::empty(), 50),
            IOutcome::OutOfFuel
        );
    }

    #[test]
    fn function_results_and_value_first_fuel_boundary() {
        // A program evaluating to a λ terminates with an (opaque) closure.
        let out = run_interval(&term("(lam f. f) (lam y. y)"), &IntervalTrace::empty(), 100);
        match out {
            IOutcome::Terminated { value, .. } => assert_eq!(value, IValue::Closure),
            other => panic!("unexpected {other:?}"),
        }
        // The interval reference checks value-ness before fuel: a run that
        // needs exactly the budget still terminates.
        let exact = run_interval(&term("1 + 1"), &IntervalTrace::empty(), 1);
        assert!(exact.is_terminated(), "value-first fuel convention: {exact:?}");
        assert_eq!(
            run_interval(&term("1 + 1"), &IntervalTrace::empty(), 0),
            IOutcome::OutOfFuel
        );
    }

    #[test]
    fn display_formats() {
        let t = ITerm::embed(&term("if sample <= 0.5 then 0 else score(1)"));
        let rendered = t.to_string();
        assert!(rendered.contains("sample"));
        assert!(rendered.contains("score"));
        assert_eq!(IntervalTrace::empty().to_string(), "ε");
        let tr = IntervalTrace::from_ratios(&[(0, 1, 1, 2)]);
        assert!(tr.to_string().contains("[0, 1/2]"));
    }
}
