//! Positive almost-sure termination (PAST) analysis via the interval
//! semantics (paper §2.4, Theorem 3.4 (2) and the Σ⁰₂ characterisation of
//! Theorem 3.10).
//!
//! The expected time to termination of a closed term is
//! `Eterm(M) = Σₙ (1 − μ(T^{≤n}_{M,term}))` (Definition 2.2), and `M` is PAST
//! when this series converges. Soundness of the interval semantics gives, for
//! every finite set of pairwise-compatible terminating interval traces, a
//! lower bound `E(M^2ℑ, A) ≤ Eterm(M)` — so interval exploration can
//! *refute* candidate upper bounds on the expected runtime (this is exactly
//! the inner `∀A. E(A) ≤ c` of the Σ⁰₂ formula in Theorem 3.10) and exhibit
//! divergence evidence for programs, like the fair non-affine printer, that
//! are AST but not PAST.

use crate::lowerbound::{lower_bound, LowerBoundConfig, LowerBoundResult};
use probterm_numerics::Rational;
use probterm_spcf::Term;

/// A sound refutation of a candidate expected-runtime bound: interval
/// exploration found terminating traces whose contribution to `Eterm(M)`
/// already exceeds the candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PastRefutation {
    /// The candidate bound `c` that was refuted.
    pub candidate: Rational,
    /// The certified lower bound on `Eterm(M)` (strictly above `candidate`).
    pub certified_lower_bound: Rational,
    /// The exploration depth at which the refutation was found.
    pub depth: usize,
}

/// The outcome of probing a candidate expected-runtime bound.
#[derive(Debug, Clone, PartialEq)]
pub enum PastProbe {
    /// The candidate was refuted: `Eterm(M) > candidate`.
    Refuted(PastRefutation),
    /// Exploration up to the configured depth could not refute the candidate.
    /// This is *not* a proof that the candidate is an upper bound — deciding
    /// PAST is Σ⁰₂-complete (Theorem 3.10) — merely the absence of a
    /// counter-certificate at this depth.
    NotRefuted {
        /// The best lower bound on `Eterm(M)` found so far.
        certified_lower_bound: Rational,
    },
}

impl PastProbe {
    /// Returns `true` if the candidate bound was refuted.
    pub fn is_refuted(&self) -> bool {
        matches!(self, PastProbe::Refuted(_))
    }
}

/// Tries to refute the claim `Eterm(M) ≤ candidate` by exploring the interval
/// semantics at increasing depths.
///
/// Every certified lower bound is exact (Theorem 3.4 (2)), so a refutation is
/// conclusive; failure to refute is not.
pub fn refute_past_bound(term: &Term, candidate: &Rational, depths: &[usize]) -> PastProbe {
    let mut best = Rational::zero();
    for &depth in depths {
        let result = lower_bound(term, &LowerBoundConfig::default().with_depth(depth));
        if result.expected_steps > best {
            best = result.expected_steps.clone();
        }
        if best > *candidate {
            return PastProbe::Refuted(PastRefutation {
                candidate: candidate.clone(),
                certified_lower_bound: best,
                depth,
            });
        }
    }
    PastProbe::NotRefuted { certified_lower_bound: best }
}

/// One point of an expected-runtime divergence profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedStepsPoint {
    /// Exploration depth.
    pub depth: usize,
    /// Certified lower bound on the termination probability at this depth.
    pub probability: Rational,
    /// Certified lower bound on `Eterm(M)` at this depth.
    pub expected_steps: Rational,
}

/// Computes certified lower bounds on the termination probability and on the
/// expected number of reduction steps at each of the given depths.
///
/// For PAST programs the `expected_steps` column stabilises below the true
/// (finite) expected runtime; for programs that are AST but not PAST (e.g.
/// Ex. 1.1 (2) at `p = 1/2`) it grows without bound, which
/// [`divergence_ratio`] quantifies.
pub fn expected_steps_profile(term: &Term, depths: &[usize]) -> Vec<ExpectedStepsPoint> {
    depths
        .iter()
        .map(|&depth| {
            let result: LowerBoundResult = lower_bound(term, &LowerBoundConfig::default().with_depth(depth));
            ExpectedStepsPoint {
                depth,
                probability: result.probability,
                expected_steps: result.expected_steps,
            }
        })
        .collect()
}

/// The ratio between the last and first expected-steps bounds of a profile —
/// a crude but useful divergence indicator: close to `1` for PAST programs
/// once the probability bound has saturated, and growing with the depth for
/// programs with infinite expected runtime.
///
/// Returns `None` if the profile has fewer than two points or starts at zero.
pub fn divergence_ratio(profile: &[ExpectedStepsPoint]) -> Option<f64> {
    let first = profile.first()?;
    let last = profile.last()?;
    if profile.len() < 2 || first.expected_steps.is_zero() {
        return None;
    }
    Some(last.expected_steps.to_f64() / first.expected_steps.to_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_numerics::Rational;
    use probterm_spcf::{catalog, parse_term};

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn straight_line_terms_have_exact_expected_steps() {
        // `sample + sample` terminates after a fixed, small number of steps on
        // every trace, so the expected-steps bound equals that constant: tiny
        // candidates are refuted, generous ones are not.
        let term = parse_term("sample + sample").unwrap();
        let profile = expected_steps_profile(&term, &[10]);
        assert_eq!(profile[0].probability, Rational::one());
        assert!(profile[0].expected_steps >= r(2, 1));
        assert!(profile[0].expected_steps <= r(6, 1));
        assert!(refute_past_bound(&term, &r(1, 2), &[10]).is_refuted());
        assert!(!refute_past_bound(&term, &r(10, 1), &[10]).is_refuted());
    }

    #[test]
    fn geometric_term_is_past_and_bounds_stabilise() {
        // geo(1/2) is PAST; its expected number of reduction steps is finite,
        // so a sufficiently generous candidate is never refuted while a tiny
        // one is.
        let geo = catalog::geometric(r(1, 2)).term;
        let probe = refute_past_bound(&geo, &r(1, 1), &[30, 60]);
        assert!(probe.is_refuted(), "one step is clearly too small a bound");
        let generous = refute_past_bound(&geo, &r(200, 1), &[30, 60, 90]);
        assert!(!generous.is_refuted());
        match generous {
            PastProbe::NotRefuted { certified_lower_bound } => {
                assert!(certified_lower_bound > r(5, 1));
                assert!(certified_lower_bound < r(200, 1));
            }
            PastProbe::Refuted(_) => unreachable!(),
        }
    }

    #[test]
    fn fair_nonaffine_printer_shows_divergence_evidence() {
        // Ex. 1.1 (2) at p = 1/2: AST but not PAST — the expected-steps lower
        // bounds keep growing with the exploration depth, while for the PAST
        // geometric term they saturate.
        let printer = catalog::printer_nonaffine(r(1, 2)).term;
        let printer_profile = expected_steps_profile(&printer, &[30, 60]);
        let printer_ratio = divergence_ratio(&printer_profile).unwrap();
        let geo = catalog::geometric(r(1, 2)).term;
        let geo_profile = expected_steps_profile(&geo, &[30, 60]);
        let geo_ratio = divergence_ratio(&geo_profile).unwrap();
        assert!(
            printer_ratio > geo_ratio + 0.05,
            "printer bounds must grow faster: {printer_ratio} vs {geo_ratio}"
        );
        assert!(geo_ratio < 1.2, "geo(1/2) expected steps saturate, got {geo_ratio}");
        // Monotonicity of both columns in the depth.
        for profile in [&printer_profile, &geo_profile] {
            for w in profile.windows(2) {
                assert!(w[0].probability <= w[1].probability);
                assert!(w[0].expected_steps <= w[1].expected_steps);
            }
        }
    }

    #[test]
    fn divergence_ratio_requires_two_informative_points() {
        assert_eq!(divergence_ratio(&[]), None);
        let term = parse_term("sample + sample").unwrap();
        let single = expected_steps_profile(&term, &[10]);
        assert_eq!(divergence_ratio(&single), None);
        // A term that never terminates has zero expected-steps bounds.
        let diverge = parse_term("(fix phi x. phi x) 0").unwrap();
        let profile = expected_steps_profile(&diverge, &[10, 20]);
        assert_eq!(profile[1].expected_steps, Rational::zero());
        assert_eq!(divergence_ratio(&profile), None);
    }
}
