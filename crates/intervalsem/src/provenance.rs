//! Analysis provenance: an auditable per-path account of a lower bound.
//!
//! `probterm lower` reports a single rational; this module explains it. A
//! [`Provenance`] attributes the reported probability mass path by path —
//! branch-constraint chain, terminal verdict, exact-vs-box volume method and
//! the exact rational contribution — and summarises what a partial run still
//! has in flight (paused machines, their depth histogram, and the
//! `unaccounted_mass` gap `1 − Σ attributed volumes`).
//!
//! Attribution is *by construction* exact: the provenance layer runs the same
//! measuring loop as the lower-bound engine
//! ([`crate::try_lower_bound_measured`]), so the per-path volumes are the very
//! rationals whose sum is [`LowerBoundResult::probability`] — the soundness
//! suite asserts `Rational` equality, not float closeness.
//!
//! Additionally, every terminating path is backed by a **replayable
//! witness**: a concrete sample vector chosen inside the path's
//! polytope/interval region ([`SymbolicPath::find_witness`]) and re-executed
//! by the concrete CEK machine ([`probterm_spcf::terminates_on_trace`]). A
//! path whose witness replays to termination is a machine-checked claim, not
//! just a symbolic one.

use crate::lowerbound::{
    try_lower_bound_measured, LowerBoundConfig, LowerBoundResult, VolumeMethod,
};
use crate::symbolic::{Branch, FrontierPath, SymConstraint, SymValue, SymbolicPath};
use probterm_numerics::Rational;
use probterm_spcf::{terminates_on_trace, FixedTrace, Strategy, Term};

/// Configuration of a provenance computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainConfig {
    /// The lower-bound configuration the attribution runs under. The
    /// resulting [`Provenance::result`] is exactly what
    /// [`crate::lower_bound`] would report for the same configuration.
    pub lower: LowerBoundConfig,
    /// When `true` (the default), a concrete witness is synthesised and
    /// replayed for every terminating path.
    pub witnesses: bool,
    /// Box-bisection budget per path for the witness search.
    pub witness_boxes: usize,
    /// Extra concrete-machine steps allowed during witness replay beyond the
    /// path's own step count (safety slack; replays are expected to take
    /// exactly `path.steps` steps).
    pub replay_slack: usize,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        ExplainConfig {
            lower: LowerBoundConfig::default(),
            witnesses: true,
            witness_boxes: 4_096,
            replay_slack: 16,
        }
    }
}

impl ExplainConfig {
    /// Builder: sets the underlying lower-bound configuration.
    #[must_use]
    pub fn with_lower(mut self, lower: LowerBoundConfig) -> Self {
        self.lower = lower;
        self
    }

    /// Builder: enables or disables witness synthesis.
    #[must_use]
    pub fn with_witnesses(mut self, witnesses: bool) -> Self {
        self.witnesses = witnesses;
        self
    }

    /// Builder: sets the witness-search box budget per path.
    #[must_use]
    pub fn with_witness_boxes(mut self, witness_boxes: usize) -> Self {
        self.witness_boxes = witness_boxes;
        self
    }
}

/// A synthesised concrete witness for a terminating path, together with the
/// outcome of replaying it on the concrete machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// The concrete sample vector, one rational in `[0,1]` per sample
    /// variable, in draw order.
    pub trace: Vec<Rational>,
    /// `true` iff the concrete CbN machine, run on exactly this trace,
    /// terminated consuming the trace exactly
    /// ([`probterm_spcf::terminates_on_trace`]).
    pub replayed: bool,
    /// Steps the concrete replay took (`None` when the replay failed). For a
    /// faithful witness this equals the path's symbolic step count.
    pub replay_steps: Option<usize>,
}

/// The provenance record of one terminating symbolic path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathProvenance {
    /// Index of the path in exploration (BFS) order.
    pub index: usize,
    /// The branch decisions taken, in order.
    pub branches: Vec<Branch>,
    /// The collected path constraints `Δ`.
    pub constraints: Vec<SymConstraint>,
    /// Number of sample variables drawn along the path.
    pub sample_count: usize,
    /// Number of small-step reductions of the path.
    pub steps: usize,
    /// The terminal symbolic value (for base-type programs).
    pub result: Option<SymValue>,
    /// How the volume below was computed.
    pub method: VolumeMethod,
    /// The path's volume contribution — exactly the rational the lower-bound
    /// engine added for this path.
    pub volume: Rational,
    /// The replayable witness, when one was requested and found.
    pub witness: Option<Witness>,
}

/// What a (possibly partial) exploration left unaccounted for.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSummary {
    /// Number of paths abandoned mid-flight (paused machines at the cutoff
    /// plus out-of-fuel paths).
    pub paused: usize,
    /// Number of stuck paths (score failures, domain errors).
    pub stuck: usize,
    /// `true` when the run was cancelled by a cooperative check (deadline).
    pub interrupted: bool,
    /// `true` iff the exploration ran to completion: no abandoned paths and
    /// no interruption. A complete run accounts for every non-stuck path,
    /// though box-swept (non-affine) paths may still under-approximate their
    /// region, so `unaccounted_mass` can be positive even when `complete`.
    pub complete: bool,
    /// Histogram of abandoned-path depths (branches taken), as sorted
    /// `(depth, count)` pairs.
    pub depth_histogram: Vec<(usize, usize)>,
    /// `Σ` of the attributed per-path volumes — identical to the reported
    /// lower bound.
    pub attributed_mass: Rational,
    /// `1 − attributed_mass`: an upper bound on how much termination mass the
    /// frontier (plus sweep slack and stuck paths) may still hold.
    pub unaccounted_mass: Rational,
}

/// A full provenance artifact: the lower-bound result plus its per-path
/// attribution and frontier summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// The lower-bound result being explained — byte-for-byte what
    /// [`crate::lower_bound`] reports under [`ExplainConfig::lower`].
    pub result: LowerBoundResult,
    /// One record per terminating path, in exploration order.
    pub paths: Vec<PathProvenance>,
    /// The abandoned paths, verbatim (steps + branch prefix each).
    pub frontier_paths: Vec<FrontierPath>,
    /// The frontier summary.
    pub frontier: FrontierSummary,
}

impl Provenance {
    /// `Σ` of the per-path volumes, recomputed from the records. Equals
    /// `self.result.probability` exactly (rational arithmetic); the soundness
    /// suite asserts this invariant over the whole catalogue.
    pub fn attributed_mass(&self) -> Rational {
        let mut total = Rational::zero();
        for p in &self.paths {
            total += p.volume.clone();
        }
        total
    }
}

/// Computes the provenance of a lower-bound run.
pub fn explain(term: &Term, config: &ExplainConfig) -> Provenance {
    let (provenance, interrupted) =
        try_explain::<std::convert::Infallible>(term, config, &mut |_| Ok(()));
    debug_assert!(interrupted.is_none());
    provenance
}

/// Like [`explain`], but threads the cooperative `check` through the
/// underlying exploration and measuring loop, so a deadline-bounded caller
/// (the analysis service) receives the provenance of a sound *partial* bound:
/// the artifact then has `frontier.interrupted` set and positive
/// `unaccounted_mass`.
///
/// Witness synthesis runs after the interruption (its cost is bounded by
/// `witness_boxes · paths`); interrupted runs use a tightly capped box budget
/// so the reply does not overshoot an expired deadline by much.
pub fn try_explain<E>(
    term: &Term,
    config: &ExplainConfig,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
) -> (Provenance, Option<E>) {
    let (result, exploration, measures, interruption) =
        try_lower_bound_measured(term, &config.lower, check);
    let witness_boxes = if interruption.is_some() {
        config.witness_boxes.min(256)
    } else {
        config.witness_boxes
    };
    let paths: Vec<PathProvenance> = exploration
        .terminated
        .into_iter()
        .zip(measures)
        .enumerate()
        .map(|(index, (path, measure))| {
            let witness = config
                .witnesses
                .then(|| synthesize_witness(term, &path, witness_boxes, config.replay_slack))
                .flatten();
            PathProvenance {
                index,
                sample_count: path.sample_count,
                steps: path.steps,
                branches: path.branches,
                constraints: path.constraints,
                result: path.result,
                method: measure.method,
                volume: measure.volume,
                witness,
            }
        })
        .collect();

    let mut histogram: Vec<(usize, usize)> = Vec::new();
    for f in &exploration.frontier {
        let depth = f.depth();
        match histogram.iter_mut().find(|(d, _)| *d == depth) {
            Some((_, count)) => *count += 1,
            None => histogram.push((depth, 1)),
        }
    }
    histogram.sort_unstable();

    let attributed = result.probability.clone();
    let frontier = FrontierSummary {
        paused: exploration.frontier.len(),
        stuck: exploration.stuck,
        interrupted: result.interrupted,
        complete: !result.interrupted && exploration.frontier.is_empty(),
        depth_histogram: histogram,
        unaccounted_mass: Rational::one() - &attributed,
        attributed_mass: attributed,
    };

    let provenance = Provenance {
        result,
        paths,
        frontier_paths: exploration.frontier,
        frontier,
    };
    (provenance, interruption)
}

/// Synthesises and replays a witness for one terminating path: searches the
/// path region for a concrete sample vector, then runs the concrete CbN
/// machine on exactly that trace.
fn synthesize_witness(
    term: &Term,
    path: &SymbolicPath,
    witness_boxes: usize,
    replay_slack: usize,
) -> Option<Witness> {
    let trace = path.find_witness(witness_boxes)?;
    let run = terminates_on_trace(
        Strategy::CallByName,
        term,
        FixedTrace::new(trace.clone()),
        path.steps + replay_slack,
    );
    Some(Witness {
        trace,
        replayed: run.is_some(),
        replay_steps: run.map(|r| r.steps),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::parse_term;

    fn explain_src(src: &str, depth: usize) -> Provenance {
        let term = parse_term(src).unwrap();
        explain(
            &term,
            &ExplainConfig::default().with_lower(LowerBoundConfig::default().with_depth(depth)),
        )
    }

    #[test]
    fn deterministic_term_is_fully_attributed() {
        let p = explain_src("1 + 2", 50);
        assert_eq!(p.paths.len(), 1);
        assert_eq!(p.paths[0].volume, Rational::one());
        assert_eq!(p.paths[0].method, VolumeMethod::Exact);
        assert!(p.frontier.complete);
        assert!(p.frontier.unaccounted_mass.is_zero());
        assert_eq!(p.attributed_mass(), p.result.probability);
        // The (empty) witness replays: no samples are drawn.
        let w = p.paths[0].witness.as_ref().expect("witness");
        assert!(w.replayed);
        assert!(w.trace.is_empty());
        assert_eq!(w.replay_steps, Some(p.paths[0].steps));
    }

    #[test]
    fn single_conditional_attributes_both_paths() {
        let p = explain_src("if sample <= 1/3 then 0 else 1", 50);
        assert_eq!(p.paths.len(), 2);
        assert!(p.frontier.complete);
        assert!(p.frontier.unaccounted_mass.is_zero());
        assert_eq!(p.result.probability, Rational::one());
        for path in &p.paths {
            assert_eq!(path.constraints.len(), 1);
            let w = path.witness.as_ref().expect("witness");
            assert!(w.replayed, "witness of path {} must replay", path.index);
            assert_eq!(w.trace.len(), 1);
            assert_eq!(w.replay_steps, Some(path.steps));
        }
        // The two witnesses land on opposite sides of the guard.
        let sides: Vec<bool> = p
            .paths
            .iter()
            .map(|path| {
                path.witness.as_ref().unwrap().trace[0] <= Rational::from_ratio(1, 3)
            })
            .collect();
        assert_ne!(sides[0], sides[1]);
    }

    #[test]
    fn incomplete_geometric_reports_frontier_gap() {
        let p = explain_src("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0", 40);
        assert!(!p.frontier.complete);
        assert!(p.frontier.paused > 0);
        assert_eq!(p.frontier.paused, p.frontier_paths.len());
        assert_eq!(p.frontier.paused, p.result.unexplored_paths);
        assert!(!p.frontier.interrupted);
        assert!(p.frontier.unaccounted_mass > Rational::zero());
        let histogram_total: usize = p.frontier.depth_histogram.iter().map(|(_, c)| c).sum();
        assert_eq!(histogram_total, p.frontier.paused);
        assert_eq!(p.attributed_mass(), p.result.probability);
        assert_eq!(
            &p.frontier.attributed_mass + &p.frontier.unaccounted_mass,
            Rational::one()
        );
    }

    #[test]
    fn partial_prims_never_produce_false_witnesses() {
        // `log` is partial: the symbolic path terminates with a postponed
        // `log(α₀ − 2)` that is undefined on the whole region, so no witness
        // exists and none may be fabricated.
        let p = explain_src("log (sample - 2)", 50);
        assert_eq!(p.paths.len(), 1);
        assert!(p.paths[0].witness.is_none());
        // A defined use of `log` produces a replaying witness.
        let q = explain_src("log (sample + 2)", 50);
        assert_eq!(q.paths.len(), 1);
        let w = q.paths[0].witness.as_ref().expect("witness");
        assert!(w.replayed);
    }

    #[test]
    fn interrupted_explain_is_a_sound_partial_artifact() {
        let term =
            parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        let config =
            ExplainConfig::default().with_lower(LowerBoundConfig::default().with_depth(300));
        let mut budget = 8usize;
        let (partial, err) = try_explain(&term, &config, &mut |_| {
            if budget == 0 {
                Err("deadline exceeded")
            } else {
                budget -= 1;
                Ok(())
            }
        });
        assert_eq!(err, Some("deadline exceeded"));
        assert!(partial.frontier.interrupted);
        assert!(!partial.frontier.complete);
        assert!(partial.result.probability > Rational::zero());
        assert_eq!(partial.attributed_mass(), partial.result.probability);
        for path in &partial.paths {
            if let Some(w) = &path.witness {
                assert!(w.replayed);
            }
        }
    }
}
