//! The lower-bound engine (paper §3 and §7.1).
//!
//! The engine combines
//!
//! 1. bounded stochastic symbolic execution ([`crate::symbolic`], running on
//!    the shared environment machine), which enumerates the (countably many)
//!    branching behaviours `κ ∈ {L,R}*` and the associated path constraints,
//!    with
//! 2. exact polytope volumes for affine path constraints and an adaptive
//!    box-splitting sweep (interval arithmetic) for the rest,
//!
//! to produce sound, monotonically improving lower bounds on the probability
//! of termination `Pterm(M)` and — via the step counts of each path — on the
//! expected number of reduction steps of terminating runs, exactly as
//! justified by soundness of the interval semantics (Theorem 3.4) and made
//! effective by its completeness (Theorem 3.8).
//!
//! Because every terminating symbolic path contributes *independently* sound
//! mass, the engine is an **anytime algorithm**: [`try_lower_bound`] can be
//! cancelled mid-exploration (the analysis service does so on `deadline_ms`)
//! and the bound computed so far is still valid — merely smaller than what a
//! completed run would certify.

use crate::symbolic::{try_explore, Exploration, ExplorationConfig};
use probterm_numerics::Rational;
use probterm_spcf::Term;
use probterm_telemetry::EngineProfile;
use std::time::{Duration, Instant};

/// How the volume contribution of one terminated symbolic path was computed.
///
/// Recorded per path by [`try_lower_bound_measured`] and surfaced verbatim in
/// the provenance artifact ([`crate::provenance`]), so a reported bound can be
/// audited path by path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeMethod {
    /// Exact polytope volume — the constraint system is affine.
    Exact,
    /// Adaptive box-splitting sweep with the given box budget: a sound lower
    /// bound on the region's volume, generally below the true volume.
    BoxSweep {
        /// The box budget the sweep ran with.
        max_boxes: usize,
    },
    /// Not measured: the computation was interrupted before the non-affine
    /// sweep could run. Contributes zero mass and is tallied as unexplored.
    Unmeasured,
}

/// The volume contribution of one terminated path, aligned index-for-index
/// with `Exploration::terminated`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathMeasure {
    /// The (sound lower bound on the) volume of the path region.
    pub volume: Rational,
    /// How `volume` was obtained.
    pub method: VolumeMethod,
}

/// Configuration of the lower-bound computation.
///
/// All defaults live here; the CLI, the analysis service and the benchmark
/// harness derive their configurations through the `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBoundConfig {
    /// Exploration depth: the maximum number of small steps per symbolic path
    /// (the column `d` of Table 1).
    pub depth: usize,
    /// Maximum number of symbolic paths to process.
    pub max_paths: usize,
    /// Budget (number of boxes) for the splitting sweep on non-linear paths.
    pub boxes_per_path: usize,
    /// When `true`, the underlying exploration attaches a machine profile,
    /// reported in [`LowerBoundResult::profile`].
    pub profile: bool,
}

impl Default for LowerBoundConfig {
    fn default() -> Self {
        LowerBoundConfig {
            depth: 200,
            max_paths: 50_000,
            boxes_per_path: 2_000,
            profile: false,
        }
    }
}

impl LowerBoundConfig {
    /// Builder: sets the exploration depth.
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Builder: sets the symbolic-path budget.
    #[must_use]
    pub fn with_max_paths(mut self, max_paths: usize) -> Self {
        self.max_paths = max_paths;
        self
    }

    /// Builder: sets the box budget of the splitting sweep per non-linear path.
    #[must_use]
    pub fn with_boxes_per_path(mut self, boxes_per_path: usize) -> Self {
        self.boxes_per_path = boxes_per_path;
        self
    }

    /// Builder: enables or disables machine profiling.
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// The exploration configuration this lower-bound configuration induces.
    pub fn exploration(&self) -> ExplorationConfig {
        ExplorationConfig::default()
            .with_max_steps_per_path(self.depth)
            .with_max_paths(self.max_paths)
            .with_profile(self.profile)
    }
}

/// The result of a lower-bound computation.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerBoundResult {
    /// A sound lower bound on the probability of termination.
    pub probability: Rational,
    /// A sound lower bound on `Σ_{terminating traces} weight · steps`, i.e. on
    /// the expected number of reduction steps restricted to terminating runs
    /// (equals a lower bound on `Eterm` for AST programs, Thm. 3.4).
    pub expected_steps: Rational,
    /// Number of terminating symbolic paths found.
    pub paths: usize,
    /// Number of paths abandoned because the step budget ran out (or the
    /// computation was interrupted).
    pub unexplored_paths: usize,
    /// Number of stuck paths (score failures, domain errors).
    pub stuck_paths: usize,
    /// `true` when the computation was cancelled by the cooperative check of
    /// [`try_lower_bound`] before it finished. The bounds are still sound —
    /// partial explorations only lose mass (Thm. 3.4).
    pub interrupted: bool,
    /// Monotonic elapsed time of the computation (measured on
    /// `std::time::Instant`).
    pub elapsed: Duration,
    /// Machine profile of the symbolic exploration, present iff
    /// [`LowerBoundConfig::profile`] was set.
    pub profile: Option<EngineProfile>,
}

impl LowerBoundResult {
    /// The lower bound rendered with `digits` decimal digits (truncated), the
    /// format used by Table 1.
    pub fn probability_decimal(&self, digits: usize) -> String {
        self.probability.to_decimal_string(digits)
    }
}

/// Computes a lower bound on the termination probability of a closed SPCF
/// term under call-by-name evaluation.
///
/// # Examples
///
/// ```
/// use probterm_intervalsem::{lower_bound, LowerBoundConfig};
/// use probterm_numerics::Rational;
/// use probterm_spcf::parse_term;
///
/// let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
/// let result = lower_bound(&geo, &LowerBoundConfig::default().with_depth(120));
/// assert!(result.probability > Rational::from_ratio(99, 100));
/// assert!(result.probability < Rational::one());
/// ```
pub fn lower_bound(term: &Term, config: &LowerBoundConfig) -> LowerBoundResult {
    let (result, interrupted) =
        try_lower_bound::<std::convert::Infallible>(term, config, &mut |_| Ok(()));
    debug_assert!(interrupted.is_none());
    result
}

/// Like [`lower_bound`], but calls `check(work)` periodically — inside the
/// symbolic exploration and between per-path volume computations — and stops
/// early with its error when it fails.
///
/// The returned result then carries `interrupted: true` together with the
/// **sound partial bound** accumulated so far: every terminating path found
/// before the interruption certifies its probability mass (Thm. 3.4), so a
/// deadline-bounded caller still gets a nonzero monotone lower bound instead
/// of nothing. After the interruption, paths that already terminated are
/// still measured when their constraint system is affine (exact volumes,
/// bounded work); only the adaptive box sweep for non-affine paths — the one
/// unbounded-ish cost left — is skipped, with those paths tallied as
/// unexplored.
pub fn try_lower_bound<E>(
    term: &Term,
    config: &LowerBoundConfig,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
) -> (LowerBoundResult, Option<E>) {
    let (result, _, _, interruption) = try_lower_bound_measured(term, config, check);
    (result, interruption)
}

/// The full-fidelity variant of [`try_lower_bound`]: additionally returns the
/// underlying [`Exploration`] (terminated paths, stuck tally, abandoned
/// frontier) and one [`PathMeasure`] per terminated path, aligned
/// index-for-index with `Exploration::terminated`.
///
/// This is the single measuring loop both the lower-bound engine and the
/// provenance layer run on, which is what makes the provenance artifact's
/// per-path volumes sum *exactly* (rational arithmetic, no float drift) to
/// [`LowerBoundResult::probability`] — they are the same numbers.
pub fn try_lower_bound_measured<E>(
    term: &Term,
    config: &LowerBoundConfig,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
) -> (LowerBoundResult, Exploration, Vec<PathMeasure>, Option<E>) {
    let start = Instant::now();
    let (exploration, mut interruption) = try_explore(term, &config.exploration(), check);
    let mut measures: Vec<PathMeasure> = Vec::with_capacity(exploration.terminated.len());
    for (index, path) in exploration.terminated.iter().enumerate() {
        if interruption.is_none() {
            if let Err(e) = check(index) {
                interruption = Some(e);
            }
        }
        let measure = match path.exact_probability() {
            Some(p) => PathMeasure { volume: p, method: VolumeMethod::Exact },
            // The exploration (the unbounded part of the work) is over, so
            // measuring the already-terminated paths is bounded — but the
            // adaptive box sweep for non-affine paths is the one knob that
            // can still be expensive, so after an interruption only the
            // exactly-measurable (affine) paths contribute; sweep-only paths
            // are tallied as unexplored. Either way the accumulated mass
            // stays a sound lower bound.
            None if interruption.is_some() => {
                PathMeasure { volume: Rational::zero(), method: VolumeMethod::Unmeasured }
            }
            None => PathMeasure {
                volume: path.box_lower_bound(config.boxes_per_path),
                method: VolumeMethod::BoxSweep { max_boxes: config.boxes_per_path },
            },
        };
        measures.push(measure);
    }
    if interruption.is_some() && measures.iter().all(|m| m.method == VolumeMethod::Unmeasured) {
        // Nothing was exactly measurable (all terminated paths need the box
        // sweep): sweep the first one with a tightly capped box budget so a
        // partial reply is nonzero whenever any path terminated, without
        // tying the caller up long past its expired deadline.
        if let Some(path) = exploration.terminated.first() {
            let max_boxes = config.boxes_per_path.min(128);
            measures[0] = PathMeasure {
                volume: path.box_lower_bound(max_boxes),
                method: VolumeMethod::BoxSweep { max_boxes },
            };
        }
    }
    let mut probability = Rational::zero();
    let mut expected_steps = Rational::zero();
    let mut measured = 0usize;
    let mut unmeasured = 0usize;
    for (path, measure) in exploration.terminated.iter().zip(&measures) {
        if measure.method == VolumeMethod::Unmeasured {
            unmeasured += 1;
            continue;
        }
        expected_steps += &measure.volume * &Rational::from_int(path.steps as i64);
        probability += measure.volume.clone();
        measured += 1;
    }
    let unexplored = exploration.out_of_fuel + unmeasured;
    let result = LowerBoundResult {
        probability,
        expected_steps,
        paths: measured,
        unexplored_paths: unexplored,
        stuck_paths: exploration.stuck,
        interrupted: exploration.interrupted || interruption.is_some(),
        elapsed: start.elapsed(),
        profile: exploration.profile.clone(),
    };
    (result, exploration, measures, interruption)
}

/// Computes lower bounds at several increasing depths, demonstrating the
/// anytime nature of the procedure (each bound is sound, and they are
/// monotonically non-decreasing in the depth).
pub fn lower_bound_profile(term: &Term, depths: &[usize]) -> Vec<(usize, LowerBoundResult)> {
    depths
        .iter()
        .map(|d| (*d, lower_bound(term, &LowerBoundConfig::default().with_depth(*d))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::catalog;
    use probterm_spcf::parse_term;

    fn lb(src: &str, depth: usize) -> LowerBoundResult {
        let term = parse_term(src).unwrap();
        lower_bound(&term, &LowerBoundConfig::default().with_depth(depth))
    }

    #[test]
    fn deterministic_terms_get_probability_one() {
        let r = lb("1 + 2", 50);
        assert_eq!(r.probability, Rational::one());
        assert_eq!(r.paths, 1);
        assert_eq!(r.unexplored_paths, 0);
        assert!(!r.interrupted);
    }

    #[test]
    fn diverging_terms_get_probability_zero() {
        let r = lb("(fix phi x. phi x) 0", 100);
        assert_eq!(r.probability, Rational::zero());
        assert_eq!(r.paths, 0);
        assert!(r.unexplored_paths > 0);
    }

    #[test]
    fn geometric_lower_bounds_approach_one() {
        let geo = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
        let shallow = lb(geo, 40);
        let deep = lb(geo, 120);
        assert!(shallow.probability < deep.probability);
        assert!(deep.probability < Rational::one());
        assert!(deep.probability > Rational::from_ratio(999, 1000));
        // The expected-steps lower bound is positive and grows with depth.
        assert!(deep.expected_steps > shallow.expected_steps);
        assert!(deep.expected_steps > Rational::from_int(3));
    }

    #[test]
    fn fifty_fifty_divergence_is_bounded_by_half() {
        let r = lb("if sample <= 1/2 then 0 else (fix phi x. phi x) 0", 200);
        assert_eq!(r.probability, Rational::from_ratio(1, 2));
    }

    #[test]
    fn nonaffine_printer_quarter_converges_to_one_third() {
        // Ex. 1.1 (2) with p = 1/4 has Pterm = 1/3 (CbN and CbV agree for this term).
        let b = catalog::printer_nonaffine(Rational::from_ratio(1, 4));
        let r = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(80));
        assert!(r.probability < Rational::from_ratio(1, 3));
        assert!(
            r.probability > Rational::from_ratio(29, 100),
            "lower bound too weak: {}",
            r.probability
        );
    }

    #[test]
    fn triangle_example_gets_exact_volumes_per_path() {
        let b = catalog::triangle_example();
        let r = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(80));
        // The first path alone contributes exactly 1/2; deeper paths add more.
        assert!(r.probability >= Rational::from_ratio(1, 2));
        assert!(r.probability < Rational::one());
        assert!(r.probability > Rational::from_ratio(7, 10));
    }

    #[test]
    fn bounds_are_sound_wrt_known_probabilities() {
        // For every Table 1 benchmark with a known Pterm, the computed bound
        // never exceeds it (soundness, Thm. 3.4). Kept to modest depths so the
        // test stays fast; the bench harness pushes depths much further.
        for b in catalog::table1_benchmarks() {
            if matches!(b.name.as_str(), "pedestrian") {
                continue; // slower: exercised in the bench harness and integration tests
            }
            let r = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(35));
            if let Some(expected) = b.expected_pterm {
                assert!(
                    r.probability.to_f64() <= expected + 1e-9,
                    "{}: lower bound {} exceeds true probability {}",
                    b.name,
                    r.probability.to_f64(),
                    expected
                );
            }
            assert!(r.probability >= Rational::zero());
        }
    }

    #[test]
    fn profile_is_monotone_in_depth() {
        let term = parse_term("(fix phi x. if sample <= 1/3 then x else phi (x + 1)) 0").unwrap();
        let profile = lower_bound_profile(&term, &[20, 60, 120]);
        assert_eq!(profile.len(), 3);
        assert!(profile[0].1.probability <= profile[1].1.probability);
        assert!(profile[1].1.probability <= profile[2].1.probability);
    }

    #[test]
    fn decimal_rendering_matches_table_format() {
        let r = lb("if sample <= 1/3 then 0 else 1", 50);
        assert_eq!(r.probability, Rational::one());
        assert_eq!(r.probability_decimal(10), "1.0000000000");
    }

    #[test]
    fn interrupted_lower_bounds_are_nonzero_sound_partials() {
        let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        let config = LowerBoundConfig::default().with_depth(300);
        let full = lower_bound(&geo, &config);
        // Cancel after a small fixed amount of exploration work.
        let mut budget = 8usize;
        let (partial, err) = try_lower_bound(&geo, &config, &mut |_| {
            if budget == 0 {
                Err("deadline exceeded")
            } else {
                budget -= 1;
                Ok(())
            }
        });
        assert_eq!(err, Some("deadline exceeded"));
        assert!(partial.interrupted);
        assert!(partial.probability > Rational::zero(), "partial bound must be nonzero");
        // Every path that terminated before the cutoff is affine here, so the
        // partial must carry the mass of all of them, not just the first.
        assert!(partial.paths > 1, "all exactly-measurable terminated paths count");
        assert!(partial.probability <= full.probability, "partial bounds are monotone");
        assert!(partial.expected_steps <= full.expected_steps);
        // Builders: defaults live in exactly one place.
        assert_eq!(
            LowerBoundConfig::default().with_depth(300),
            LowerBoundConfig { depth: 300, ..Default::default() }
        );
        assert_eq!(config.exploration().max_steps_per_path, 300);
        assert_eq!(config.exploration().max_paths, config.max_paths);
    }
}
