//! The lower-bound engine (paper §3 and §7.1).
//!
//! The engine combines
//!
//! 1. bounded stochastic symbolic execution ([`crate::symbolic`], running on
//!    the shared environment machine), which enumerates the (countably many)
//!    branching behaviours `κ ∈ {L,R}*` and the associated path constraints,
//!    with
//! 2. exact polytope volumes for affine path constraints and an adaptive
//!    box-splitting sweep (interval arithmetic) for the rest,
//!
//! to produce sound, monotonically improving lower bounds on the probability
//! of termination `Pterm(M)` and — via the step counts of each path — on the
//! expected number of reduction steps of terminating runs, exactly as
//! justified by soundness of the interval semantics (Theorem 3.4) and made
//! effective by its completeness (Theorem 3.8).
//!
//! Because every terminating symbolic path contributes *independently* sound
//! mass, the engine is an **anytime algorithm**: [`try_lower_bound`] can be
//! cancelled mid-exploration (the analysis service does so on `deadline_ms`)
//! and the bound computed so far is still valid — merely smaller than what a
//! completed run would certify.

use crate::symbolic::{
    frontier_seeds, try_explore_seeded_progress, Exploration, ExplorationConfig, ReplaySeed,
    SymbolicPath,
};
use probterm_numerics::Rational;
use probterm_spcf::Term;
use probterm_telemetry::{EngineProfile, ProgressCell};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the volume contribution of one terminated symbolic path was computed.
///
/// Recorded per path by [`try_lower_bound_measured`] and surfaced verbatim in
/// the provenance artifact ([`crate::provenance`]), so a reported bound can be
/// audited path by path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeMethod {
    /// Exact polytope volume — the constraint system is affine.
    Exact,
    /// Adaptive box-splitting sweep with the given box budget: a sound lower
    /// bound on the region's volume, generally below the true volume.
    BoxSweep {
        /// The box budget the sweep ran with.
        max_boxes: usize,
    },
    /// Not measured. Kept for provenance-artifact compatibility: since
    /// measurement moved *into* the exploration loop (every path is measured
    /// the instant it terminates, with an interruptible sweep), the engine no
    /// longer produces this variant — an interrupted sweep reports its sound
    /// partial sum as `BoxSweep` instead of discarding it.
    Unmeasured,
}

/// The volume contribution of one terminated path, aligned index-for-index
/// with `Exploration::terminated`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathMeasure {
    /// The (sound lower bound on the) volume of the path region.
    pub volume: Rational,
    /// How `volume` was obtained.
    pub method: VolumeMethod,
}

/// Configuration of the lower-bound computation.
///
/// All defaults live here; the CLI, the analysis service and the benchmark
/// harness derive their configurations through the `with_*` builders.
#[derive(Debug, Clone)]
pub struct LowerBoundConfig {
    /// Exploration depth: the maximum number of small steps per symbolic path
    /// (the column `d` of Table 1).
    pub depth: usize,
    /// Maximum number of symbolic paths to process.
    pub max_paths: usize,
    /// Budget (number of boxes) for the splitting sweep on non-linear paths.
    pub boxes_per_path: usize,
    /// When `true`, the underlying exploration attaches a machine profile,
    /// reported in [`LowerBoundResult::profile`].
    pub profile: bool,
    /// Live-progress cell the engine publishes into at its cooperative-check
    /// poll points (steps, frontier, depth) and on every path termination
    /// (path count, monotone bound). `None` — the default — costs one
    /// `Option` check at each poll point, guarded by the telemetry overhead
    /// test.
    pub progress: Option<Arc<ProgressCell>>,
}

impl Default for LowerBoundConfig {
    fn default() -> Self {
        LowerBoundConfig {
            depth: 200,
            max_paths: 50_000,
            boxes_per_path: 2_000,
            profile: false,
            progress: None,
        }
    }
}

/// Equality compares the *analysis* parameters; the progress handle is an
/// observer, not part of the configured analysis (two configs differing only
/// in where they publish progress compute identical results).
impl PartialEq for LowerBoundConfig {
    fn eq(&self, other: &Self) -> bool {
        self.depth == other.depth
            && self.max_paths == other.max_paths
            && self.boxes_per_path == other.boxes_per_path
            && self.profile == other.profile
    }
}

impl Eq for LowerBoundConfig {}

impl LowerBoundConfig {
    /// Builder: sets the exploration depth.
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Builder: sets the symbolic-path budget.
    #[must_use]
    pub fn with_max_paths(mut self, max_paths: usize) -> Self {
        self.max_paths = max_paths;
        self
    }

    /// Builder: sets the box budget of the splitting sweep per non-linear path.
    #[must_use]
    pub fn with_boxes_per_path(mut self, boxes_per_path: usize) -> Self {
        self.boxes_per_path = boxes_per_path;
        self
    }

    /// Builder: enables or disables machine profiling.
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Builder: attaches a live-progress cell. The engine publishes
    /// steps/frontier/depth at its cooperative-check poll points and the
    /// monotone bound-so-far the instant each path's volume lands, so
    /// concurrent observers (the analysis service's `inspect` op, streamed
    /// progress frames) see a consistent, never-regressing view mid-run.
    #[must_use]
    pub fn with_progress(mut self, progress: Arc<ProgressCell>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The exploration configuration this lower-bound configuration induces.
    pub fn exploration(&self) -> ExplorationConfig {
        ExplorationConfig::default()
            .with_max_steps_per_path(self.depth)
            .with_max_paths(self.max_paths)
            .with_profile(self.profile)
    }
}

/// The result of a lower-bound computation.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerBoundResult {
    /// A sound lower bound on the probability of termination.
    pub probability: Rational,
    /// A sound lower bound on `Σ_{terminating traces} weight · steps`, i.e. on
    /// the expected number of reduction steps restricted to terminating runs
    /// (equals a lower bound on `Eterm` for AST programs, Thm. 3.4).
    pub expected_steps: Rational,
    /// Number of terminating symbolic paths found.
    pub paths: usize,
    /// Number of paths abandoned because the step budget ran out (or the
    /// computation was interrupted).
    pub unexplored_paths: usize,
    /// Number of stuck paths (score failures, domain errors).
    pub stuck_paths: usize,
    /// `true` when the computation was cancelled by the cooperative check of
    /// [`try_lower_bound`] before it finished. The bounds are still sound —
    /// partial explorations only lose mass (Thm. 3.4).
    pub interrupted: bool,
    /// Monotonic elapsed time of the computation (measured on
    /// `std::time::Instant`).
    pub elapsed: Duration,
    /// Machine profile of the symbolic exploration, present iff
    /// [`LowerBoundConfig::profile`] was set.
    pub profile: Option<EngineProfile>,
}

impl LowerBoundResult {
    /// The lower bound rendered with `digits` decimal digits (truncated), the
    /// format used by Table 1.
    pub fn probability_decimal(&self, digits: usize) -> String {
        self.probability.to_decimal_string(digits)
    }
}

/// Computes a lower bound on the termination probability of a closed SPCF
/// term under call-by-name evaluation.
///
/// # Examples
///
/// ```
/// use probterm_intervalsem::{lower_bound, LowerBoundConfig};
/// use probterm_numerics::Rational;
/// use probterm_spcf::parse_term;
///
/// let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
/// let result = lower_bound(&geo, &LowerBoundConfig::default().with_depth(120));
/// assert!(result.probability > Rational::from_ratio(99, 100));
/// assert!(result.probability < Rational::one());
/// ```
pub fn lower_bound(term: &Term, config: &LowerBoundConfig) -> LowerBoundResult {
    let (result, interrupted) =
        try_lower_bound::<std::convert::Infallible>(term, config, &mut |_| Ok(()));
    debug_assert!(interrupted.is_none());
    result
}

/// Like [`lower_bound`], but calls `check(work)` periodically — inside the
/// symbolic exploration and between per-path volume computations — and stops
/// early with its error when it fails.
///
/// The returned result then carries `interrupted: true` together with the
/// **sound partial bound** accumulated so far: every terminating path found
/// before the interruption certifies its probability mass (Thm. 3.4), so a
/// deadline-bounded caller still gets a nonzero monotone lower bound instead
/// of nothing. Volumes are measured *incrementally, inside the exploration
/// loop*, the instant each path terminates — there is no deadline-blind
/// post-hoc measurement phase, and even the non-affine box sweep is
/// interruptible mid-flight (its partial sum stays counted). The bound
/// therefore tightens monotonically in real time and the engine can stop
/// within one check interval of any step.
pub fn try_lower_bound<E>(
    term: &Term,
    config: &LowerBoundConfig,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
) -> (LowerBoundResult, Option<E>) {
    let (result, _, _, interruption) = try_lower_bound_measured(term, config, check);
    (result, interruption)
}

/// The full-fidelity variant of [`try_lower_bound`]: additionally returns the
/// underlying [`Exploration`] (terminated paths, stuck tally, abandoned
/// frontier) and one [`PathMeasure`] per terminated path, aligned
/// index-for-index with `Exploration::terminated`.
///
/// This is the single measuring loop both the lower-bound engine and the
/// provenance layer run on, which is what makes the provenance artifact's
/// per-path volumes sum *exactly* (rational arithmetic, no float drift) to
/// [`LowerBoundResult::probability`] — they are the same numbers.
pub fn try_lower_bound_measured<E>(
    term: &Term,
    config: &LowerBoundConfig,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
) -> (LowerBoundResult, Exploration, Vec<PathMeasure>, Option<E>) {
    let (result, _, exploration, measures, interruption) =
        run_accumulated(term, config, None, check);
    (result, exploration, measures, interruption)
}

/// A paused lower-bound computation, complete enough to *resume*: the mass
/// accumulated so far (exact rationals) plus the replayable frontier — one
/// [`ReplaySeed`] per unexplored subtree. A resumed run explores exactly
/// those subtrees and adds its mass to the checkpointed tallies, so chaining
/// runs reproduces a from-scratch run at the combined budget with
/// exact-rational equality (the terminated paths partition identically), and
/// no measured path is ever re-explored.
///
/// The rationals and seeds round-trip through strings
/// ([`Rational`]'s `Display`/`parse`, [`ReplaySeed::render`]/`parse`), which
/// is how the analysis service stores checkpoints in partial-result cache
/// entries.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerBoundCheckpoint {
    /// Termination mass accumulated across all runs so far.
    pub probability: Rational,
    /// Expected-steps mass accumulated across all runs so far.
    pub expected_steps: Rational,
    /// Terminated (and measured) paths across all runs so far.
    pub paths: usize,
    /// Stuck paths across all runs so far.
    pub stuck_paths: usize,
    /// The unexplored frontier: replay seeds for every paused subtree. Empty
    /// iff the exploration ran to completion (nothing left to resume).
    pub frontier: Vec<ReplaySeed>,
}

/// Like [`try_lower_bound`], but resumable: pass `resume = Some(checkpoint)`
/// to continue a previously interrupted computation from its saved frontier
/// instead of recomputing from scratch. Returns the (cumulative) result, a
/// fresh checkpoint for the *next* resume, and the interruption error if the
/// cooperative check fired.
///
/// The result's tallies are cumulative — they include the checkpointed
/// mass — so callers can treat a resumed reply exactly like a from-scratch
/// one. `max_paths` is a per-run safety valve and starts afresh each resume.
pub fn try_lower_bound_resumable<E>(
    term: &Term,
    config: &LowerBoundConfig,
    resume: Option<&LowerBoundCheckpoint>,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
) -> (LowerBoundResult, LowerBoundCheckpoint, Option<E>) {
    let (result, checkpoint, _, _, interruption) = run_accumulated(term, config, resume, check);
    (result, checkpoint, interruption)
}

/// The single engine core: seeded exploration with in-loop measurement,
/// cumulative accounting, checkpoint construction.
fn run_accumulated<E>(
    term: &Term,
    config: &LowerBoundConfig,
    resume: Option<&LowerBoundCheckpoint>,
    check: &mut dyn FnMut(usize) -> Result<(), E>,
) -> (LowerBoundResult, LowerBoundCheckpoint, Exploration, Vec<PathMeasure>, Option<E>) {
    let start = Instant::now();
    let seeds = resume.map(|c| c.frontier.as_slice());
    // A resumed run's live bound starts from the checkpointed mass, so the
    // streamed/inspected progress stays monotone across the resume chain.
    let prior = resume.map_or((Rational::zero(), 0), |c| (c.probability.clone(), c.paths));
    let (exploration, measures, interruption) = run_measured(term, config, seeds, prior, check);
    let mut probability = Rational::zero();
    let mut expected_steps = Rational::zero();
    let mut measured = 0usize;
    let mut unmeasured = 0usize;
    for (path, measure) in exploration.terminated.iter().zip(&measures) {
        if measure.method == VolumeMethod::Unmeasured {
            unmeasured += 1;
            continue;
        }
        expected_steps += &measure.volume * &Rational::from_int(path.steps as i64);
        probability += measure.volume.clone();
        measured += 1;
    }
    let mut stuck = exploration.stuck;
    if let Some(prior) = resume {
        probability += prior.probability.clone();
        expected_steps += prior.expected_steps.clone();
        measured += prior.paths;
        stuck += prior.stuck_paths;
    }
    let checkpoint = LowerBoundCheckpoint {
        probability: probability.clone(),
        expected_steps: expected_steps.clone(),
        paths: measured,
        stuck_paths: stuck,
        frontier: frontier_seeds(&exploration.frontier),
    };
    let result = LowerBoundResult {
        probability,
        expected_steps,
        paths: measured,
        unexplored_paths: exploration.out_of_fuel + unmeasured,
        stuck_paths: stuck,
        interrupted: exploration.interrupted || interruption.is_some(),
        elapsed: start.elapsed(),
        profile: exploration.profile.clone(),
    };
    (result, checkpoint, exploration, measures, interruption)
}

/// Seeded exploration with the measuring hook folded into the explore loop:
/// every terminating path is measured the moment it terminates (exact
/// polytope volume when affine, interruptible box sweep otherwise), so
/// `measures` is always aligned index-for-index with
/// `exploration.terminated` — even across interruptions.
fn run_measured<E>(
    term: &Term,
    config: &LowerBoundConfig,
    seeds: Option<&[ReplaySeed]>,
    prior: (Rational, usize),
    check: &mut dyn FnMut(usize) -> Result<(), E>,
) -> (Exploration, Vec<PathMeasure>, Option<E>) {
    let boxes_per_path = config.boxes_per_path;
    let progress = config.progress.as_deref();
    let mut measures: Vec<PathMeasure> = Vec::new();
    let (prior_mass, prior_paths) = prior;
    // Live-bound accumulator: floats here only feed the progress display
    // (the result itself stays exact rational); the cell's fixed-point
    // ratchet keeps the published bound monotone regardless of drift.
    let mut live_bound = prior_mass.to_f64();
    let mut live_paths = prior_paths as u64;
    if let Some(cell) = progress {
        cell.publish_terminated(live_paths, live_bound);
    }
    let (exploration, interruption) = {
        let measures = &mut measures;
        let mut on_terminated = move |path: &SymbolicPath,
                                      check: &mut dyn FnMut(usize) -> Result<(), E>|
              -> Result<(), E> {
            let outcome = match path.exact_probability() {
                Some(volume) => {
                    measures.push(PathMeasure { volume, method: VolumeMethod::Exact });
                    Ok(())
                }
                None => {
                    // An interrupted sweep keeps its partial sum: boxes
                    // already proven inside the region are sound mass.
                    let (volume, failed) = path.try_box_lower_bound(boxes_per_path, check);
                    measures.push(PathMeasure {
                        volume,
                        method: VolumeMethod::BoxSweep { max_boxes: boxes_per_path },
                    });
                    match failed {
                        Some(e) => Err(e),
                        None => Ok(()),
                    }
                }
            };
            if let Some(cell) = progress {
                live_bound += measures.last().expect("just pushed").volume.to_f64();
                live_paths += 1;
                cell.publish_terminated(live_paths, live_bound);
            }
            outcome
        };
        try_explore_seeded_progress(
            term,
            &config.exploration(),
            seeds,
            progress,
            check,
            &mut on_terminated,
        )
    };
    (exploration, measures, interruption)
}

/// Computes lower bounds at several increasing depths, demonstrating the
/// anytime nature of the procedure (each bound is sound, and they are
/// monotonically non-decreasing in the depth).
pub fn lower_bound_profile(term: &Term, depths: &[usize]) -> Vec<(usize, LowerBoundResult)> {
    depths
        .iter()
        .map(|d| (*d, lower_bound(term, &LowerBoundConfig::default().with_depth(*d))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::catalog;
    use probterm_spcf::parse_term;

    fn lb(src: &str, depth: usize) -> LowerBoundResult {
        let term = parse_term(src).unwrap();
        lower_bound(&term, &LowerBoundConfig::default().with_depth(depth))
    }

    #[test]
    fn deterministic_terms_get_probability_one() {
        let r = lb("1 + 2", 50);
        assert_eq!(r.probability, Rational::one());
        assert_eq!(r.paths, 1);
        assert_eq!(r.unexplored_paths, 0);
        assert!(!r.interrupted);
    }

    #[test]
    fn diverging_terms_get_probability_zero() {
        let r = lb("(fix phi x. phi x) 0", 100);
        assert_eq!(r.probability, Rational::zero());
        assert_eq!(r.paths, 0);
        assert!(r.unexplored_paths > 0);
    }

    #[test]
    fn geometric_lower_bounds_approach_one() {
        let geo = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
        let shallow = lb(geo, 40);
        let deep = lb(geo, 120);
        assert!(shallow.probability < deep.probability);
        assert!(deep.probability < Rational::one());
        assert!(deep.probability > Rational::from_ratio(999, 1000));
        // The expected-steps lower bound is positive and grows with depth.
        assert!(deep.expected_steps > shallow.expected_steps);
        assert!(deep.expected_steps > Rational::from_int(3));
    }

    #[test]
    fn fifty_fifty_divergence_is_bounded_by_half() {
        let r = lb("if sample <= 1/2 then 0 else (fix phi x. phi x) 0", 200);
        assert_eq!(r.probability, Rational::from_ratio(1, 2));
    }

    #[test]
    fn nonaffine_printer_quarter_converges_to_one_third() {
        // Ex. 1.1 (2) with p = 1/4 has Pterm = 1/3 (CbN and CbV agree for this term).
        let b = catalog::printer_nonaffine(Rational::from_ratio(1, 4));
        let r = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(80));
        assert!(r.probability < Rational::from_ratio(1, 3));
        assert!(
            r.probability > Rational::from_ratio(29, 100),
            "lower bound too weak: {}",
            r.probability
        );
    }

    #[test]
    fn triangle_example_gets_exact_volumes_per_path() {
        let b = catalog::triangle_example();
        let r = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(80));
        // The first path alone contributes exactly 1/2; deeper paths add more.
        assert!(r.probability >= Rational::from_ratio(1, 2));
        assert!(r.probability < Rational::one());
        assert!(r.probability > Rational::from_ratio(7, 10));
    }

    #[test]
    fn bounds_are_sound_wrt_known_probabilities() {
        // For every Table 1 benchmark with a known Pterm, the computed bound
        // never exceeds it (soundness, Thm. 3.4). Kept to modest depths so the
        // test stays fast; the bench harness pushes depths much further.
        for b in catalog::table1_benchmarks() {
            if matches!(b.name.as_str(), "pedestrian") {
                continue; // slower: exercised in the bench harness and integration tests
            }
            let r = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(35));
            if let Some(expected) = b.expected_pterm {
                assert!(
                    r.probability.to_f64() <= expected + 1e-9,
                    "{}: lower bound {} exceeds true probability {}",
                    b.name,
                    r.probability.to_f64(),
                    expected
                );
            }
            assert!(r.probability >= Rational::zero());
        }
    }

    #[test]
    fn profile_is_monotone_in_depth() {
        let term = parse_term("(fix phi x. if sample <= 1/3 then x else phi (x + 1)) 0").unwrap();
        let profile = lower_bound_profile(&term, &[20, 60, 120]);
        assert_eq!(profile.len(), 3);
        assert!(profile[0].1.probability <= profile[1].1.probability);
        assert!(profile[1].1.probability <= profile[2].1.probability);
    }

    #[test]
    fn decimal_rendering_matches_table_format() {
        let r = lb("if sample <= 1/3 then 0 else 1", 50);
        assert_eq!(r.probability, Rational::one());
        assert_eq!(r.probability_decimal(10), "1.0000000000");
    }

    #[test]
    fn interrupted_lower_bounds_are_nonzero_sound_partials() {
        let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        let config = LowerBoundConfig::default().with_depth(300);
        let full = lower_bound(&geo, &config);
        // Cancel after a small fixed amount of exploration work.
        let mut budget = 8usize;
        let (partial, err) = try_lower_bound(&geo, &config, &mut |_| {
            if budget == 0 {
                Err("deadline exceeded")
            } else {
                budget -= 1;
                Ok(())
            }
        });
        assert_eq!(err, Some("deadline exceeded"));
        assert!(partial.interrupted);
        assert!(partial.probability > Rational::zero(), "partial bound must be nonzero");
        // Every path that terminated before the cutoff is affine here, so the
        // partial must carry the mass of all of them, not just the first.
        assert!(partial.paths > 1, "all exactly-measurable terminated paths count");
        assert!(partial.probability <= full.probability, "partial bounds are monotone");
        assert!(partial.expected_steps <= full.expected_steps);
        // Builders: defaults live in exactly one place.
        assert_eq!(
            LowerBoundConfig::default().with_depth(300),
            LowerBoundConfig { depth: 300, ..Default::default() }
        );
        assert_eq!(config.exploration().max_steps_per_path, 300);
        assert_eq!(config.exploration().max_paths, config.max_paths);
    }

    #[test]
    fn resumed_runs_equal_from_scratch_runs_exactly() {
        let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        let config = LowerBoundConfig::default().with_depth(200).with_profile(true);
        let full = lower_bound(&geo, &config);
        // Interrupt early, then resume to completion from the checkpoint.
        let mut budget = 10usize;
        let (partial, checkpoint, err) = try_lower_bound_resumable(&geo, &config, None, &mut |_| {
            if budget == 0 {
                Err("deadline exceeded")
            } else {
                budget -= 1;
                Ok(())
            }
        });
        assert_eq!(err, Some("deadline exceeded"));
        assert!(partial.interrupted);
        assert!(!checkpoint.frontier.is_empty(), "interrupted run must leave a frontier");
        assert_eq!(checkpoint.probability, partial.probability);
        let (resumed, done, err2) = try_lower_bound_resumable::<std::convert::Infallible>(
            &geo,
            &config,
            Some(&checkpoint),
            &mut |_| Ok(()),
        );
        assert!(err2.is_none());
        assert!(!resumed.interrupted);
        // What is left to resume is exactly what a from-scratch run leaves:
        // the fuel-exhausted leaves at depth 200 (geo never fully explores).
        assert_eq!(resumed.unexplored_paths, full.unexplored_paths);
        assert_eq!(done.frontier.len(), full.unexplored_paths);
        // Exact-rational equality with the from-scratch run at the same
        // depth: the two runs' terminated paths partition identically.
        assert_eq!(resumed.probability, full.probability);
        assert_eq!(resumed.expected_steps, full.expected_steps);
        assert_eq!(resumed.paths, full.paths);
        assert_eq!(resumed.stuck_paths, full.stuck_paths);
        // Monotone tightening: the resumed bound dominates the partial.
        assert!(partial.probability < resumed.probability);
        // No re-exploration of measured paths: the resumed run's machine
        // steps (replay + new work) stay strictly below a from-scratch run.
        let full_steps = full.profile.as_ref().expect("profile on").steps;
        let resumed_steps = resumed.profile.as_ref().expect("profile on").steps;
        assert!(
            resumed_steps < full_steps,
            "resume re-explored measured paths: {resumed_steps} vs {full_steps} steps"
        );
    }

    #[test]
    fn exhausted_frontier_seeds_short_circuit_without_replay() {
        // Depth-limited run: every frontier path exhausted its fuel. Resuming
        // at the same depth must not grind through the replays — the seeds
        // are re-tallied directly and the result matches the original run.
        let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        let config = LowerBoundConfig::default().with_depth(40).with_profile(true);
        let (first, checkpoint, err) =
            try_lower_bound_resumable::<std::convert::Infallible>(&geo, &config, None, &mut |_| {
                Ok(())
            });
        assert!(err.is_none());
        assert!(!checkpoint.frontier.is_empty(), "depth 40 leaves out-of-fuel paths");
        let (again, checkpoint2, err2) = try_lower_bound_resumable::<std::convert::Infallible>(
            &geo,
            &config,
            Some(&checkpoint),
            &mut |_| Ok(()),
        );
        assert!(err2.is_none());
        // No new mass at the same depth; the frontier survives verbatim.
        assert_eq!(again.probability, first.probability);
        assert_eq!(checkpoint2.frontier, checkpoint.frontier);
        // Short-circuit: no machine ran at all in the resumed pass.
        assert_eq!(again.profile.as_ref().expect("profile on").steps, 0);
    }
}
