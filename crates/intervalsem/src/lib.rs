//! Interval-trace semantics and termination lower bounds for SPCF.
//!
//! This crate implements the first contribution of *"On Probabilistic
//! Termination of Functional Programs with Continuous Distributions"*
//! (Beutner & Ong, PLDI 2021):
//!
//! * **Interval terms and interval reduction** ([`ITerm`], [`run_interval`],
//!   paper §3.1/Fig. 9): evaluation parameterised by a trace of intervals,
//!   sound and complete w.r.t. the standard sampling semantics.
//! * **Interval traces** ([`IntervalTrace`]) with their weights and the
//!   pairwise-compatibility requirement of Theorem 3.4.
//! * **Stochastic symbolic execution** ([`explore`], App. B.5): enumeration of
//!   branching behaviours with symbolic path constraints.
//! * **The lower-bound engine** ([`lower_bound`], §7.1): exact polytope
//!   volumes for affine constraints and an interval box-splitting sweep
//!   otherwise, yielding arbitrarily tight lower bounds on `Pterm` and on the
//!   expected runtime of terminating runs.
//!
//! # Example
//!
//! ```
//! use probterm_intervalsem::{lower_bound, LowerBoundConfig};
//! use probterm_spcf::catalog;
//!
//! // Table 1, row "Ex 1.1, p = 1/4": the true termination probability is 1/3.
//! let bench = catalog::printer_nonaffine(probterm_numerics::Rational::from_ratio(1, 4));
//! let result = lower_bound(&bench.term, &LowerBoundConfig::default().with_depth(50));
//! assert!(result.probability.to_f64() <= 1.0 / 3.0 + 1e-12);
//! assert!(result.probability.to_f64() > 0.29);
//! ```

#![warn(missing_docs)]

mod iterm;
mod lowerbound;
mod past;
pub mod provenance;
mod symbolic;

pub use iterm::{
    pairwise_compatible, prim_interval, run_interval, IOutcome, IStuck, ITerm, IValue,
    IntervalTrace,
};
pub use lowerbound::{
    lower_bound, lower_bound_profile, try_lower_bound, try_lower_bound_measured,
    try_lower_bound_resumable, LowerBoundCheckpoint, LowerBoundConfig, LowerBoundResult,
    PathMeasure, VolumeMethod,
};
pub use past::{
    divergence_ratio, expected_steps_profile, refute_past_bound, ExpectedStepsPoint, PastProbe,
    PastRefutation,
};
pub use provenance::{
    explain, try_explain, ExplainConfig, FrontierSummary, PathProvenance, Provenance, Witness,
};
pub use symbolic::{
    explore, explore_substitution, frontier_seeds, try_explore, try_explore_seeded,
    try_explore_seeded_progress, Branch,
    ConstraintKind, Exploration, ExplorationConfig, FrontierPath, ReplaySeed, SymConstraint,
    SymValue, SymbolicPath,
};
