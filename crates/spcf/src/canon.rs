//! Canonical (α-invariant) forms and content hashes of SPCF terms.
//!
//! Two terms have the same [`Term::canonical_form`] — and hence the same
//! [`Term::canonical_key`] — exactly when they are α-equivalent: bound
//! variables are replaced by de Bruijn indices, free variables are kept by
//! name, and every node is rendered with an unambiguous tag/delimiter scheme.
//! The 128-bit key is what the analysis service uses to content-address its
//! result cache, so syntactically distinct but α-equivalent resubmissions of
//! the same program are cache hits.

use crate::ast::{Ident, Term};

/// FNV-1a offset basis, 128-bit variant.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a prime, 128-bit variant.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

fn fnv128(bytes: &[u8]) -> u128 {
    let mut hash = FNV128_OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(FNV128_PRIME);
    }
    hash
}

fn push_canonical(t: &Term, binders: &mut Vec<Ident>, out: &mut String) {
    match t {
        Term::Var(x) => {
            // Innermost binder first: the de Bruijn index is the distance
            // from the top of the binder stack, which also resolves
            // shadowing the way substitution does.
            match binders.iter().rev().position(|b| b == x) {
                Some(index) => {
                    out.push('b');
                    out.push_str(&index.to_string());
                }
                None => {
                    // Free variables stay named: α-equivalence never renames
                    // them. The length prefix keeps the encoding injective.
                    out.push('f');
                    out.push_str(&x.len().to_string());
                    out.push(':');
                    out.push_str(x);
                }
            }
            out.push(';');
        }
        Term::Num(r) => {
            // Rationals are kept normalised, so their display is canonical.
            out.push('n');
            out.push_str(&r.to_string());
            out.push(';');
        }
        Term::Sample => out.push_str("s;"),
        Term::Score(m) => {
            out.push_str("w(");
            push_canonical(m, binders, out);
            out.push(')');
        }
        Term::Lam(x, body) => {
            out.push_str("l(");
            binders.push(x.clone());
            push_canonical(body, binders, out);
            binders.pop();
            out.push(')');
        }
        Term::Fix(phi, x, body) => {
            out.push_str("m(");
            binders.push(phi.clone());
            binders.push(x.clone());
            push_canonical(body, binders, out);
            binders.pop();
            binders.pop();
            out.push(')');
        }
        Term::App(f, a) => {
            out.push_str("a(");
            push_canonical(f, binders, out);
            push_canonical(a, binders, out);
            out.push(')');
        }
        Term::If(g, then, els) => {
            out.push_str("i(");
            push_canonical(g, binders, out);
            push_canonical(then, binders, out);
            push_canonical(els, binders, out);
            out.push(')');
        }
        Term::Prim(p, args) => {
            out.push_str("p(");
            out.push_str(p.name());
            for arg in args {
                push_canonical(arg, binders, out);
            }
            out.push(')');
        }
    }
}

impl Term {
    /// The canonical (de Bruijn) rendering of the term: two terms have equal
    /// canonical forms iff they are α-equivalent.
    pub fn canonical_form(&self) -> String {
        let mut out = String::with_capacity(self.size() * 4);
        push_canonical(self, &mut Vec::new(), &mut out);
        out
    }

    /// A 128-bit α-invariant structural hash (FNV-1a over
    /// [`Term::canonical_form`]), suitable as a content-address for caches:
    /// α-equivalent terms always collide, α-distinct terms collide with
    /// probability ~2⁻¹²⁸.
    pub fn canonical_key(&self) -> u128 {
        fnv128(self.canonical_form().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::parser::parse_term;

    fn t(src: &str) -> Term {
        parse_term(src).unwrap()
    }

    #[test]
    fn alpha_renamings_share_a_key() {
        let pairs = [
            ("lam x. x", "lam y. y"),
            (
                "(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 1",
                "(fix loop n. if sample <= 1/2 then n else loop (loop (n + 1))) 1",
            ),
            ("let x = sample in x * x", "let draw = sample in draw * draw"),
            ("lam x. lam x. x", "lam a. lam b. b"),
        ];
        for (a, b) in pairs {
            let (ta, tb) = (t(a), t(b));
            assert!(ta.alpha_eq(&tb), "{a} vs {b}");
            assert_eq!(ta.canonical_form(), tb.canonical_form(), "{a} vs {b}");
            assert_eq!(ta.canonical_key(), tb.canonical_key(), "{a} vs {b}");
        }
    }

    #[test]
    fn distinct_terms_get_distinct_keys() {
        let sources = [
            "lam x. x",
            "lam x. lam y. x",
            "lam x. lam y. y",
            "fix phi x. phi x",
            "sample",
            "score(sample)",
            "0",
            "1",
            "1/2",
            "-1/2",
            "1 + 2",
            "2 + 1",
            "1 - 2",
            "if 0 then 1 else 2",
            "if 0 then 2 else 1",
            "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0",
            "(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 0",
            "y",
            "z",
        ];
        let mut seen = std::collections::HashMap::new();
        for src in sources {
            let key = t(src).canonical_key();
            if let Some(previous) = seen.insert(key, src) {
                panic!("collision between `{previous}` and `{src}`");
            }
        }
    }

    #[test]
    fn canonical_form_matches_alpha_eq_on_shadowing_cases() {
        // `lam x. lam y. x` vs `lam y. lam x. y`: α-equivalent.
        let a = t("lam x. lam y. x");
        let b = t("lam y. lam x. y");
        assert!(a.alpha_eq(&b));
        assert_eq!(a.canonical_key(), b.canonical_key());
        // Shadowed binder: `lam x. lam x. x` is NOT α-equivalent to
        // `lam a. lam b. a`.
        let c = t("lam x. lam x. x");
        let d = t("lam a. lam b. a");
        assert!(!c.alpha_eq(&d));
        assert_ne!(c.canonical_form(), d.canonical_form());
    }

    #[test]
    fn free_variables_are_kept_by_name() {
        assert_ne!(t("y").canonical_key(), t("z").canonical_key());
        assert_eq!(
            t("lam x. x + y").canonical_key(),
            t("lam q. q + y").canonical_key()
        );
        assert_ne!(
            t("lam x. x + y").canonical_key(),
            t("lam x. x + z").canonical_key()
        );
    }

    #[test]
    fn fix_binders_canonicalise_like_substitution_resolves_them() {
        // φ is index 1, x index 0 inside the body.
        let a = t("fix phi x. phi x");
        let b = t("fix f y. f y");
        assert_eq!(a.canonical_form(), b.canonical_form());
        let swapped = t("fix phi x. x phi");
        assert_ne!(a.canonical_form(), swapped.canonical_form());
    }

    #[test]
    fn keys_are_stable_across_the_catalogue() {
        let mut all = catalog::table1_benchmarks();
        all.extend(catalog::table2_benchmarks());
        for b in &all {
            let k1 = b.term.canonical_key();
            let k2 = b.term.clone().canonical_key();
            assert_eq!(k1, k2, "{}", b.name);
        }
        // All catalogue terms are pairwise α-distinct except the one shared
        // between Table 1 and Table 2 (the fair non-affine printer).
        let mut keys: Vec<u128> = all.iter().map(|b| b.term.canonical_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), all.len() - 1);
    }
}
