//! The simple type system of SPCF (paper Fig. 1 / Fig. 7).
//!
//! Types are `α, β ::= R | α → β`. Terms carry no annotations, so this module
//! implements a small unification-based inference engine (monomorphic
//! Hindley–Milner) that either produces the principal simple type of a term or
//! reports why none exists. All terms analysed by the paper are simply typed;
//! type checking is the first well-formedness gate of every tool in this
//! workspace.

use crate::ast::{Ident, Term};
use std::collections::HashMap;
use std::fmt;

/// A simple type: the base type of reals or a function type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SimpleType {
    /// The base type `R` of reals.
    Real,
    /// A function type `α → β`.
    Arrow(Box<SimpleType>, Box<SimpleType>),
}

impl SimpleType {
    /// Constructs the function type `from → to`.
    pub fn arrow(from: SimpleType, to: SimpleType) -> SimpleType {
        SimpleType::Arrow(Box::new(from), Box::new(to))
    }

    /// The type `R → R` of first-order functions.
    pub fn first_order() -> SimpleType {
        SimpleType::arrow(SimpleType::Real, SimpleType::Real)
    }

    /// The order of the type: `order(R) = 0`,
    /// `order(α → β) = max(order(α) + 1, order(β))`.
    pub fn order(&self) -> usize {
        match self {
            SimpleType::Real => 0,
            SimpleType::Arrow(a, b) => (a.order() + 1).max(b.order()),
        }
    }

    /// Returns `true` if this is the base type.
    pub fn is_real(&self) -> bool {
        matches!(self, SimpleType::Real)
    }
}

impl fmt::Display for SimpleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimpleType::Real => write!(f, "R"),
            SimpleType::Arrow(a, b) => match **a {
                SimpleType::Arrow(_, _) => write!(f, "({a}) -> {b}"),
                SimpleType::Real => write!(f, "R -> {b}"),
            },
        }
    }
}

/// Internal representation with unification variables.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ty {
    Real,
    Var(usize),
    Arrow(Box<Ty>, Box<Ty>),
}

/// An error produced by type inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A variable is not bound in the typing context.
    UnboundVariable(String),
    /// Two types failed to unify.
    Mismatch {
        /// Rendering of the expected type (up to unification variables).
        expected: String,
        /// Rendering of the actual type.
        actual: String,
    },
    /// The occurs check failed (the term requires an infinite type).
    InfiniteType,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::Mismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, found {actual}")
            }
            TypeError::InfiniteType => write!(f, "term requires an infinite type"),
        }
    }
}

impl std::error::Error for TypeError {}

/// A unification-based type inference engine for SPCF.
#[derive(Debug, Default)]
struct Inference {
    /// Union-find-ish substitution: `bindings[v]` is the binding of variable `v`.
    bindings: Vec<Option<Ty>>,
}

impl Inference {
    fn fresh(&mut self) -> Ty {
        self.bindings.push(None);
        Ty::Var(self.bindings.len() - 1)
    }

    fn resolve(&self, ty: &Ty) -> Ty {
        match ty {
            Ty::Var(v) => match &self.bindings[*v] {
                Some(bound) => self.resolve(bound),
                None => ty.clone(),
            },
            Ty::Real => Ty::Real,
            Ty::Arrow(a, b) => Ty::Arrow(Box::new(self.resolve(a)), Box::new(self.resolve(b))),
        }
    }

    fn occurs(&self, v: usize, ty: &Ty) -> bool {
        match self.resolve(ty) {
            Ty::Var(w) => v == w,
            Ty::Real => false,
            Ty::Arrow(a, b) => self.occurs(v, &a) || self.occurs(v, &b),
        }
    }

    fn unify(&mut self, a: &Ty, b: &Ty) -> Result<(), TypeError> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (a, b) {
            (Ty::Real, Ty::Real) => Ok(()),
            (Ty::Var(v), other) | (other, Ty::Var(v)) => {
                if let Ty::Var(w) = other {
                    if v == w {
                        return Ok(());
                    }
                }
                if self.occurs(v, &other) {
                    return Err(TypeError::InfiniteType);
                }
                self.bindings[v] = Some(other);
                Ok(())
            }
            (Ty::Arrow(a1, b1), Ty::Arrow(a2, b2)) => {
                self.unify(&a1, &a2)?;
                self.unify(&b1, &b2)
            }
            (x, y) => Err(TypeError::Mismatch {
                expected: self.render(&x),
                actual: self.render(&y),
            }),
        }
    }

    fn render(&self, ty: &Ty) -> String {
        match self.resolve(ty) {
            Ty::Real => "R".to_string(),
            Ty::Var(v) => format!("?{v}"),
            Ty::Arrow(a, b) => format!("({} -> {})", self.render(&a), self.render(&b)),
        }
    }

    fn infer(&mut self, env: &mut HashMap<Ident, Ty>, term: &Term) -> Result<Ty, TypeError> {
        match term {
            Term::Var(x) => env
                .get(x)
                .cloned()
                .ok_or_else(|| TypeError::UnboundVariable(x.to_string())),
            Term::Num(_) | Term::Sample => Ok(Ty::Real),
            Term::Lam(x, body) => {
                let arg = self.fresh();
                let shadowed = env.insert(x.clone(), arg.clone());
                let result = self.infer(env, body)?;
                restore(env, x, shadowed);
                Ok(Ty::Arrow(Box::new(arg), Box::new(result)))
            }
            Term::Fix(phi, x, body) => {
                let arg = self.fresh();
                let result = self.fresh();
                let fun = Ty::Arrow(Box::new(arg.clone()), Box::new(result.clone()));
                let shadowed_phi = env.insert(phi.clone(), fun.clone());
                let shadowed_x = env.insert(x.clone(), arg);
                let body_ty = self.infer(env, body)?;
                self.unify(&body_ty, &result)?;
                restore(env, x, shadowed_x);
                restore(env, phi, shadowed_phi);
                Ok(fun)
            }
            Term::App(f, a) => {
                let f_ty = self.infer(env, f)?;
                let a_ty = self.infer(env, a)?;
                let result = self.fresh();
                self.unify(
                    &f_ty,
                    &Ty::Arrow(Box::new(a_ty), Box::new(result.clone())),
                )?;
                Ok(result)
            }
            Term::If(g, t, e) => {
                let g_ty = self.infer(env, g)?;
                self.unify(&g_ty, &Ty::Real)?;
                let t_ty = self.infer(env, t)?;
                let e_ty = self.infer(env, e)?;
                self.unify(&t_ty, &e_ty)?;
                Ok(t_ty)
            }
            Term::Prim(p, args) => {
                debug_assert_eq!(args.len(), p.arity());
                for a in args {
                    let ty = self.infer(env, a)?;
                    self.unify(&ty, &Ty::Real)?;
                }
                Ok(Ty::Real)
            }
            Term::Score(m) => {
                let ty = self.infer(env, m)?;
                self.unify(&ty, &Ty::Real)?;
                Ok(Ty::Real)
            }
        }
    }

    /// Turns a resolved internal type into a [`SimpleType`], defaulting any
    /// remaining unconstrained variables to `R` (the principal choice for the
    /// analyses in this workspace, which only ever inspect base-type results).
    fn finalize(&self, ty: &Ty) -> SimpleType {
        match self.resolve(ty) {
            Ty::Real | Ty::Var(_) => SimpleType::Real,
            Ty::Arrow(a, b) => SimpleType::arrow(self.finalize(&a), self.finalize(&b)),
        }
    }
}

fn restore(env: &mut HashMap<Ident, Ty>, key: &Ident, previous: Option<Ty>) {
    match previous {
        Some(v) => {
            env.insert(key.clone(), v);
        }
        None => {
            env.remove(key);
        }
    }
}

/// Infers the simple type of a closed term.
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is open or not simply typable.
///
/// # Examples
///
/// ```
/// use probterm_spcf::{infer_type, SimpleType, Term};
///
/// let geo = Term::app(
///     Term::fix("phi", "x", Term::ite(
///         Term::leq(Term::Sample, Term::ratio(1, 2)),
///         Term::var("x"),
///         Term::app(Term::var("phi"), Term::add(Term::var("x"), Term::int(1))),
///     )),
///     Term::int(0),
/// );
/// assert_eq!(infer_type(&geo).unwrap(), SimpleType::Real);
/// ```
pub fn infer_type(term: &Term) -> Result<SimpleType, TypeError> {
    let mut inference = Inference::default();
    let mut env = HashMap::new();
    let ty = inference.infer(&mut env, term)?;
    Ok(inference.finalize(&ty))
}

/// Infers the simple type of a term in a context assigning types to its free
/// variables.
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is not simply typable in `context`.
pub fn infer_type_in(
    context: &[(Ident, SimpleType)],
    term: &Term,
) -> Result<SimpleType, TypeError> {
    fn embed(t: &SimpleType) -> Ty {
        match t {
            SimpleType::Real => Ty::Real,
            SimpleType::Arrow(a, b) => Ty::Arrow(Box::new(embed(a)), Box::new(embed(b))),
        }
    }
    let mut inference = Inference::default();
    let mut env: HashMap<Ident, Ty> = context
        .iter()
        .map(|(x, t)| (x.clone(), embed(t)))
        .collect();
    let ty = inference.infer(&mut env, term)?;
    Ok(inference.finalize(&ty))
}

/// Returns `true` if the closed term is simply typed with base type `R`.
pub fn is_program(term: &Term) -> bool {
    matches!(infer_type(term), Ok(SimpleType::Real))
}

/// Checks that the term is a *first-order fixpoint* `μφ x. M` of type `R → R`
/// with no nested recursion inside `M`, which is the program shape required by
/// the counting-based analysis of paper §5.2.
pub fn is_first_order_fixpoint(term: &Term) -> bool {
    fn has_fix(t: &Term) -> bool {
        match t {
            Term::Fix(_, _, _) => true,
            Term::Var(_) | Term::Num(_) | Term::Sample => false,
            Term::Lam(_, b) | Term::Score(b) => has_fix(b),
            Term::App(f, a) => has_fix(f) || has_fix(a),
            Term::If(g, t1, t2) => has_fix(g) || has_fix(t1) || has_fix(t2),
            Term::Prim(_, args) => args.iter().any(has_fix),
        }
    }
    match term {
        Term::Fix(_, _, body) => {
            infer_type(term) == Ok(SimpleType::first_order()) && !has_fix(body)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numerals_and_sample_have_base_type() {
        assert_eq!(infer_type(&Term::int(3)).unwrap(), SimpleType::Real);
        assert_eq!(infer_type(&Term::Sample).unwrap(), SimpleType::Real);
        assert_eq!(
            infer_type(&Term::score(Term::Sample)).unwrap(),
            SimpleType::Real
        );
    }

    #[test]
    fn identity_is_arrow() {
        let id = Term::lam("x", Term::var("x"));
        // Unconstrained argument defaults to R.
        assert_eq!(infer_type(&id).unwrap(), SimpleType::first_order());
        let applied = Term::app(id, Term::int(1));
        assert_eq!(infer_type(&applied).unwrap(), SimpleType::Real);
    }

    #[test]
    fn fixpoint_types_as_first_order_function() {
        let geo = Term::fix(
            "phi",
            "x",
            Term::ite(
                Term::leq(Term::Sample, Term::ratio(1, 2)),
                Term::var("x"),
                Term::app(Term::var("phi"), Term::add(Term::var("x"), Term::int(1))),
            ),
        );
        assert_eq!(infer_type(&geo).unwrap(), SimpleType::first_order());
        assert!(is_first_order_fixpoint(&geo));
        assert!(is_program(&Term::app(geo, Term::int(0))));
    }

    #[test]
    fn higher_order_terms_are_typable() {
        // λf. f 0 : (R → R) → R
        let t = Term::lam("f", Term::app(Term::var("f"), Term::int(0)));
        let ty = infer_type(&t).unwrap();
        assert_eq!(
            ty,
            SimpleType::arrow(SimpleType::first_order(), SimpleType::Real)
        );
        assert_eq!(ty.order(), 2);
    }

    #[test]
    fn ill_typed_terms_are_rejected() {
        // Applying a numeral.
        let t = Term::app(Term::int(1), Term::int(2));
        assert!(matches!(infer_type(&t), Err(TypeError::Mismatch { .. })));
        // Self-application needs an infinite type.
        let omega = Term::lam("x", Term::app(Term::var("x"), Term::var("x")));
        assert_eq!(infer_type(&omega), Err(TypeError::InfiniteType));
        // Branches of a conditional must agree.
        let t = Term::ite(Term::int(0), Term::int(1), Term::lam("x", Term::var("x")));
        assert!(infer_type(&t).is_err());
        // Open terms are rejected.
        assert_eq!(
            infer_type(&Term::var("y")),
            Err(TypeError::UnboundVariable("y".into()))
        );
    }

    #[test]
    fn context_typing() {
        let ctx = vec![(crate::ast::ident("f"), SimpleType::first_order())];
        let t = Term::app(Term::var("f"), Term::Sample);
        assert_eq!(infer_type_in(&ctx, &t).unwrap(), SimpleType::Real);
    }

    #[test]
    fn first_order_fixpoint_rejects_nested_and_higher_order() {
        // Nested recursion.
        let inner = Term::fix("g", "y", Term::var("y"));
        let nested = Term::fix("f", "x", Term::app(inner, Term::var("x")));
        assert!(!is_first_order_fixpoint(&nested));
        // Not a fixpoint at all.
        assert!(!is_first_order_fixpoint(&Term::int(1)));
    }

    #[test]
    fn display_of_types() {
        assert_eq!(SimpleType::Real.to_string(), "R");
        assert_eq!(SimpleType::first_order().to_string(), "R -> R");
        assert_eq!(
            SimpleType::arrow(SimpleType::first_order(), SimpleType::Real).to_string(),
            "(R -> R) -> R"
        );
        let err = TypeError::UnboundVariable("x".into());
        assert!(err.to_string().contains('x'));
    }
}
