//! Lexer for the SPCF surface syntax.
//!
//! The surface syntax is a small ASCII-friendly rendering of the calculus of
//! paper §2.2, e.g. the running example (1):
//!
//! ```text
//! (fix phi x. if sample <= 0.5 then x else phi (x + 1)) 0
//! ```

use std::fmt;

/// A lexical token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// The kinds of token produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword candidate.
    Ident(String),
    /// A numeric literal (decimal notation), stored verbatim.
    Number(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `\` (alternative λ binder)
    Backslash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(s) => write!(f, "number `{s}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Backslash => write!(f, "`\\`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// An error produced while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Splits the input into tokens (always terminated by [`TokenKind::Eof`]).
///
/// Line comments start with `--` or `#` and run to the end of the line.
///
/// # Errors
///
/// Returns a [`LexError`] on unexpected characters or malformed numbers.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] as char != '\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] as char == '-' => {
                while i < bytes.len() && bytes[i] as char != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset: i });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset: i });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset: i });
                i += 1;
            }
            '.' if !(i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()) => {
                tokens.push(Token { kind: TokenKind::Dot, offset: i });
                i += 1;
            }
            '\\' => {
                tokens.push(Token { kind: TokenKind::Backslash, offset: i });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, offset: i });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, offset: i });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, offset: i });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, offset: i });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset: i });
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token { kind: TokenKind::Le, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, offset: i });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token { kind: TokenKind::Ge, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset: i });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut seen_dot = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !seen_dot {
                        seen_dot = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if text == "." {
                    return Err(LexError {
                        message: "malformed number".into(),
                        offset: start,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Number(text.to_string()),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '\'' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_tokens() {
        assert_eq!(
            kinds("( ) , . + - * / = < <= > >= \\"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Dot,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Eq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Backslash,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_identifiers() {
        assert_eq!(
            kinds("geo_1 0.25 3 x' .5"),
            vec![
                TokenKind::Ident("geo_1".into()),
                TokenKind::Number("0.25".into()),
                TokenKind::Number("3".into()),
                TokenKind::Ident("x'".into()),
                TokenKind::Number(".5".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn fixpoint_binder_dot_is_not_a_number() {
        assert_eq!(
            kinds("fix phi x. x"),
            vec![
                TokenKind::Ident("fix".into()),
                TokenKind::Ident("phi".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x -- a comment\n# another\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors_report_position() {
        let err = tokenize("x ? y").unwrap_err();
        assert_eq!(err.offset, 2);
        assert!(err.to_string().contains('?'));
    }
}
