//! Pretty-printing of SPCF terms.
//!
//! The printer emits the same surface syntax accepted by [`crate::parser`], so
//! `parse_term(&term.to_string())` round-trips (up to sugar such as `flip` and
//! comparison operators, which print in their desugared form).

use crate::ast::{Prim, Term};
use std::fmt;

/// Precedence levels used when deciding where parentheses are needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Level {
    /// Binders, conditionals, lets — the loosest level.
    Term,
    /// Additive expressions.
    Additive,
    /// Multiplicative expressions.
    Multiplicative,
    /// Application chains.
    Application,
    /// Atoms.
    Atom,
}

fn write_term(f: &mut fmt::Formatter<'_>, t: &Term, level: Level) -> fmt::Result {
    match t {
        Term::Var(x) => write!(f, "{x}"),
        Term::Num(r) => {
            if r.is_negative() && level > Level::Additive {
                write!(f, "({r})")
            } else {
                write!(f, "{r}")
            }
        }
        Term::Sample => write!(f, "sample"),
        Term::Score(m) => {
            write!(f, "score(")?;
            write_term(f, m, Level::Term)?;
            write!(f, ")")
        }
        Term::Lam(x, body) => {
            let parens = level > Level::Term;
            if parens {
                write!(f, "(")?;
            }
            write!(f, "lam {x}. ")?;
            write_term(f, body, Level::Term)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Term::Fix(phi, x, body) => {
            let parens = level > Level::Term;
            if parens {
                write!(f, "(")?;
            }
            write!(f, "fix {phi} {x}. ")?;
            write_term(f, body, Level::Term)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Term::If(g, then, els) => {
            let parens = level > Level::Term;
            if parens {
                write!(f, "(")?;
            }
            write!(f, "if ")?;
            write_term(f, g, Level::Additive)?;
            write!(f, " then ")?;
            write_term(f, then, Level::Term)?;
            write!(f, " else ")?;
            write_term(f, els, Level::Term)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Term::App(fun, arg) => {
            let parens = level > Level::Application;
            if parens {
                write!(f, "(")?;
            }
            write_term(f, fun, Level::Application)?;
            write!(f, " ")?;
            write_term(f, arg, Level::Atom)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Term::Prim(p, args) => match p {
            Prim::Add | Prim::Sub => {
                let parens = level > Level::Additive;
                if parens {
                    write!(f, "(")?;
                }
                write_term(f, &args[0], Level::Additive)?;
                write!(f, " {} ", if *p == Prim::Add { "+" } else { "-" })?;
                write_term(f, &args[1], Level::Multiplicative)?;
                if parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Prim::Mul => {
                let parens = level > Level::Multiplicative;
                if parens {
                    write!(f, "(")?;
                }
                write_term(f, &args[0], Level::Multiplicative)?;
                write!(f, " * ")?;
                write_term(f, &args[1], Level::Application)?;
                if parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            _ => {
                write!(f, "{}(", p.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_term(f, a, Level::Term)?;
                }
                write!(f, ")")
            }
        },
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(f, self, Level::Term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;

    fn roundtrip(src: &str) {
        let term = parse_term(src).expect("initial parse");
        let printed = term.to_string();
        let reparsed = parse_term(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        assert_eq!(term, reparsed, "roundtrip failed for `{src}` -> `{printed}`");
    }

    #[test]
    fn roundtrips_core_constructs() {
        roundtrip("1 + 2 * 3 - 4");
        roundtrip("(fix phi x. if sample <= 0.5 then x else phi (x + 1)) 0");
        roundtrip("(lam x. lam y. x y) (lam z. z)");
        roundtrip("score(sample) + sig(3)");
        roundtrip("let x = sample in x * x");
        roundtrip("flip(1/3, 0, 1)");
        roundtrip("min(1, 2) + max(3, abs(-4))");
        roundtrip("neg(1 + 2)");
    }

    #[test]
    fn negative_numerals_are_parenthesised_in_tight_positions() {
        let t = Term::app(Term::var("f"), Term::int(-1));
        assert_eq!(t.to_string(), "f (-1)");
        let reparsed = parse_term(&t.to_string()).unwrap();
        assert_eq!(reparsed, t);
    }

    #[test]
    fn display_is_stable_for_running_example() {
        let t = parse_term("(fix phi x. if sample <= 0.5 then x else phi (phi (x + 1))) 1").unwrap();
        let printed = t.to_string();
        assert!(printed.contains("fix phi x."));
        assert!(printed.contains("sample - 1/2"));
        assert!(printed.contains("phi (phi (x + 1))"));
    }
}
