//! The environment machine, generic over its value domain.
//!
//! PR 1 replaced the concrete evaluator's whole-term substitution with a
//! CEK-style environment machine ([`crate::machine`]), making each small step
//! O(1) amortized. But the workspace contains *three more* small-step
//! interpreters — stochastic symbolic execution (`intervalsem::symbolic`),
//! the interval-trace reduction (`intervalsem::iterm`) and the AST verifier's
//! symbolic CbV execution (`astver::tree`) — which until now each carried
//! their own term type, capture-avoiding substitution and redex stepper, all
//! quadratic in the run depth for non-affine programs.
//!
//! This module extracts the machine core so that all four semantics share it.
//! The observation is that every one of them interprets the *same* source
//! syntax ([`Term`]) with the *same* focusing discipline (leftmost-outermost
//! under CbN, function-then-argument under CbV) and differs only in
//!
//! 1. the **literal domain** `L` that numerals live in — concrete
//!    [`Rational`]s, symbolic expressions over sample variables `αᵢ`,
//!    intervals `[a, b]`, or the verifier's guard values with the unknown `⊛`;
//! 2. what the **effectful redexes** do: drawing a `sample`, applying a
//!    primitive, branching on a guard, passing a `score`.
//!
//! The machine therefore handles all *structural* work — focusing,
//! environments, closures, continuation frames, β/fix firing, step
//! accounting — and **pauses** at each effectful redex, returning an
//! [`Event`] to the driving semantics, which interprets the effect and
//! resumes the machine ([`Machine::resume_lit`], [`Machine::resume_branch`]).
//! Because a paused machine is [`Clone`] (environments are `Rc`-shared
//! cons-lists, continuations are plain vectors), a driver can *fork* at a
//! branch whose guard is genuinely symbolic: clone the paused machine and
//! resume one copy into each branch. That single capability is what lets
//! symbolic exploration and the verifier's execution-tree construction run on
//! the same machine as concrete evaluation.
//!
//! # Step accounting
//!
//! Exactly the transitions that correspond to reduction rules of the paper
//! count as steps (cf. the table in [`crate::machine`]): β and fix-unrolling
//! fire inside the machine and count immediately; `sample`, primitive,
//! branch, `score` and atom-application redexes count when the driver resumes
//! them. Focusing, value returns and thunk entry are administrative and free,
//! so the machine's [`steps`](Machine::steps) equals the substitution-based
//! reference count `#s↓(M)` for every domain.
//!
//! # Fuel
//!
//! [`Machine::next_event`] refuses to run past `max_steps` counted steps and
//! reports [`Event::OutOfFuel`] instead. Two conventions exist among the
//! pre-existing steppers and both are supported via
//! [`DomainSpec::value_first`]: the concrete reference semantics checks fuel
//! *before* looking at the state (a run needing exactly `max_steps` steps is
//! out of fuel), while the symbolic engines report a reached value first.
//!
//! # Atoms
//!
//! Some domains need values that are neither literals nor closures: the
//! concrete CbV semantics carries free variables of open terms through
//! argument position, and the AST verifier represents the recursive call
//! `φ` as an opaque marker whose application is recorded as a `μ`-node.
//! These are [`Value::Atom`]s; applying one pauses with
//! [`Event::AtomApplied`] so the driver decides what it means.

use crate::ast::{Ident, Prim, Term};
use crate::eval::Strategy;
use probterm_numerics::Rational;
use probterm_telemetry::{EventKind, SharedProfile};
use std::collections::HashMap;
use std::rc::Rc;

/// The (static) behaviour of a value domain: how source numerals embed, how
/// unbound variables and nested fixpoints are treated, and which fuel
/// convention the domain's reference semantics uses.
///
/// Only plain function pointers appear here so that a spec — and hence the
/// machine — stays `Copy`/`Clone` without bounds beyond `L: Clone, A: Clone`.
pub struct DomainSpec<L, A> {
    /// Evaluation strategy (argument thunking vs. argument evaluation).
    pub strategy: Strategy,
    /// Embeds a source numeral into the literal domain (`r ↦ r`,
    /// `r ↦ [r, r]`, `r ↦ Const(r)`, …).
    pub lit_of_num: fn(&Rational) -> L,
    /// Under CbV, an unbound variable reached in *value* position becomes
    /// this atom (the paper treats free variables of open terms as values);
    /// `None` makes every unbound variable a [`Stuck::FreeVariable`].
    pub atom_of_free: Option<fn(&Ident) -> A>,
    /// When `true`, evaluating a `fix` pauses with [`Event::FixEncountered`]
    /// instead of building a closure (the AST verifier abstracts nested
    /// fixpoints as unknown values).
    pub opaque_fix: bool,
    /// When `true`, an exhausted step budget still permits *administrative*
    /// moves, so a state whose readback is already a value reports
    /// [`Event::Done`] rather than [`Event::OutOfFuel`] (the symbolic
    /// engines' convention: they test value-ness before fuel); when `false`
    /// the fuel check gates every transition (the concrete reference
    /// convention: a run needing exactly `max_steps` steps is out of fuel).
    pub value_first: bool,
}

impl<L, A> Clone for DomainSpec<L, A> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<L, A> Copy for DomainSpec<L, A> {}

/// An uninhabited atom type for domains without atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoAtom {}

/// A machine value: a domain literal, a function closure over the source
/// program, or a domain-specific atom.
#[derive(Clone)]
pub enum Value<'a, L: Clone, A: Clone> {
    /// A literal of the domain.
    Lit(L),
    /// A `Lam` or `Fix` node of the source program together with its defining
    /// environment.
    Closure {
        /// The `Term::Lam` or `Term::Fix` node.
        fun: &'a Term,
        /// The captured environment.
        env: Env<'a, L, A>,
    },
    /// A domain-specific atomic value (see [`DomainSpec::atom_of_free`] and
    /// [`Event::AtomApplied`]).
    Atom(A),
}

impl<'a, L: Clone, A: Clone> Value<'a, L, A> {
    /// The literal, if the value is one.
    pub fn as_lit(&self) -> Option<&L> {
        match self {
            Value::Lit(l) => Some(l),
            _ => None,
        }
    }

    /// Consumes the value, returning the literal if it is one.
    pub fn into_lit(self) -> Option<L> {
        match self {
            Value::Lit(l) => Some(l),
            _ => None,
        }
    }
}

/// A persistent environment: a cons-list shared through `Rc`, so extending
/// costs O(1) and closures alias their defining environment.
pub type Env<'a, L, A> = Option<Rc<EnvNode<'a, L, A>>>;

/// One binding frame of an environment chain.
pub struct EnvNode<'a, L: Clone, A: Clone> {
    name: Ident,
    binding: Binding<'a, L, A>,
    next: Env<'a, L, A>,
}

impl<L: Clone, A: Clone> Drop for EnvNode<'_, L, A> {
    /// Environment chains grow linearly with the recursion depth of a run,
    /// and they nest not only through `next` but also through *bindings*:
    /// each recursive unfolding stores the previous environment inside the
    /// `φ` closure. The default recursive drop glue would overflow the stack
    /// tearing down a long truncated run, so unlink with an explicit worklist
    /// that harvests every environment handle a node owns.
    fn drop(&mut self) {
        fn harvest<'a, L: Clone, A: Clone>(
            binding: &mut Binding<'a, L, A>,
            work: &mut Vec<Rc<EnvNode<'a, L, A>>>,
        ) {
            let env = match binding {
                Binding::Thunk { env, .. } => env.take(),
                Binding::Val(Value::Closure { env, .. }) => env.take(),
                Binding::Val(_) => None,
            };
            work.extend(env);
        }
        let mut work: Vec<Rc<EnvNode<'_, L, A>>> = Vec::new();
        harvest(&mut self.binding, &mut work);
        work.extend(self.next.take());
        while let Some(handle) = work.pop() {
            // Sole owner: strip the node's env handles onto the worklist; its
            // own drop then has nothing left to recurse into. A shared handle
            // is kept alive by someone else — leave it alone.
            if let Ok(mut node) = Rc::try_unwrap(handle) {
                harvest(&mut node.binding, &mut work);
                work.extend(node.next.take());
            }
        }
    }
}

#[derive(Clone)]
enum Binding<'a, L: Clone, A: Clone> {
    /// Call-by-name suspension: un-memoised term + captured environment.
    Thunk { term: &'a Term, env: Env<'a, L, A> },
    /// An evaluated value (call-by-value arguments, and `φ` under both
    /// strategies, which is always bound to the recursive closure itself).
    Val(Value<'a, L, A>),
}

fn bind<'a, L: Clone, A: Clone>(
    env: &Env<'a, L, A>,
    name: &Ident,
    binding: Binding<'a, L, A>,
) -> Env<'a, L, A> {
    Some(Rc::new(EnvNode { name: name.clone(), binding, next: env.clone() }))
}

fn lookup<'a, L: Clone, A: Clone>(
    env: &Env<'a, L, A>,
    name: &Ident,
) -> Option<Binding<'a, L, A>> {
    let mut current = env;
    while let Some(node) = current {
        if node.name == *name {
            return Some(node.binding.clone());
        }
        current = &node.next;
    }
    None
}

/// One frame of the continuation (the paper's evaluation context `E`, split
/// into its layers).
#[derive(Clone)]
enum Frame<'a, L: Clone, A: Clone> {
    /// `[·] N` — the argument is pending; under CbN it will be thunked, under
    /// CbV it is evaluated next.
    AppArg { arg: &'a Term, env: Env<'a, L, A> },
    /// `V [·]` — call-by-value only: the function is evaluated, the hole is
    /// the argument.
    AppFun { fun: Value<'a, L, A> },
    /// `if([·], N, P)`.
    If { then: &'a Term, els: &'a Term, env: Env<'a, L, A> },
    /// `score([·])`.
    Score,
    /// `f(l₁, …, [·], M, …)` — evaluated prefix in `done`, the hole is
    /// `args[done.len()]`, the suffix is still un-focused.
    Prim { prim: Prim, args: &'a [Term], done: Vec<L>, env: Env<'a, L, A> },
}

/// The control: either evaluating a source subterm in an environment, or
/// returning a value to the topmost frame.
#[derive(Clone)]
enum Control<'a, L: Clone, A: Clone> {
    Eval { term: &'a Term, env: Env<'a, L, A> },
    Return(Value<'a, L, A>),
}

/// What the machine is paused on, i.e. which `resume_*` call is legal next.
#[derive(Clone)]
enum Pending<'a, L: Clone, A: Clone> {
    None,
    /// Resume with a literal via [`Machine::resume_lit`]; `counted` says
    /// whether doing so fires a reduction rule.
    Lit { counted: bool },
    /// Resume with a side via [`Machine::resume_branch`] (always counted).
    Branch { then: &'a Term, els: &'a Term, env: Env<'a, L, A> },
}

/// Structural stuck states the machine detects on its own; the driving
/// semantics maps them onto its own error vocabulary.
#[derive(Clone)]
pub enum Stuck<'a, L: Clone, A: Clone> {
    /// An unbound variable was focused in use position.
    FreeVariable(Ident),
    /// A closure or atom reached a position requiring a literal (guard of a
    /// decided `if`, `score` operand, primitive argument). The offending
    /// value is carried so drivers can refine the report (the concrete
    /// semantics gives free variables precedence).
    NotANumeral(Value<'a, L, A>),
    /// A literal was applied as a function.
    NotAFunction(L),
}

/// Why [`Machine::next_event`] returned: a final state, a paused effectful
/// redex, or a failure.
pub enum Event<'a, L: Clone, A: Clone> {
    /// The machine reached a value with an empty continuation.
    Done(Value<'a, L, A>),
    /// The step budget is exhausted (see [`DomainSpec::value_first`]).
    OutOfFuel,
    /// The machine is structurally stuck.
    Stuck(Stuck<'a, L, A>),
    /// A `sample` redex: resume with the drawn/abstracted literal (counted).
    Sample,
    /// A primitive has all its arguments: resume with the result literal
    /// (counted). The machine does not evaluate primitives itself — constant
    /// folding vs. postponement vs. interval lifting is the domain's call.
    PrimReady(Prim, Vec<L>),
    /// A literal reached an `if` guard: resume with a side (counted), or
    /// clone the machine and resume each copy into one side to fork.
    BranchReady(L),
    /// A literal reached a `score` redex: resume with the literal to pass it
    /// (counted), or stop if the domain rejects it.
    ScoreReady(L),
    /// An atom was applied to an argument (which is discarded): resume with a
    /// literal standing for the application's result (counted), or stop.
    AtomApplied(A),
    /// A `fix` was focused under [`DomainSpec::opaque_fix`]: resume with the
    /// literal abstracting it (administrative, not counted).
    FixEncountered(&'a Term),
}

impl<'a, L: Clone, A: Clone> Event<'a, L, A> {
    /// The telemetry kind of the event (what a
    /// `probterm_telemetry::ProfileCell` tallies).
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Done(_) => EventKind::Done,
            Event::OutOfFuel => EventKind::OutOfFuel,
            Event::Stuck(_) => EventKind::Stuck,
            Event::Sample => EventKind::Sample,
            Event::PrimReady(_, _) => EventKind::PrimReady,
            Event::BranchReady(_) => EventKind::BranchReady,
            Event::ScoreReady(_) => EventKind::ScoreReady,
            Event::AtomApplied(_) => EventKind::AtomApplied,
            Event::FixEncountered(_) => EventKind::FixEncountered,
        }
    }
}

/// The shared environment machine. See the module docs for the protocol:
/// call [`next_event`](Machine::next_event), interpret the [`Event`], resume.
pub struct Machine<'a, L: Clone, A: Clone> {
    spec: DomainSpec<L, A>,
    /// `Some` between transitions; `None` while paused on an event.
    control: Option<Control<'a, L, A>>,
    stack: Vec<Frame<'a, L, A>>,
    pending: Pending<'a, L, A>,
    steps: usize,
    max_steps: usize,
    /// Shared run profile, `None` (the default) when profiling is off. The
    /// `Rc` is what makes forked machines tally into their parent's cell.
    profile: Option<SharedProfile>,
}

impl<'a, L: Clone, A: Clone> Clone for Machine<'a, L, A> {
    fn clone(&self) -> Self {
        Machine {
            spec: self.spec,
            control: self.control.clone(),
            stack: self.stack.clone(),
            pending: self.pending.clone(),
            steps: self.steps,
            max_steps: self.max_steps,
            profile: self.profile.clone(),
        }
    }
}

impl<'a, L: Clone, A: Clone> Machine<'a, L, A> {
    /// A machine about to evaluate the closed term `term`.
    pub fn new(spec: DomainSpec<L, A>, term: &'a Term, max_steps: usize) -> Machine<'a, L, A> {
        Machine::with_bindings(spec, term, max_steps, Vec::new())
    }

    /// A machine about to evaluate `term` under initial bindings (innermost
    /// binding last) — the AST verifier binds `φ` to a marker atom and the
    /// recursion argument to the unknown literal.
    pub fn with_bindings(
        spec: DomainSpec<L, A>,
        term: &'a Term,
        max_steps: usize,
        bindings: Vec<(Ident, Value<'a, L, A>)>,
    ) -> Machine<'a, L, A> {
        let mut env: Env<'a, L, A> = None;
        for (name, value) in bindings {
            env = bind(&env, &name, Binding::Val(value));
        }
        Machine {
            spec,
            control: Some(Control::Eval { term, env }),
            stack: Vec::new(),
            pending: Pending::None,
            steps: 0,
            max_steps,
            profile: None,
        }
    }

    /// Number of counted reduction steps fired so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Attaches a shared profile cell: from now on every counted step and
    /// every reported event is tallied into it (forked machines inherit the
    /// cell through [`Clone`]). The disabled path is a single `Option`
    /// discriminant test per counted step / event.
    pub fn set_profile(&mut self, profile: SharedProfile) {
        self.profile = Some(profile);
    }

    /// The attached profile cell, if any (drivers use it to tally forks and
    /// frontier depths next to the machine's own step/event tallies).
    pub fn profile(&self) -> Option<&SharedProfile> {
        self.profile.as_ref()
    }

    /// Counts one reduction step, mirroring it into the profile when enabled.
    #[inline]
    fn count_step(&mut self) {
        self.steps += 1;
        if let Some(profile) = &self.profile {
            profile.count_steps(1);
        }
    }

    /// Raises or lowers the step budget (used to thread shared fuel through
    /// forked machines).
    pub fn set_max_steps(&mut self, max_steps: usize) {
        self.max_steps = max_steps;
    }

    /// Runs administrative transitions until the next effectful redex, final
    /// state or failure. Must not be called while an event is un-resumed.
    pub fn next_event(&mut self) -> Event<'a, L, A> {
        let event = self.next_event_inner();
        if let Some(profile) = &self.profile {
            profile.count_event(event.kind());
        }
        event
    }

    /// The transition loop behind [`next_event`](Machine::next_event), kept
    /// separate so the event-kind tally has a single return site to observe.
    fn next_event_inner(&mut self) -> Event<'a, L, A> {
        assert!(
            matches!(self.pending, Pending::None),
            "next_event called on a machine paused on an un-resumed event"
        );
        loop {
            if self.steps >= self.max_steps
                && !(self.spec.value_first && self.transition_is_administrative())
            {
                return Event::OutOfFuel;
            }
            match self.control.take().expect("machine control invariant") {
                Control::Eval { term, env } => {
                    if let Some(event) = self.eval(term, env) {
                        return event;
                    }
                }
                Control::Return(value) => {
                    if let Some(event) = self.apply(value) {
                        return event;
                    }
                }
            }
        }
    }

    /// Resumes a machine paused on [`Event::Sample`], [`Event::PrimReady`],
    /// [`Event::ScoreReady`], [`Event::AtomApplied`] or
    /// [`Event::FixEncountered`] with the literal the redex produced.
    pub fn resume_lit(&mut self, lit: L) {
        match std::mem::replace(&mut self.pending, Pending::None) {
            Pending::Lit { counted } => {
                if counted {
                    self.count_step();
                }
                self.control = Some(Control::Return(Value::Lit(lit)));
            }
            _ => panic!("resume_lit without a pending literal event"),
        }
    }

    /// Resumes a machine paused on [`Event::BranchReady`] into the chosen
    /// side (counted as the conditional rule).
    pub fn resume_branch(&mut self, take_then: bool) {
        match std::mem::replace(&mut self.pending, Pending::None) {
            Pending::Branch { then, els, env } => {
                self.count_step();
                let term = if take_then { then } else { els };
                self.control = Some(Control::Eval { term, env });
            }
            _ => panic!("resume_branch without a pending branch event"),
        }
    }

    /// Whether the next transition is administrative (readback-preserving:
    /// focusing, value formation, thunk entry, finishing) as opposed to a
    /// redex firing, a pause or a stuck report. Used by the `value_first`
    /// fuel convention: the pre-existing symbolic steppers checked
    /// "is the state a value?" *before* "is the budget exhausted?", so at the
    /// fuel boundary administrative progress towards [`Event::Done`] must
    /// stay possible while every redex (and redex-position failure) reports
    /// [`Event::OutOfFuel`], exactly like the substitution-based reference.
    fn transition_is_administrative(&self) -> bool {
        match self.control.as_ref().expect("machine control invariant") {
            Control::Eval { term, env } => match term {
                Term::Num(_) | Term::Lam(_, _) => true,
                Term::Fix(_, _, _) => !self.spec.opaque_fix,
                Term::Var(x) => {
                    lookup(env, x).is_some()
                        || (self.spec.strategy == Strategy::CallByValue
                            && self.spec.atom_of_free.is_some())
                }
                Term::App(_, _) | Term::If(_, _, _) | Term::Score(_) => true,
                Term::Prim(_, args) => !args.is_empty(),
                Term::Sample => false,
            },
            Control::Return(value) => match self.stack.last() {
                // Delivering a final value is allowed at the boundary.
                None => true,
                Some(Frame::AppArg { .. }) => self.spec.strategy == Strategy::CallByValue,
                Some(Frame::AppFun { .. }) | Some(Frame::If { .. }) | Some(Frame::Score) => false,
                Some(Frame::Prim { args, done, .. }) => {
                    matches!(value, Value::Lit(_)) && done.len() + 1 < args.len()
                }
            },
        }
    }

    /// Focus transition: decompose `term` or pause at a leaf redex.
    fn eval(&mut self, term: &'a Term, env: Env<'a, L, A>) -> Option<Event<'a, L, A>> {
        match term {
            Term::Num(r) => {
                self.control = Some(Control::Return(Value::Lit((self.spec.lit_of_num)(r))));
            }
            Term::Fix(_, _, _) if self.spec.opaque_fix => {
                self.pending = Pending::Lit { counted: false };
                return Some(Event::FixEncountered(term));
            }
            Term::Lam(_, _) | Term::Fix(_, _, _) => {
                self.control = Some(Control::Return(Value::Closure { fun: term, env }));
            }
            Term::Var(x) => match lookup(&env, x) {
                Some(Binding::Thunk { term, env }) => {
                    // Entering a thunk is administrative: the readback of the
                    // variable *is* the readback of its thunk.
                    self.control = Some(Control::Eval { term, env });
                }
                Some(Binding::Val(value)) => self.control = Some(Control::Return(value)),
                None => match (self.spec.strategy, self.spec.atom_of_free) {
                    // CbV focuses variables in argument position, where the
                    // reference semantics treats them as values.
                    (Strategy::CallByValue, Some(atom_of_free)) => {
                        self.control = Some(Control::Return(Value::Atom(atom_of_free(x))));
                    }
                    _ => return Some(Event::Stuck(Stuck::FreeVariable(x.clone()))),
                },
            },
            Term::App(fun, arg) => {
                self.stack.push(Frame::AppArg { arg: &**arg, env: env.clone() });
                self.control = Some(Control::Eval { term: &**fun, env });
            }
            Term::If(guard, then, els) => {
                self.stack.push(Frame::If { then: &**then, els: &**els, env: env.clone() });
                self.control = Some(Control::Eval { term: &**guard, env });
            }
            Term::Score(inner) => {
                self.stack.push(Frame::Score);
                self.control = Some(Control::Eval { term: &**inner, env });
            }
            Term::Sample => {
                self.pending = Pending::Lit { counted: true };
                return Some(Event::Sample);
            }
            Term::Prim(prim, args) => match args.first() {
                Some(first) => {
                    self.stack.push(Frame::Prim {
                        prim: *prim,
                        args: args.as_slice(),
                        done: Vec::with_capacity(args.len()),
                        env: env.clone(),
                    });
                    self.control = Some(Control::Eval { term: first, env });
                }
                // Nullary applications cannot be written in the surface
                // syntax; the driver rejects them like the reference does.
                None => {
                    self.pending = Pending::Lit { counted: true };
                    return Some(Event::PrimReady(*prim, Vec::new()));
                }
            },
        }
        None
    }

    /// Return transition: deliver `value` to the topmost frame (or finish).
    fn apply(&mut self, value: Value<'a, L, A>) -> Option<Event<'a, L, A>> {
        let Some(frame) = self.stack.pop() else {
            return Some(Event::Done(value));
        };
        match frame {
            Frame::AppArg { arg, env: arg_env } => match self.spec.strategy {
                Strategy::CallByName => {
                    let binding = Binding::Thunk { term: arg, env: arg_env };
                    self.beta(value, binding)
                }
                Strategy::CallByValue => {
                    self.stack.push(Frame::AppFun { fun: value });
                    self.control = Some(Control::Eval { term: arg, env: arg_env });
                    None
                }
            },
            Frame::AppFun { fun } => self.beta(fun, Binding::Val(value)),
            Frame::If { then, els, env } => match value {
                Value::Lit(guard) => {
                    self.pending = Pending::Branch { then, els, env };
                    Some(Event::BranchReady(guard))
                }
                other => Some(Event::Stuck(Stuck::NotANumeral(other))),
            },
            Frame::Score => match value {
                Value::Lit(l) => {
                    self.pending = Pending::Lit { counted: true };
                    Some(Event::ScoreReady(l))
                }
                other => Some(Event::Stuck(Stuck::NotANumeral(other))),
            },
            Frame::Prim { prim, args, mut done, env } => match value {
                Value::Lit(l) => {
                    done.push(l);
                    if done.len() == args.len() {
                        self.pending = Pending::Lit { counted: true };
                        Some(Event::PrimReady(prim, done))
                    } else {
                        let next = &args[done.len()];
                        self.stack.push(Frame::Prim { prim, args, done, env: env.clone() });
                        self.control = Some(Control::Eval { term: next, env });
                        None
                    }
                }
                other => Some(Event::Stuck(Stuck::NotANumeral(other))),
            },
        }
    }

    /// Applies the function value to the argument binding — the β /
    /// fix-unrolling redexes, the only transitions that extend environments.
    fn beta(
        &mut self,
        fun: Value<'a, L, A>,
        argument: Binding<'a, L, A>,
    ) -> Option<Event<'a, L, A>> {
        match fun {
            Value::Closure { fun: Term::Lam(x, body), env } => {
                self.count_step(); // counted: β
                let env = bind(&env, x, argument);
                self.control = Some(Control::Eval { term: &**body, env });
                None
            }
            Value::Closure { fun: fix @ Term::Fix(phi, x, body), env } => {
                self.count_step(); // counted: fix unrolling
                // Mirrors `body.subst(x, arg).subst(phi, fix)`: the inner
                // substitution (x) shadows the outer one (φ) on name clashes.
                let recursive = Value::Closure { fun: fix, env: env.clone() };
                let env = bind(&env, phi, Binding::Val(recursive));
                let env = bind(&env, x, argument);
                self.control = Some(Control::Eval { term: &**body, env });
                None
            }
            Value::Closure { .. } => unreachable!("closures wrap Lam or Fix nodes only"),
            Value::Lit(l) => Some(Event::Stuck(Stuck::NotAFunction(l))),
            Value::Atom(atom) => {
                self.pending = Pending::Lit { counted: true };
                Some(Event::AtomApplied(atom))
            }
        }
    }

    /// Reads the whole machine state back into the term the reference
    /// semantics would be holding: readback the control, then plug it into
    /// the continuation frames from the innermost outwards. Only meaningful
    /// for domains whose literals and atoms embed back into [`Term`]s (the
    /// concrete machine's `OutOfFuel` residuals); must not be called while
    /// paused on an event.
    pub fn residualize(&self, term_of_lit: fn(&L) -> Term, term_of_atom: fn(&A) -> Term) -> Term {
        assert!(
            matches!(self.pending, Pending::None),
            "residualize called on a machine paused on an un-resumed event"
        );
        let mut readback = Readback::new(term_of_lit, term_of_atom);
        let mut term = match self.control.as_ref().expect("machine control invariant") {
            Control::Eval { term, env } => readback.term(term, env),
            Control::Return(value) => readback.value(value),
        };
        for frame in self.stack.iter().rev() {
            term = match frame {
                Frame::AppArg { arg, env } => Term::app(term, readback.term(arg, env)),
                Frame::AppFun { fun } => Term::app(readback.value(fun), term),
                Frame::If { then, els, env } => {
                    Term::ite(term, readback.term(then, env), readback.term(els, env))
                }
                Frame::Score => Term::score(term),
                Frame::Prim { prim, args, done, env } => {
                    let mut full: Vec<Term> = done.iter().map(term_of_lit).collect();
                    full.push(term);
                    for arg in &args[done.len() + 1..] {
                        full.push(readback.term(arg, env));
                    }
                    Term::Prim(*prim, full)
                }
            };
        }
        term
    }

    /// Converts a machine value back into a source term (see
    /// [`Machine::residualize`]).
    pub fn readback_value(
        value: &Value<'a, L, A>,
        term_of_lit: fn(&L) -> Term,
        term_of_atom: fn(&A) -> Term,
    ) -> Term {
        Readback::new(term_of_lit, term_of_atom).value(value)
    }
}

/// Reads machine structures back into source terms.
///
/// The replacement term of every environment node is computed once (the memo
/// is keyed by the node's address, which is stable because nodes live behind
/// `Rc`), and the dependency walk over the environment DAG is iterative — a
/// call-by-name run that suspends thunk-inside-thunk chains thousands deep
/// (e.g. a truncated `fix phi x. phi x` run) must not overflow the stack.
struct Readback<L, A> {
    memo: HashMap<*const (), Term>,
    term_of_lit: fn(&L) -> Term,
    term_of_atom: fn(&A) -> Term,
}

impl<L: Clone, A: Clone> Readback<L, A> {
    fn new(term_of_lit: fn(&L) -> Term, term_of_atom: fn(&A) -> Term) -> Readback<L, A> {
        Readback { memo: HashMap::new(), term_of_lit, term_of_atom }
    }

    /// Converts a machine value back into a source term.
    fn value(&mut self, value: &Value<'_, L, A>) -> Term {
        match value {
            Value::Lit(l) => (self.term_of_lit)(l),
            Value::Closure { fun, env } => self.term(fun, env),
            Value::Atom(a) => (self.term_of_atom)(a),
        }
    }

    /// Substitutes an environment into a source subterm, innermost bindings
    /// first, recovering the term of the paper's configuration. Only called
    /// when a result is reported, never on the hot path.
    fn term(&mut self, term: &Term, env: &Env<'_, L, A>) -> Term {
        self.resolve(env);
        self.apply(term, env)
    }

    /// Substitutes the (already resolved) replacements of `env` into `term`.
    fn apply(&self, term: &Term, env: &Env<'_, L, A>) -> Term {
        let mut result = term.clone();
        let mut current = env;
        while let Some(node) = current {
            let replacement = &self.memo[&node_key(node)];
            result = result.subst(&node.name, replacement);
            current = &node.next;
        }
        result
    }

    /// Resolves the replacement term of every node reachable from `env`,
    /// dependencies first, without recursion.
    fn resolve(&mut self, env: &Env<'_, L, A>) {
        let mut work: Vec<(&EnvNode<'_, L, A>, bool)> = Vec::new();
        let mut current = env;
        while let Some(node) = current {
            work.push((node, false));
            current = &node.next;
        }
        while let Some((node, dependencies_ready)) = work.pop() {
            if self.memo.contains_key(&node_key(node)) {
                continue;
            }
            let dependency_env = match &node.binding {
                Binding::Thunk { env, .. } => env,
                Binding::Val(Value::Closure { env, .. }) => env,
                Binding::Val(_) => &None,
            };
            if dependencies_ready {
                let replacement = match &node.binding {
                    Binding::Thunk { term, env } => self.apply(term, env),
                    Binding::Val(Value::Lit(l)) => (self.term_of_lit)(l),
                    Binding::Val(Value::Closure { fun, env }) => self.apply(fun, env),
                    Binding::Val(Value::Atom(a)) => (self.term_of_atom)(a),
                };
                self.memo.insert(node_key(node), replacement);
            } else {
                work.push((node, true));
                let mut current = dependency_env;
                while let Some(dependency) = current {
                    if !self.memo.contains_key(&node_key(dependency)) {
                        work.push((dependency, false));
                    }
                    current = &dependency.next;
                }
            }
        }
    }
}

fn node_key<L: Clone, A: Clone>(node: &EnvNode<'_, L, A>) -> *const () {
    node as *const EnvNode<'_, L, A> as *const ()
}
