//! Small-step operational semantics of SPCF.
//!
//! Both evaluation strategies of the paper are implemented:
//!
//! * **call-by-name** (Fig. 2), used for the interval semantics, the lower
//!   bound computation (§3, §7.1) and the intersection type system (§4);
//! * **call-by-value** (Fig. 8), used for the counting-based AST analysis and
//!   the proof system (§5–§6).
//!
//! A configuration is a pair `⟨M, s⟩` of a closed term and a trace; `sample`
//! consumes the head of the trace. Reduction does not enjoy progress: `score`
//! of a negative numeral, primitive functions applied outside their domain,
//! and exhausted traces are all *stuck*.

use crate::ast::{Prim, Term};
use crate::trace::Sampler;
use probterm_numerics::Rational;
use std::fmt;

/// The evaluation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Call-by-name (paper Fig. 2).
    CallByName,
    /// Call-by-value (paper Fig. 8).
    CallByValue,
}

/// Why a configuration could not make a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StuckReason {
    /// `sample` was evaluated but the trace/sampler was exhausted.
    TraceExhausted,
    /// `score(r)` with `r < 0`.
    NegativeScore(Rational),
    /// A primitive was applied outside its domain (e.g. `log(0)`).
    PrimDomain(Prim),
    /// A guard, score argument or primitive argument evaluated to a
    /// non-numeral value (only possible for ill-typed or open terms).
    NotANumeral,
    /// A non-function value was applied.
    NotAFunction,
    /// A free variable was reached.
    FreeVariable(String),
}

impl fmt::Display for StuckReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckReason::TraceExhausted => write!(f, "trace exhausted at a sample redex"),
            StuckReason::NegativeScore(r) => write!(f, "score of negative value {r}"),
            StuckReason::PrimDomain(p) => write!(f, "primitive `{p}` applied outside its domain"),
            StuckReason::NotANumeral => write!(f, "expected a numeral value"),
            StuckReason::NotAFunction => write!(f, "applied a non-function value"),
            StuckReason::FreeVariable(x) => write!(f, "free variable `{x}` reached"),
        }
    }
}

/// Result of attempting one small step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// The configuration stepped to a new term.
    Reduced(Term),
    /// The term is a value: no step is possible and none is needed.
    Value,
    /// The configuration is stuck.
    Stuck(StuckReason),
}

/// One frame of an evaluation context (the paper's `E`), used to decompose a
/// term as `E[R]` without recursion so that arbitrarily deep terms (e.g. long
/// chains of pending recursive calls) can be stepped on a bounded stack.
enum Frame {
    /// `[·] N` — hole in function position, argument stored.
    AppFun(Term),
    /// `V [·]` — hole in argument position (call-by-value only), function value stored.
    AppArg(Term),
    /// `if([·], N, P)`.
    If(Term, Term),
    /// `score([·])`.
    Score,
    /// `f(r₁, …, r_{k-1}, [·], M_{k+1}, …)` — evaluated prefix and pending suffix stored.
    Prim(Prim, Vec<Term>, Vec<Term>),
}

fn plug(frames: Vec<Frame>, mut term: Term) -> Term {
    for frame in frames.into_iter().rev() {
        term = match frame {
            Frame::AppFun(arg) => Term::App(Box::new(term), Box::new(arg)),
            Frame::AppArg(fun) => Term::App(Box::new(fun), Box::new(term)),
            Frame::If(then, els) => Term::If(Box::new(term), Box::new(then), Box::new(els)),
            Frame::Score => Term::Score(Box::new(term)),
            Frame::Prim(p, mut prefix, suffix) => {
                prefix.push(term);
                prefix.extend(suffix);
                Term::Prim(p, prefix)
            }
        };
    }
    term
}

fn stuck_value(value: &Term, otherwise: StuckReason) -> Step {
    match value {
        Term::Var(x) => Step::Stuck(StuckReason::FreeVariable(x.to_string())),
        _ => Step::Stuck(otherwise),
    }
}

/// Performs one small step of `term` under `strategy`, drawing samples from
/// `sampler` when a `sample` redex is reduced.
///
/// The implementation decomposes the term into an evaluation context and a
/// redex iteratively (using an explicit [`Frame`] stack), reduces the redex,
/// and plugs the result back in, so it never recurses over the depth of the
/// term.
pub fn step(strategy: Strategy, term: &Term, sampler: &mut dyn Sampler) -> Step {
    if term.is_value() {
        return match term {
            Term::Var(x) => Step::Stuck(StuckReason::FreeVariable(x.to_string())),
            _ => Step::Value,
        };
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut current: Term = term.clone();
    loop {
        // Invariant: `current` is not a value (values are never pushed as the focus).
        match current {
            Term::App(fun, arg) => match strategy {
                Strategy::CallByName => match *fun {
                    Term::Lam(ref x, ref body) => {
                        return Step::Reduced(plug(frames, body.subst(x, &arg)));
                    }
                    Term::Fix(ref phi, ref x, ref body) => {
                        let unrolled = body.subst(x, &arg).subst(phi, &fun);
                        return Step::Reduced(plug(frames, unrolled));
                    }
                    ref f if f.is_value() => return stuck_value(f, StuckReason::NotAFunction),
                    _ => {
                        frames.push(Frame::AppFun(*arg));
                        current = *fun;
                    }
                },
                Strategy::CallByValue => {
                    if !fun.is_value() {
                        frames.push(Frame::AppFun(*arg));
                        current = *fun;
                    } else if !arg.is_value() {
                        frames.push(Frame::AppArg(*fun));
                        current = *arg;
                    } else {
                        match *fun {
                            Term::Lam(ref x, ref body) => {
                                return Step::Reduced(plug(frames, body.subst(x, &arg)));
                            }
                            Term::Fix(ref phi, ref x, ref body) => {
                                let unrolled = body.subst(x, &arg).subst(phi, &fun);
                                return Step::Reduced(plug(frames, unrolled));
                            }
                            ref f => return stuck_value(f, StuckReason::NotAFunction),
                        }
                    }
                }
            },
            Term::If(guard, then, els) => match *guard {
                Term::Num(ref r) => {
                    let taken = if r.is_positive() { *els } else { *then };
                    return Step::Reduced(plug(frames, taken));
                }
                ref g if g.is_value() => return stuck_value(g, StuckReason::NotANumeral),
                _ => {
                    frames.push(Frame::If(*then, *els));
                    current = *guard;
                }
            },
            Term::Score(inner) => match *inner {
                Term::Num(r) => {
                    if r.is_negative() {
                        return Step::Stuck(StuckReason::NegativeScore(r));
                    }
                    return Step::Reduced(plug(frames, Term::Num(r)));
                }
                ref m if m.is_value() => return stuck_value(m, StuckReason::NotANumeral),
                _ => {
                    frames.push(Frame::Score);
                    current = *inner;
                }
            },
            Term::Sample => {
                return match sampler.next_sample() {
                    Some(r) => Step::Reduced(plug(frames, Term::Num(r))),
                    None => Step::Stuck(StuckReason::TraceExhausted),
                };
            }
            Term::Prim(p, mut args) => {
                // Evaluation contexts require all arguments left of the hole to
                // be numerals; find the first non-numeral argument.
                match args.iter().position(|a| a.as_num().is_none()) {
                    None => {
                        let values: Vec<Rational> = args
                            .iter()
                            .map(|a| a.as_num().expect("all numerals").clone())
                            .collect();
                        return match p.eval(&values) {
                            Some(result) => Step::Reduced(plug(frames, Term::Num(result))),
                            None => Step::Stuck(StuckReason::PrimDomain(p)),
                        };
                    }
                    Some(i) if args[i].is_value() => {
                        return stuck_value(&args[i], StuckReason::NotANumeral);
                    }
                    Some(i) => {
                        let suffix = args.split_off(i + 1);
                        let focus = args.pop().expect("argument at position i");
                        frames.push(Frame::Prim(p, args, suffix));
                        current = focus;
                    }
                }
            }
            Term::Var(_) | Term::Num(_) | Term::Lam(_, _) | Term::Fix(_, _, _) => {
                unreachable!("values are never the focus of the decomposition loop")
            }
        }
    }
}

/// The final outcome of running a configuration to completion (or exhaustion).
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Evaluation reached a value.
    Terminated(Term),
    /// Evaluation got stuck.
    Stuck(StuckReason),
    /// The step budget was exhausted before reaching a value.
    OutOfFuel(Term),
}

impl Outcome {
    /// Returns `true` if the run terminated at a value.
    pub fn is_terminated(&self) -> bool {
        matches!(self, Outcome::Terminated(_))
    }
}

/// A completed (or truncated) evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// Final outcome.
    pub outcome: Outcome,
    /// Number of small steps performed (the quantity `#s↓(M)` of §2.4).
    pub steps: usize,
    /// Number of samples consumed.
    pub samples: usize,
}

/// Runs `term` under `strategy` for at most `max_steps` small steps.
///
/// Since the environment machine landed ([`crate::machine`]), this delegates
/// to [`crate::run_machine`], which performs the same reduction sequence with
/// O(1)-amortized steps instead of re-substituting the whole term each step.
/// The substitution-based loop survives as [`run_substitution`], the
/// executable reference semantics the machine is differentially tested
/// against.
///
/// # Examples
///
/// ```
/// use probterm_spcf::{parse_term, run, FixedTrace, Strategy};
///
/// let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
/// // The trace [0.7, 0.2]: the first sample fails the test, the second succeeds.
/// let mut trace = FixedTrace::from_ratios(&[(7, 10), (1, 5)]);
/// let result = run(Strategy::CallByName, &geo, &mut trace, 1_000);
/// assert!(result.outcome.is_terminated());
/// assert_eq!(result.samples, 2);
/// ```
pub fn run(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    max_steps: usize,
) -> Run {
    crate::machine::run_machine(strategy, term, sampler, max_steps)
}

/// Runs `term` by literal substitution-based small steps — the executable
/// form of the paper's reduction relation (Fig. 2 / Fig. 8), `O(|term|)` per
/// step.
///
/// This is the reference every faster evaluator is checked against; use
/// [`run`] (the environment machine) for anything performance-sensitive.
/// Outcome, step count and sample count agree exactly with [`run`].
pub fn run_substitution(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    max_steps: usize,
) -> Run {
    let mut current = term.clone();
    let mut steps = 0usize;
    let mut samples = 0usize;
    loop {
        if steps >= max_steps {
            return Run {
                outcome: Outcome::OutOfFuel(current),
                steps,
                samples,
            };
        }
        let consumed_before = samples;
        let mut counting = CountingSampler {
            inner: sampler,
            count: consumed_before,
        };
        match step(strategy, &current, &mut counting) {
            Step::Reduced(next) => {
                samples = counting.count;
                current = next;
                steps += 1;
            }
            Step::Value => {
                return Run {
                    outcome: Outcome::Terminated(current),
                    steps,
                    samples,
                };
            }
            Step::Stuck(reason) => {
                return Run {
                    outcome: Outcome::Stuck(reason),
                    steps,
                    samples,
                };
            }
        }
    }
}

struct CountingSampler<'a> {
    inner: &'a mut dyn Sampler,
    count: usize,
}

impl Sampler for CountingSampler<'_> {
    fn next_sample(&mut self) -> Option<Rational> {
        let v = self.inner.next_sample();
        if v.is_some() {
            self.count += 1;
        }
        v
    }
}

/// Runs a term on a fixed trace and additionally checks the paper's
/// termination judgement `⟨M, s⟩ →* ⟨V, ε⟩`, which requires the trace to be
/// consumed *exactly*.
pub fn terminates_on_trace(
    strategy: Strategy,
    term: &Term,
    trace: crate::trace::FixedTrace,
    max_steps: usize,
) -> Option<Run> {
    let mut trace = trace;
    let result = run(strategy, term, &mut trace, max_steps);
    match result.outcome {
        Outcome::Terminated(_) if trace.is_exhausted() => Some(result),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;
    use crate::trace::FixedTrace;

    fn cbn(src: &str, ratios: &[(i64, i64)]) -> Run {
        let term = parse_term(src).unwrap();
        let mut trace = FixedTrace::from_ratios(ratios);
        run(Strategy::CallByName, &term, &mut trace, 10_000)
    }

    fn cbv(src: &str, ratios: &[(i64, i64)]) -> Run {
        let term = parse_term(src).unwrap();
        let mut trace = FixedTrace::from_ratios(ratios);
        run(Strategy::CallByValue, &term, &mut trace, 10_000)
    }

    fn expect_value(r: &Run) -> &Term {
        match &r.outcome {
            Outcome::Terminated(v) => v,
            other => panic!("expected termination, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_reduces_deterministically() {
        let r = cbn("1 + 2 * 3", &[]);
        assert_eq!(expect_value(&r), &Term::int(7));
        assert_eq!(r.samples, 0);
        let r = cbn("abs(-3) + min(2, 5) + max(0, exp(0))", &[]);
        assert_eq!(expect_value(&r), &Term::int(6));
    }

    #[test]
    fn beta_reduction_cbn_vs_cbv_sample_duplication() {
        // Under CbN the unevaluated `sample` is duplicated and draws twice;
        // under CbV it is drawn once and the value is duplicated.
        let src = "(lam x. x + x) sample";
        let r = cbn(src, &[(1, 4), (1, 2)]);
        assert_eq!(expect_value(&r), &Term::ratio(3, 4));
        assert_eq!(r.samples, 2);
        let r = cbv(src, &[(1, 4)]);
        assert_eq!(expect_value(&r), &Term::ratio(1, 2));
        assert_eq!(r.samples, 1);
    }

    #[test]
    fn conditionals_branch_on_nonpositivity() {
        let r = cbn("if 0 then 10 else 20", &[]);
        assert_eq!(expect_value(&r), &Term::int(10));
        let r = cbn("if 0.001 then 10 else 20", &[]);
        assert_eq!(expect_value(&r), &Term::int(20));
        let r = cbn("if 1 <= 2 then 10 else 20", &[]);
        assert_eq!(expect_value(&r), &Term::int(10));
    }

    #[test]
    fn geometric_example_counts_days() {
        // Paper Ex. 1.1 program (1): result is the day on which printing succeeds.
        let src = "(fix phi x. if sample <= 0.5 then x else phi (x + 1)) 1";
        let r = cbn(src, &[(9, 10), (8, 10), (1, 10)]);
        assert_eq!(expect_value(&r), &Term::int(3));
        assert_eq!(r.samples, 3);
        // CbV gives the same result here.
        let r = cbv(src, &[(9, 10), (8, 10), (1, 10)]);
        assert_eq!(expect_value(&r), &Term::int(3));
    }

    #[test]
    fn nonaffine_example_makes_two_recursive_calls() {
        // Paper Ex. 1.1 program (2) with p = 1/2 under CbV: a failure at the first
        // attempt spawns two pending jobs.
        let src = "(fix phi x. if sample <= 0.5 then x else phi (phi (x + 1))) 1";
        // First sample fails (> 1/2), then both spawned jobs succeed immediately.
        let r = cbv(src, &[(3, 4), (1, 4), (1, 4)]);
        assert_eq!(expect_value(&r), &Term::int(2));
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn stuck_configurations_are_reported() {
        let r = cbn("score(0 - 1)", &[]);
        assert!(matches!(r.outcome, Outcome::Stuck(StuckReason::NegativeScore(_))));
        let r = cbn("sample", &[]);
        assert!(matches!(r.outcome, Outcome::Stuck(StuckReason::TraceExhausted)));
        let r = cbn("log(0)", &[]);
        assert!(matches!(r.outcome, Outcome::Stuck(StuckReason::PrimDomain(Prim::Log))));
        let r = cbn("1 2", &[]);
        assert!(matches!(r.outcome, Outcome::Stuck(StuckReason::NotAFunction)));
        let r = cbn("x + 1", &[]);
        assert!(matches!(r.outcome, Outcome::Stuck(StuckReason::FreeVariable(_))));
    }

    #[test]
    fn divergent_terms_run_out_of_fuel() {
        let src = "(fix phi x. phi x) 0";
        let term = parse_term(src).unwrap();
        let mut trace = FixedTrace::new(vec![]);
        let r = run(Strategy::CallByName, &term, &mut trace, 100);
        assert!(matches!(r.outcome, Outcome::OutOfFuel(_)));
        assert_eq!(r.steps, 100);
    }

    #[test]
    fn score_passes_through_nonnegative_values() {
        let r = cbn("score(0.25) + 1", &[]);
        assert_eq!(expect_value(&r), &Term::ratio(5, 4));
    }

    #[test]
    fn termination_judgement_requires_exact_trace_consumption() {
        let term = parse_term("if sample <= 0.5 then 0 else 1").unwrap();
        // Exactly one sample: accepted.
        assert!(terminates_on_trace(
            Strategy::CallByName,
            &term,
            FixedTrace::from_ratios(&[(1, 4)]),
            100
        )
        .is_some());
        // A longer trace is rejected (leftover samples).
        assert!(terminates_on_trace(
            Strategy::CallByName,
            &term,
            FixedTrace::from_ratios(&[(1, 4), (1, 4)]),
            100
        )
        .is_none());
        // An empty trace is rejected (stuck).
        assert!(terminates_on_trace(
            Strategy::CallByName,
            &term,
            FixedTrace::new(vec![]),
            100
        )
        .is_none());
    }

    #[test]
    fn step_counts_match_between_runs_with_same_branching() {
        // Fixing the branching fixes the number of steps (used implicitly by
        // the conditional-oracle argument in App. B.4).
        let src = "(fix phi x. if sample <= 0.5 then x else phi (x + 1)) 0";
        let r1 = cbn(src, &[(6, 10), (1, 10)]);
        let r2 = cbn(src, &[(8, 10), (2, 10)]);
        assert_eq!(r1.steps, r2.steps);
        assert_eq!(expect_value(&r1), expect_value(&r2));
    }
}
