//! The benchmark-term catalogue.
//!
//! Every SPCF term used in the paper's evaluation (§7, Tables 1 and 2) plus
//! the worked examples from §1.1, §3 and §5 is defined here once, so that the
//! lower-bound engine, the AST verifier, the examples, the tests and the
//! benchmark harness all agree on the programs being analysed.

use crate::ast::Term;
use crate::parser::parse_term;
use probterm_numerics::Rational;

/// A named benchmark program together with reference information.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name used in tables (e.g. `geo(1/2)`).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The program itself.
    pub term: Term,
    /// The true probability of termination, when known in closed form.
    pub expected_pterm: Option<f64>,
    /// Whether the program is almost-surely terminating (when known).
    pub expected_ast: Option<bool>,
}

fn parse(name: &str, src: &str) -> Term {
    parse_term(src).unwrap_or_else(|e| panic!("catalogue term `{name}` failed to parse: {e}"))
}

fn rational_str(p: &Rational) -> String {
    p.to_string()
}

/// The geometric program `geo_p` (paper Table 1): repeatedly retry until a
/// sample falls below `p`, counting the attempts.
pub fn geometric(p: Rational) -> Benchmark {
    let src = format!(
        "(fix phi x. if sample <= {} then x else phi (x + 1)) 0",
        rational_str(&p)
    );
    Benchmark {
        name: format!("geo({})", p),
        description: "geometric distribution: retry until a uniform sample falls below p".into(),
        term: parse("geo", &src),
        expected_pterm: if p.is_positive() { Some(1.0) } else { Some(0.0) },
        expected_ast: Some(p.is_positive()),
    }
}

/// The biased one-dimensional random walk `1dRW_{p,s}` (paper Table 1, after
/// [McIver et al. 2018]): from position `x > 0`, step down with probability `p`
/// and up with probability `1 - p`; terminate at `0`.
pub fn random_walk_1d(p: Rational, start: i64) -> Benchmark {
    let src = format!(
        "(fix phi x. if x <= 0 then x else flip({}, phi (x - 1), phi (x + 1))) {}",
        rational_str(&p),
        start
    );
    let ast = p >= Rational::from_ratio(1, 2);
    Benchmark {
        name: format!("1dRW({},{})", p, start),
        description: "biased random walk on the naturals, absorbed at zero".into(),
        term: parse("1dRW", &src),
        expected_pterm: if ast { Some(1.0) } else { None },
        expected_ast: Some(ast),
    }
}

/// The golden-ratio program `gr` (paper Table 1, after [Olmedo et al. 2016]):
/// terminates with probability `(√5 − 1)/2`.
pub fn golden_ratio() -> Benchmark {
    let src = "(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0";
    Benchmark {
        name: "gr".into(),
        description: "three recursive calls with probability 1/2; Pterm is the inverse golden ratio"
            .into(),
        term: parse("gr", src),
        expected_pterm: Some((5f64.sqrt() - 1.0) / 2.0),
        expected_ast: Some(false),
    }
}

/// Paper Example 1.1, program (1): the affine 3D-printer model. AST for every
/// `p > 0`.
pub fn printer_affine(p: Rational) -> Benchmark {
    let src = format!(
        "(fix phi x. if sample <= {} then x else phi (x + 1)) 1",
        rational_str(&p)
    );
    Benchmark {
        name: format!("Ex1.1(1) p={}", p),
        description: "unreliable 3D printer, one reprint per failure (affine recursion)".into(),
        term: parse("printer_affine", &src),
        expected_pterm: if p.is_positive() { Some(1.0) } else { Some(0.0) },
        expected_ast: Some(p.is_positive()),
    }
}

/// Paper Example 1.1, program (2): the non-affine printer that prints an
/// additional copy on every failure. AST iff `p ≥ 1/2`; for `p < 1/2` the
/// termination probability is `p / (1 - p)`.
pub fn printer_nonaffine(p: Rational) -> Benchmark {
    let src = format!(
        "(fix phi x. if sample <= {} then x else phi (phi (x + 1))) 1",
        rational_str(&p)
    );
    let ast = p >= Rational::from_ratio(1, 2);
    let pterm = if ast {
        1.0
    } else {
        let pf = p.to_f64();
        pf / (1.0 - pf)
    };
    Benchmark {
        name: format!("Ex1.1(2) p={}", p),
        description: "unreliable 3D printer with an extra copy per failure (two call sites)".into(),
        term: parse("printer_nonaffine", &src),
        expected_pterm: Some(pterm),
        expected_ast: Some(ast),
    }
}

/// The `3print_p` program (paper Table 1/2): three recursive call sites per
/// failure. AST iff the fixpoint of `q = p + (1-p) q³` at 1 is reached, i.e.
/// iff `p ≥ 2/3`... more precisely AST iff `(1-p)·3 ≤ 1` fails in general; the
/// exact criterion from the random-walk reduction is `3(1-p) ≤ 1 + 2p`, i.e.
/// the mean of the shifted counting distribution is non-positive: `p ≥ 1/2`
/// does *not* suffice — the threshold is `p ≥ 2/3` by Thm. 5.4
/// (`E[shift] = 3(1-p) - 1 ≤ 0 ⟺ p ≥ 2/3`).
pub fn three_print(p: Rational) -> Benchmark {
    let src = format!(
        "(fix phi x. if sample <= {} then x else phi (phi (phi (x + 1)))) 1",
        rational_str(&p)
    );
    let ast = p >= Rational::from_ratio(2, 3);
    let pterm = if ast {
        Some(1.0)
    } else {
        // Pterm is the least fixpoint of q = p + (1-p) q³ in [0, 1].
        let pf = p.to_f64();
        let mut q = 0.0f64;
        for _ in 0..10_000 {
            q = pf + (1.0 - pf) * q * q * q;
        }
        Some(q)
    };
    Benchmark {
        name: format!("3print({})", p),
        description: "printer variant spawning three reprints per failure (three call sites)".into(),
        term: parse("three_print", &src),
        expected_pterm: pterm,
        expected_ast: Some(ast),
    }
}

/// The one-directional random walk `bin_{p,s}` (paper Table 1): from `x > 0`
/// move down with probability `p`, otherwise stay. AST for every `p > 0`.
pub fn one_directional_walk(p: Rational, start: i64) -> Benchmark {
    let src = format!(
        "(fix phi x. if x <= 0 then 0 else flip({}, phi (x - 1), phi x)) {}",
        rational_str(&p),
        start
    );
    Benchmark {
        name: format!("bin({},{})", p, start),
        description: "one-directional random walk: step down with probability p, else stay".into(),
        term: parse("bin", &src),
        expected_pterm: Some(if p.is_positive() { 1.0 } else { 0.0 }),
        expected_ast: Some(p.is_positive()),
    }
}

/// A pedestrian model inspired by [Mak et al. 2021] (paper Table 1): a
/// pedestrian is lost a uniformly random distance from home and repeatedly
/// walks a uniformly random step towards or away from it, accumulating the
/// distance walked; the program returns the total distance.
pub fn pedestrian() -> Benchmark {
    let src = "(fix phi x. lam d. \
                   if x <= 0 then d \
                   else flip(1/2, phi (x - sample) (d + 1), phi (x + sample) (d + 1))) \
               (3 * sample) 0";
    Benchmark {
        name: "pedestrian".into(),
        description: "random-walking pedestrian accumulating distance until reaching home".into(),
        term: parse("pedestrian", src),
        expected_pterm: Some(1.0),
        expected_ast: Some(true),
    }
}

/// Paper Example 3.5: terminates iff the sum of two samples is at most one —
/// a terminating-trace set that is *not* a countable union of boxes, yet the
/// interval semantics is complete for it.
pub fn triangle_example() -> Benchmark {
    let src = "(fix phi x. if sample + sample - 1 then x else phi x) 0";
    Benchmark {
        name: "Ex3.5".into(),
        description: "terminating traces form the triangle r1 + r2 <= 1 (completeness witness)"
            .into(),
        term: parse("triangle", src),
        expected_pterm: Some(1.0),
        expected_ast: Some(true),
    }
}

/// Paper Example 5.1: the tired-operator printer, where the probability of
/// printing three copies instead of two grows (via the sigmoid) with the day
/// count. AST for `p ≥ 3/5` by Thm. 5.9 / Lem. 5.10.
pub fn tired_printer(p: Rational) -> Benchmark {
    let src = format!(
        "(fix phi x. flip({p}, x, \
             flip(sig(x), \
                  flip(1/2, phi (phi (phi (x + 1))), phi (phi (x + 1))), \
                  phi (phi (x + 1))))) 1",
        p = rational_str(&p)
    );
    Benchmark {
        name: format!("Ex5.1 p={}", p),
        description: "printer with argument-dependent (sigmoid) mistake probability".into(),
        term: parse("tired_printer", &src),
        expected_pterm: if p >= Rational::from_ratio(3, 5) { Some(1.0) } else { None },
        expected_ast: if p >= Rational::from_ratio(3, 5) { Some(true) } else { None },
    }
}

/// Paper Example 5.15: the printer variant that *reuses the sampled error
/// value* both in the acceptance test and as the probability of the second
/// branching. AST for `p ≥ √7 − 2 ≈ 0.6458`.
pub fn error_reuse_printer(p: Rational) -> Benchmark {
    let src = format!(
        "(fix phi x. let e = sample in \
            if e <= {p} then x \
            else (if sample <= sig(x) \
                  then (if sample <= e \
                        then phi (phi (phi (x + 1))) \
                        else phi (phi (x + 1))) \
                  else phi (phi (x + 1)))) 1",
        p = rational_str(&p)
    );
    let threshold = 7f64.sqrt() - 2.0;
    let pf = p.to_f64();
    Benchmark {
        name: format!("Ex5.15 p={}", p),
        description: "printer reusing a continuous sample as a first-class branching probability"
            .into(),
        term: parse("error_reuse_printer", &src),
        expected_pterm: if pf >= threshold + 1e-9 { Some(1.0) } else { None },
        expected_ast: if pf >= threshold + 1e-9 { Some(true) } else { None },
    }
}

/// All rows of the paper's Table 1 (lower-bound computation benchmarks).
pub fn table1_benchmarks() -> Vec<Benchmark> {
    vec![
        geometric(Rational::from_ratio(1, 2)),
        geometric(Rational::from_ratio(1, 5)),
        random_walk_1d(Rational::from_ratio(1, 2), 1),
        random_walk_1d(Rational::from_ratio(7, 10), 1),
        golden_ratio(),
        printer_nonaffine(Rational::from_ratio(1, 2)),
        printer_nonaffine(Rational::from_ratio(1, 4)),
        three_print(Rational::from_ratio(3, 4)),
        one_directional_walk(Rational::from_ratio(1, 2), 2),
        pedestrian(),
    ]
}

/// All rows of the paper's Table 2 (AST-verification benchmarks).
pub fn table2_benchmarks() -> Vec<Benchmark> {
    vec![
        printer_affine(Rational::from_ratio(1, 2)),
        printer_nonaffine(Rational::from_ratio(1, 2)),
        three_print(Rational::from_ratio(2, 3)),
        tired_printer(Rational::parse("0.6").unwrap()),
        error_reuse_printer(Rational::parse("0.65").unwrap()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Strategy;
    use crate::montecarlo::{estimate_termination, MonteCarloConfig};
    use crate::types::{infer_type, SimpleType};

    #[test]
    fn all_catalogue_terms_are_closed_and_typed() {
        let mut all = table1_benchmarks();
        all.extend(table2_benchmarks());
        all.push(triangle_example());
        for b in &all {
            assert!(b.term.is_closed(), "{} is not closed", b.name);
            let ty = infer_type(&b.term)
                .unwrap_or_else(|e| panic!("{} is ill-typed: {e}", b.name));
            assert_eq!(ty, SimpleType::Real, "{} has type {}", b.name, ty);
        }
    }

    #[test]
    fn table_sizes_match_the_paper() {
        assert_eq!(table1_benchmarks().len(), 10);
        assert_eq!(table2_benchmarks().len(), 5);
    }

    #[test]
    fn monte_carlo_agrees_with_expected_probabilities() {
        // Spot-check a few closed-form termination probabilities (cheap runs).
        let config = MonteCarloConfig {
            runs: 1_200,
            // Estimates are unchanged down from 8 000 steps; divergent runs
            // dominate the cost and always burn the whole budget.
            max_steps: 1_500,
            seed: 99,
            strategy: Strategy::CallByValue,
        };
        for b in [
            printer_nonaffine(Rational::from_ratio(1, 4)),
            golden_ratio(),
            geometric(Rational::from_ratio(1, 5)),
            three_print(Rational::from_ratio(1, 2)),
        ] {
            let expected = b.expected_pterm.unwrap();
            let estimate = estimate_termination(&b.term, &config).probability();
            assert!(
                (estimate - expected).abs() < 0.06,
                "{}: expected {expected}, estimated {estimate}",
                b.name
            );
        }
    }

    #[test]
    fn pedestrian_and_walks_terminate_in_simulation() {
        let config = MonteCarloConfig {
            runs: 200,
            // The pedestrian's fair continuous walk has a heavy hitting-time
            // tail (P[T > n] ~ n^{-1/2}), so this budget cannot drop to the
            // ~1 500 the other suites use without biasing the estimate; at
            // 20 000 steps the truncated mass is ≈2% against a 0.9 threshold.
            max_steps: 20_000,
            seed: 3,
            strategy: Strategy::CallByValue,
        };
        for b in [
            pedestrian(),
            random_walk_1d(Rational::from_ratio(7, 10), 1),
            one_directional_walk(Rational::from_ratio(1, 2), 2),
        ] {
            let estimate = estimate_termination(&b.term, &config);
            assert!(
                estimate.probability() > 0.9,
                "{} estimated only {}",
                b.name,
                estimate.probability()
            );
        }
    }
}
