//! Environment-based abstract machine for SPCF: O(1)-amortized small steps.
//!
//! # Why a machine
//!
//! The reference semantics in [`crate::eval`] implements the paper's
//! reduction relation literally: every small step clones the whole term,
//! substitutes, and plugs the evaluation context back together, so a run of
//! `n` steps costs `O(n · |term|)` — and for non-affine terms (whose pending
//! recursive calls make the term grow linearly with the step count) a
//! truncated run costs `O(n²)`. This module replaces textual substitution
//! with the standard environment/closure technique (a CEK-style machine):
//! configurations carry a *control* (a pointer into the original term plus an
//! environment), an *environment* (a persistent cons-list of bindings shared
//! via `Rc`), and a *continuation* (a stack of evaluation-context frames).
//! No term is ever cloned or rebuilt on the hot path, so each transition is
//! O(1) amortized (variable lookup walks the lexical environment, whose depth
//! is bounded by the binder nesting of the source program, not by the run).
//!
//! The machine core itself lives in [`crate::absmachine`], generic over the
//! literal domain, and is shared with the symbolic-exploration, interval and
//! AST-verification engines; this module instantiates it at concrete
//! [`Rational`] samples and drives it against a [`Sampler`].
//!
//! # Correspondence with the paper's configurations `⟨M, s⟩`
//!
//! The trace semantics (paper §2.3, Def. 2.1) reduces configurations
//! `⟨M, s⟩` of a closed term and a trace. A machine state
//! `⟨C, E, K⟩ × sampler` represents `⟨M, s⟩` as follows:
//!
//! * the term `M` is recovered by *readback*: substitute the environment `E`
//!   into the control `C` (innermost bindings first) and plug the result into
//!   the continuation frames `K` from top to bottom;
//! * the trace `s` is exactly the unconsumed suffix of the sampler.
//!
//! Readback is invariant under the machine's administrative moves and is only
//! materialised when a result must be reported (termination value, stuck
//! configuration, or fuel exhaustion), so it costs one `O(|term|)` pass per
//! *run* instead of per *step*.
//!
//! # Step accounting
//!
//! Machine transitions split into *administrative* moves (focusing into a
//! subterm, returning a value to a frame, entering a thunk) and *redex
//! firings*. Only the latter increment `steps`, and they correspond 1:1 to
//! the paper's reduction rules, so the reported count equals the reference
//! stepper's `#s↓(M)` (§2.4) exactly:
//!
//! | counted transition | paper rule (Fig. 2 / Fig. 8) |
//! |---|---|
//! | β-apply a `λ` closure | `(λx. M) N → M[N/x]` |
//! | unroll a `μ` closure | `(μφ x. M) N → M[N/x][μφ x. M/φ]` |
//! | branch on a numeral | `if(r, N, P) → N` or `P` |
//! | draw a sample | `⟨sample, r·s⟩ → ⟨r, s⟩` |
//! | pass a non-negative score | `score(r) → r` |
//! | evaluate a primitive | `f(r₁, …, r_k) → f(r₁, …, r_k)` |
//!
//! `samples` counts exactly the draws the sampler served, as in the
//! reference semantics, so [`run_machine`] is a drop-in replacement for the
//! substitution-based `run` (and is what [`crate::run`] now calls). The
//! reference stepper remains available as [`crate::run_substitution`]; the
//! differential tests below and in `tests/machine_differential.rs` check the
//! two agree on outcome, steps and samples across the whole catalogue, for
//! both strategies.
//!
//! # Call-by-name and call-by-value
//!
//! Both strategies of the paper share the machine; they differ only in how an
//! application consumes its argument:
//!
//! * **CbN** (Fig. 2): the argument is suspended as a *thunk* (term +
//!   environment, Krivine-style, never memoised — re-evaluating a duplicated
//!   `sample` thunk must draw twice);
//! * **CbV** (Fig. 8): the argument is evaluated to a value first, and
//!   environments bind values.

use crate::absmachine::{DomainSpec, Event, Machine, Stuck, Value};
use crate::ast::{Ident, Term};
use crate::eval::{Outcome, Run, StuckReason, Strategy};
use crate::trace::Sampler;
use probterm_numerics::Rational;

fn clone_rational(r: &Rational) -> Rational {
    r.clone()
}

fn clone_ident(x: &Ident) -> Ident {
    x.clone()
}

fn term_of_rational(r: &Rational) -> Term {
    Term::Num(r.clone())
}

fn term_of_free(x: &Ident) -> Term {
    Term::Var(x.clone())
}

fn spec(strategy: Strategy) -> DomainSpec<Rational, Ident> {
    DomainSpec {
        strategy,
        lit_of_num: clone_rational,
        // Free variables are values of the paper's grammar; CbV must carry
        // them through argument position without failing eagerly (the
        // reference semantics only gets stuck when the variable is *used*).
        atom_of_free: Some(clone_ident),
        opaque_fix: false,
        // The reference `run` checks fuel *before* every step, so a term that
        // needs exactly `max_steps` steps reports OutOfFuel even if the final
        // state is a value.
        value_first: false,
    }
}

/// Mirrors `eval::stuck_value`: free variables take precedence as the
/// reported stuck reason.
fn stuck_reason(stuck: Stuck<'_, Rational, Ident>) -> StuckReason {
    match stuck {
        Stuck::FreeVariable(x) => StuckReason::FreeVariable(x.to_string()),
        Stuck::NotANumeral(Value::Atom(x)) => StuckReason::FreeVariable(x.to_string()),
        Stuck::NotANumeral(_) => StuckReason::NotANumeral,
        Stuck::NotAFunction(_) => StuckReason::NotAFunction,
    }
}

/// How a drive ended; terms are only materialised by the caller if wanted.
enum End<'a> {
    Value(Value<'a, Rational, Ident>),
    Stuck(StuckReason),
    Fuel,
}

/// Drives the concrete machine against `sampler`, resolving every effectful
/// redex with the paper's concrete rules. Returns the end state and the
/// number of samples consumed.
fn drive<'a>(
    machine: &mut Machine<'a, Rational, Ident>,
    sampler: &mut dyn Sampler,
) -> (End<'a>, usize) {
    let mut samples = 0usize;
    let end = loop {
        match machine.next_event() {
            // A lone free variable is stuck, not a result (the reference
            // `run` refuses to treat open terms as terminated).
            Event::Done(Value::Atom(x)) => {
                break End::Stuck(StuckReason::FreeVariable(x.to_string()));
            }
            Event::Done(value) => break End::Value(value),
            Event::OutOfFuel => break End::Fuel,
            Event::Stuck(stuck) => break End::Stuck(stuck_reason(stuck)),
            Event::Sample => match sampler.next_sample() {
                Some(r) => {
                    samples += 1;
                    machine.resume_lit(r);
                }
                None => break End::Stuck(StuckReason::TraceExhausted),
            },
            Event::PrimReady(prim, args) => match prim.eval(&args) {
                Some(r) => machine.resume_lit(r),
                // A domain error is stuck *without* reducing, so it does not
                // count as a step (like the reference).
                None => break End::Stuck(StuckReason::PrimDomain(prim)),
            },
            Event::BranchReady(r) => machine.resume_branch(!r.is_positive()),
            Event::ScoreReady(r) => {
                if r.is_negative() {
                    break End::Stuck(StuckReason::NegativeScore(r));
                }
                machine.resume_lit(r);
            }
            Event::AtomApplied(x) => break End::Stuck(StuckReason::FreeVariable(x.to_string())),
            Event::FixEncountered(_) => unreachable!("opaque_fix is off for the concrete machine"),
        }
    };
    (end, samples)
}

/// Runs `term` on the environment machine for at most `max_steps` counted
/// steps, drawing from `sampler`.
///
/// Outcome, step count and sample count agree exactly with the
/// substitution-based reference semantics ([`crate::run_substitution`]); see
/// the module docs for the accounting rule. On fuel exhaustion the machine
/// state is *residualized* back into the term the reference semantics would
/// be holding, so even `Outcome::OutOfFuel` payloads line up.
///
/// # Examples
///
/// ```
/// use probterm_spcf::{parse_term, run_machine, FixedTrace, Strategy};
///
/// let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
/// let mut trace = FixedTrace::from_ratios(&[(7, 10), (1, 5)]);
/// let result = run_machine(Strategy::CallByName, &geo, &mut trace, 1_000);
/// assert!(result.outcome.is_terminated());
/// assert_eq!(result.samples, 2);
/// ```
pub fn run_machine(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    max_steps: usize,
) -> Run {
    let mut machine = Machine::new(spec(strategy), term, max_steps);
    let (end, samples) = drive(&mut machine, sampler);
    let outcome = match end {
        End::Value(value) => Outcome::Terminated(Machine::readback_value(
            &value,
            term_of_rational,
            term_of_free,
        )),
        End::Stuck(reason) => Outcome::Stuck(reason),
        End::Fuel => Outcome::OutOfFuel(machine.residualize(term_of_rational, term_of_free)),
    };
    Run { outcome, steps: machine.steps(), samples }
}

/// The outcome of a [`run_machine_summary`] run, with no materialised terms.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryOutcome {
    /// Evaluation reached a value.
    Terminated,
    /// Evaluation got stuck.
    Stuck(StuckReason),
    /// The step budget was exhausted before reaching a value.
    OutOfFuel,
}

/// A completed (or truncated) evaluation, without the result/residual term.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Final outcome (terms elided).
    pub outcome: SummaryOutcome,
    /// Number of small steps performed (the quantity `#s↓(M)` of §2.4).
    pub steps: usize,
    /// Number of samples consumed.
    pub samples: usize,
}

/// Like [`run_machine`], but reports only outcome kind, steps and samples —
/// no terminal value and no `OutOfFuel` residual term.
///
/// Monte-Carlo estimation discards the terms anyway, and *materialising*
/// them is the only super-constant cost a truncated run has: readback is an
/// `O(|residual term|)` pass, and the residual of a long run is a deep tree
/// whose eventual (recursive) drop glue can even exhaust the stack. The
/// summary path skips all of it; steps and samples are identical to
/// [`run_machine`]'s.
pub fn run_machine_summary(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    max_steps: usize,
) -> RunSummary {
    run_machine_summary_profiled(strategy, term, sampler, max_steps, None)
}

/// Like [`run_machine_summary`], tallying machine steps and events into
/// `profile` when one is given (see `Machine::set_profile`).
pub fn run_machine_summary_profiled(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    max_steps: usize,
    profile: Option<&probterm_telemetry::SharedProfile>,
) -> RunSummary {
    let mut machine = Machine::new(spec(strategy), term, max_steps);
    if let Some(profile) = profile {
        machine.set_profile(std::rc::Rc::clone(profile));
    }
    let (end, samples) = drive(&mut machine, sampler);
    let outcome = match end {
        End::Value(_) => SummaryOutcome::Terminated,
        End::Stuck(reason) => SummaryOutcome::Stuck(reason),
        End::Fuel => SummaryOutcome::OutOfFuel,
    };
    RunSummary { outcome, steps: machine.steps(), samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::eval::run_substitution;
    use crate::parser::parse_term;
    use crate::trace::FixedTrace;

    fn both(strategy: Strategy, term: &Term, ratios: &[(i64, i64)], max_steps: usize) -> (Run, Run) {
        let mut t1 = FixedTrace::from_ratios(ratios);
        let mut t2 = FixedTrace::from_ratios(ratios);
        (
            run_machine(strategy, term, &mut t1, max_steps),
            run_substitution(strategy, term, &mut t2, max_steps),
        )
    }

    fn assert_agree(strategy: Strategy, src: &str, ratios: &[(i64, i64)], max_steps: usize) {
        let term = parse_term(src).unwrap();
        let (machine, reference) = both(strategy, &term, ratios, max_steps);
        assert_eq!(machine, reference, "{strategy:?} disagreement on `{src}`");
    }

    #[test]
    fn agrees_on_arithmetic_and_conditionals() {
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            assert_agree(strategy, "1 + 2 * 3", &[], 1_000);
            assert_agree(strategy, "abs(-3) + min(2, 5) + max(0, exp(0))", &[], 1_000);
            assert_agree(strategy, "if 0 then 10 else 20", &[], 1_000);
            assert_agree(strategy, "if 1 <= 2 then 10 else 20", &[], 1_000);
            assert_agree(strategy, "score(0.25) + 1", &[], 1_000);
        }
    }

    #[test]
    fn agrees_on_thunk_duplication() {
        // CbN duplicates the unevaluated sample; CbV draws once.
        let src = "(lam x. x + x) sample";
        assert_agree(Strategy::CallByName, src, &[(1, 4), (1, 2)], 1_000);
        assert_agree(Strategy::CallByValue, src, &[(1, 4)], 1_000);
    }

    #[test]
    fn agrees_on_stuck_configurations() {
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            assert_agree(strategy, "score(0 - 1)", &[], 1_000);
            assert_agree(strategy, "sample", &[], 1_000);
            assert_agree(strategy, "log(0)", &[], 1_000);
            assert_agree(strategy, "1 2", &[], 1_000);
            assert_agree(strategy, "x + 1", &[], 1_000);
            assert_agree(strategy, "x", &[], 1_000);
            assert_agree(strategy, "(lam y. 42) x", &[], 1_000);
            assert_agree(strategy, "(lam y. x) 0", &[], 1_000);
            assert_agree(strategy, "x (1 + 1)", &[], 1_000);
        }
    }

    #[test]
    fn agrees_on_fuel_exhaustion_with_residual_term() {
        // The OutOfFuel payloads must be syntactically equal terms.
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            assert_agree(strategy, "(fix phi x. phi x) 0", &[], 100);
            assert_agree(
                strategy,
                "(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0",
                &[(9, 10); 40],
                100,
            );
        }
        // Fuel boundary: exactly enough steps to finish still reports
        // OutOfFuel, like the reference loop.
        assert_agree(Strategy::CallByName, "1 + 1", &[], 1);
        assert_agree(Strategy::CallByName, "1 + 1", &[], 0);
    }

    #[test]
    fn differential_whole_catalogue_on_seeded_random_traces() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut all = catalog::table1_benchmarks();
        all.extend(catalog::table2_benchmarks());
        all.push(catalog::triangle_example());
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        for benchmark in &all {
            for case in 0..6 {
                let len = rng.gen_range(0usize..24);
                let ratios: Vec<(i64, i64)> =
                    (0..len).map(|_| (rng.gen_range(0i64..1000), 1000)).collect();
                for strategy in [Strategy::CallByName, Strategy::CallByValue] {
                    let (machine, reference) = both(strategy, &benchmark.term, &ratios, 700);
                    assert_eq!(
                        machine, reference,
                        "{}: {strategy:?} case {case} trace {ratios:?}",
                        benchmark.name
                    );
                }
            }
        }
    }

    #[test]
    fn deep_divergent_runs_tear_down_without_overflowing_the_stack() {
        // `(fix phi x. phi x) 0` nests environments through the φ closure
        // *binding* (not the `next` pointer), so this is the regression test
        // for the worklist in the generic `EnvNode::drop`: tearing down the
        // state of a few-hundred-thousand-step truncated run must not recurse.
        let term = parse_term("(fix phi x. phi x) 0").unwrap();
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            let mut trace = FixedTrace::from_ratios(&[]);
            let result = run_machine_summary(strategy, &term, &mut trace, 300_000);
            assert_eq!(result.outcome, SummaryOutcome::OutOfFuel);
            assert_eq!(result.steps, 300_000);
        }
    }

    #[test]
    fn environment_depth_stays_bounded_while_terms_grow() {
        // gr on an all-failing trace grows its residual term linearly, but
        // the machine's per-step cost stays flat: run a large budget and make
        // sure the step count is exact (would time out quadratically before).
        let gr = catalog::golden_ratio().term;
        let mut trace = FixedTrace::from_ratios(&vec![(9, 10); 20_000]);
        let result = run_machine(Strategy::CallByValue, &gr, &mut trace, 20_000);
        assert!(matches!(result.outcome, Outcome::OutOfFuel(_)));
        assert_eq!(result.steps, 20_000);
    }
}
