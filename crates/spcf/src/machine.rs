//! Environment-based abstract machine for SPCF: O(1)-amortized small steps.
//!
//! # Why a machine
//!
//! The reference semantics in [`crate::eval`] implements the paper's
//! reduction relation literally: every small step clones the whole term,
//! substitutes, and plugs the evaluation context back together, so a run of
//! `n` steps costs `O(n · |term|)` — and for non-affine terms (whose pending
//! recursive calls make the term grow linearly with the step count) a
//! truncated run costs `O(n²)`. This module replaces textual substitution
//! with the standard environment/closure technique (a CEK-style machine):
//! configurations carry a *control* (a pointer into the original term plus an
//! environment), an *environment* (a persistent cons-list of bindings shared
//! via [`Rc`]), and a *continuation* (a stack of evaluation-context frames).
//! No term is ever cloned or rebuilt on the hot path, so each transition is
//! O(1) amortized (variable lookup walks the lexical environment, whose depth
//! is bounded by the binder nesting of the source program, not by the run).
//!
//! # Correspondence with the paper's configurations `⟨M, s⟩`
//!
//! The trace semantics (paper §2.3, Def. 2.1) reduces configurations
//! `⟨M, s⟩` of a closed term and a trace. A machine state
//! `⟨C, E, K⟩ × sampler` represents `⟨M, s⟩` as follows:
//!
//! * the term `M` is recovered by *readback*: substitute the environment `E`
//!   into the control `C` (innermost bindings first) and plug the result into
//!   the continuation frames `K` from top to bottom — see [`Machine::residualize`];
//! * the trace `s` is exactly the unconsumed suffix of the sampler.
//!
//! Readback is invariant under the machine's administrative moves and is only
//! materialised when a result must be reported (termination value, stuck
//! configuration, or fuel exhaustion), so it costs one `O(|term|)` pass per
//! *run* instead of per *step*.
//!
//! # Step accounting
//!
//! Machine transitions split into *administrative* moves (focusing into a
//! subterm, returning a value to a frame, entering a thunk) and *redex
//! firings*. Only the latter increment `steps`, and they correspond 1:1 to
//! the paper's reduction rules, so the reported count equals the reference
//! stepper's `#s↓(M)` (§2.4) exactly:
//!
//! | counted transition | paper rule (Fig. 2 / Fig. 8) |
//! |---|---|
//! | β-apply a `λ` closure | `(λx. M) N → M[N/x]` |
//! | unroll a `μ` closure | `(μφ x. M) N → M[N/x][μφ x. M/φ]` |
//! | branch on a numeral | `if(r, N, P) → N` or `P` |
//! | draw a sample | `⟨sample, r·s⟩ → ⟨r, s⟩` |
//! | pass a non-negative score | `score(r) → r` |
//! | evaluate a primitive | `f(r₁, …, r_k) → f(r₁, …, r_k)` |
//!
//! `samples` counts exactly the draws the sampler served, as in the
//! reference semantics, so [`run_machine`] is a drop-in replacement for the
//! substitution-based `run` (and is what [`crate::run`] now calls). The
//! reference stepper remains available as [`crate::run_substitution`]; the
//! differential tests below and in `tests/machine_differential.rs` check the
//! two agree on outcome, steps and samples across the whole catalogue, for
//! both strategies.
//!
//! # Call-by-name and call-by-value
//!
//! Both strategies of the paper share the machine; they differ only in how an
//! application consumes its argument:
//!
//! * **CbN** (Fig. 2): the argument is suspended as a *thunk* (term +
//!   environment, Krivine-style, never memoised — re-evaluating a duplicated
//!   `sample` thunk must draw twice);
//! * **CbV** (Fig. 8): the argument is evaluated to a value first, and
//!   environments bind values.

use crate::ast::{Ident, Prim, Term};
use crate::eval::{Outcome, Run, StuckReason, Strategy};
use crate::trace::Sampler;
use probterm_numerics::Rational;
use std::rc::Rc;

/// A machine value: a numeral, a function closure, or (call-by-value only) a
/// free variable that flowed into value position of an *open* term.
#[derive(Clone)]
enum Value<'a> {
    Num(Rational),
    /// `fun` is a `Term::Lam` or `Term::Fix` node of the source program.
    Closure { fun: &'a Term, env: Env<'a> },
    /// Free variables are values of the paper's grammar; CbV must carry them
    /// through argument position without failing eagerly (the reference
    /// semantics only gets stuck when the variable is *used*).
    Free(Ident),
}

/// A persistent environment: a cons-list shared through `Rc`, so extending
/// costs O(1) and closures alias their defining environment.
type Env<'a> = Option<Rc<EnvNode<'a>>>;

struct EnvNode<'a> {
    name: Ident,
    binding: Binding<'a>,
    next: Env<'a>,
}

impl Drop for EnvNode<'_> {
    /// Environment chains grow linearly with the recursion depth of a run,
    /// and they nest not only through `next` but also through *bindings*:
    /// each recursive unfolding stores the previous environment inside the
    /// `φ` closure, so e.g. `(fix phi x. phi x) 0` builds a chain that is
    /// deep through `Binding::Val(Closure)` links. The default recursive
    /// drop glue (and a `next`-only unlink) would overflow the stack tearing
    /// down a long truncated run, so unlink with an explicit worklist that
    /// harvests every environment handle a node owns.
    fn drop(&mut self) {
        fn harvest<'a>(binding: &mut Binding<'a>, work: &mut Vec<Rc<EnvNode<'a>>>) {
            let env = match binding {
                Binding::Thunk { env, .. } => env.take(),
                Binding::Val(Value::Closure { env, .. }) => env.take(),
                Binding::Val(_) => None,
            };
            work.extend(env);
        }
        let mut work: Vec<Rc<EnvNode<'_>>> = Vec::new();
        harvest(&mut self.binding, &mut work);
        work.extend(self.next.take());
        while let Some(handle) = work.pop() {
            // Sole owner: strip the node's env handles onto the worklist;
            // its own drop then has nothing left to recurse into. A shared
            // handle is kept alive by someone else — leave it alone.
            if let Ok(mut node) = Rc::try_unwrap(handle) {
                harvest(&mut node.binding, &mut work);
                work.extend(node.next.take());
            }
        }
    }
}

#[derive(Clone)]
enum Binding<'a> {
    /// Call-by-name suspension: un-memoised term + captured environment.
    Thunk { term: &'a Term, env: Env<'a> },
    /// An evaluated value (call-by-value arguments, and `φ` under both
    /// strategies, which is always bound to the recursive closure itself).
    Val(Value<'a>),
}

fn bind<'a>(env: &Env<'a>, name: &Ident, binding: Binding<'a>) -> Env<'a> {
    Some(Rc::new(EnvNode {
        name: name.clone(),
        binding,
        next: env.clone(),
    }))
}

fn lookup<'a>(env: &Env<'a>, name: &Ident) -> Option<Binding<'a>> {
    let mut current = env;
    while let Some(node) = current {
        if node.name == *name {
            return Some(node.binding.clone());
        }
        current = &node.next;
    }
    None
}

/// One frame of the continuation (the paper's evaluation context `E`, split
/// into its layers).
enum Frame<'a> {
    /// `[·] N` — the argument is pending; under CbN it will be thunked, under
    /// CbV it is evaluated next.
    AppArg { arg: &'a Term, env: Env<'a> },
    /// `V [·]` — call-by-value only: the function is evaluated, the hole is
    /// the argument.
    AppFun { fun: Value<'a> },
    /// `if([·], N, P)`.
    If { then: &'a Term, els: &'a Term, env: Env<'a> },
    /// `score([·])`.
    Score,
    /// `f(r₁, …, [·], M, …)` — evaluated prefix in `done`, the hole is
    /// `args[done.len()]`, the suffix is still un-focused.
    Prim { prim: Prim, args: &'a [Term], done: Vec<Rational>, env: Env<'a> },
}

/// The control: either evaluating a source subterm in an environment, or
/// returning a value to the topmost frame.
enum Control<'a> {
    Eval { term: &'a Term, env: Env<'a> },
    Return(Value<'a>),
}

struct Machine<'a> {
    strategy: Strategy,
    /// `Some` between transitions; taken by `drive` while one fires.
    control: Option<Control<'a>>,
    stack: Vec<Frame<'a>>,
    steps: usize,
    samples: usize,
}

/// Runs `term` on the environment machine for at most `max_steps` counted
/// steps, drawing from `sampler`.
///
/// Outcome, step count and sample count agree exactly with the
/// substitution-based reference semantics ([`crate::run_substitution`]); see
/// the module docs for the accounting rule. On fuel exhaustion the machine
/// state is *residualized* back into the term the reference semantics would
/// be holding, so even `Outcome::OutOfFuel` payloads line up.
///
/// # Examples
///
/// ```
/// use probterm_spcf::{parse_term, run_machine, FixedTrace, Strategy};
///
/// let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
/// let mut trace = FixedTrace::from_ratios(&[(7, 10), (1, 5)]);
/// let result = run_machine(Strategy::CallByName, &geo, &mut trace, 1_000);
/// assert!(result.outcome.is_terminated());
/// assert_eq!(result.samples, 2);
/// ```
pub fn run_machine(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    max_steps: usize,
) -> Run {
    let mut machine = Machine::new(strategy, term);
    let end = machine.drive(sampler, max_steps);
    let outcome = match end {
        End::Value(value) => Outcome::Terminated(Readback::default().value(&value)),
        End::Stuck(reason) => Outcome::Stuck(reason),
        End::Fuel => Outcome::OutOfFuel(machine.residualize()),
    };
    Run { outcome, steps: machine.steps, samples: machine.samples }
}

/// The outcome of a [`run_machine_summary`] run, with no materialised terms.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryOutcome {
    /// Evaluation reached a value.
    Terminated,
    /// Evaluation got stuck.
    Stuck(StuckReason),
    /// The step budget was exhausted before reaching a value.
    OutOfFuel,
}

/// A completed (or truncated) evaluation, without the result/residual term.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Final outcome (terms elided).
    pub outcome: SummaryOutcome,
    /// Number of small steps performed (the quantity `#s↓(M)` of §2.4).
    pub steps: usize,
    /// Number of samples consumed.
    pub samples: usize,
}

/// Like [`run_machine`], but reports only outcome kind, steps and samples —
/// no terminal value and no `OutOfFuel` residual term.
///
/// Monte-Carlo estimation discards the terms anyway, and *materialising*
/// them is the only super-constant cost a truncated run has: readback is an
/// `O(|residual term|)` pass, and the residual of a long run is a deep tree
/// whose eventual (recursive) drop glue can even exhaust the stack. The
/// summary path skips all of it; steps and samples are identical to
/// [`run_machine`]'s.
pub fn run_machine_summary(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    max_steps: usize,
) -> RunSummary {
    let mut machine = Machine::new(strategy, term);
    let end = machine.drive(sampler, max_steps);
    let outcome = match end {
        End::Value(_) => SummaryOutcome::Terminated,
        End::Stuck(reason) => SummaryOutcome::Stuck(reason),
        End::Fuel => SummaryOutcome::OutOfFuel,
    };
    RunSummary { outcome, steps: machine.steps, samples: machine.samples }
}

/// How a drive ended; terms are only materialised by the caller if wanted.
enum End<'a> {
    Value(Value<'a>),
    Stuck(StuckReason),
    Fuel,
}

impl<'a> Machine<'a> {
    fn new(strategy: Strategy, term: &'a Term) -> Machine<'a> {
        Machine {
            strategy,
            control: Some(Control::Eval { term, env: None }),
            stack: Vec::new(),
            steps: 0,
            samples: 0,
        }
    }

    fn drive(&mut self, sampler: &mut dyn Sampler, max_steps: usize) -> End<'a> {
        loop {
            // The reference `run` checks fuel *before* every step, so a term
            // that needs exactly `max_steps` steps reports OutOfFuel even if
            // the final state is a value; administrative moves never change
            // the readback, so checking here is equivalent.
            if self.steps >= max_steps {
                return End::Fuel;
            }
            match self.control.take().expect("machine control invariant") {
                Control::Eval { term, env } => {
                    if let Some(end) = self.eval(term, env, sampler) {
                        return end;
                    }
                }
                Control::Return(value) => {
                    if let Some(end) = self.apply(value) {
                        return end;
                    }
                }
            }
        }
    }

    /// Focus transition: decompose `term` or fire a leaf redex.
    /// Returns `Some` when the run ends here.
    fn eval(&mut self, term: &'a Term, env: Env<'a>, sampler: &mut dyn Sampler) -> Option<End<'a>> {
        match term {
            Term::Num(r) => self.control = Some(Control::Return(Value::Num(r.clone()))),
            Term::Lam(_, _) | Term::Fix(_, _, _) => {
                self.control = Some(Control::Return(Value::Closure { fun: term, env }));
            }
            Term::Var(x) => match lookup(&env, x) {
                Some(Binding::Thunk { term, env }) => {
                    // Entering a thunk is administrative: the readback of the
                    // variable *is* the readback of its thunk.
                    self.control = Some(Control::Eval { term, env });
                }
                Some(Binding::Val(value)) => self.control = Some(Control::Return(value)),
                None => match self.strategy {
                    // CbN only focuses variables in use position, where the
                    // reference semantics is stuck on a free variable.
                    Strategy::CallByName => {
                        return Some(End::Stuck(StuckReason::FreeVariable(x.to_string())));
                    }
                    // CbV also focuses variables in argument position, where
                    // the reference semantics treats them as values.
                    Strategy::CallByValue => {
                        self.control = Some(Control::Return(Value::Free(x.clone())));
                    }
                },
            },
            Term::App(fun, arg) => {
                self.stack.push(Frame::AppArg { arg: &**arg, env: env.clone() });
                self.control = Some(Control::Eval { term: &**fun, env });
            }
            Term::If(guard, then, els) => {
                self.stack.push(Frame::If { then: &**then, els: &**els, env: env.clone() });
                self.control = Some(Control::Eval { term: &**guard, env });
            }
            Term::Score(inner) => {
                self.stack.push(Frame::Score);
                self.control = Some(Control::Eval { term: &**inner, env });
            }
            Term::Sample => match sampler.next_sample() {
                Some(r) => {
                    self.samples += 1;
                    self.steps += 1; // counted: the sample rule
                    self.control = Some(Control::Return(Value::Num(r)));
                }
                None => return Some(End::Stuck(StuckReason::TraceExhausted)),
            },
            Term::Prim(prim, args) => match args.first() {
                Some(first) => {
                    self.stack.push(Frame::Prim {
                        prim: *prim,
                        args: args.as_slice(),
                        done: Vec::with_capacity(args.len()),
                        env: env.clone(),
                    });
                    self.control = Some(Control::Eval { term: first, env });
                }
                // Nullary applications cannot be written in the surface
                // syntax; `Prim::eval` rejects them like the reference does.
                None => match prim.eval(&[]) {
                    Some(r) => {
                        self.steps += 1; // counted: the primitive rule
                        self.control = Some(Control::Return(Value::Num(r)));
                    }
                    None => return Some(End::Stuck(StuckReason::PrimDomain(*prim))),
                },
            },
        }
        None
    }

    /// Return transition: deliver `value` to the topmost frame (or finish).
    fn apply(&mut self, value: Value<'a>) -> Option<End<'a>> {
        let Some(frame) = self.stack.pop() else {
            return Some(match value {
                // A lone free variable is stuck, not a result (the reference
                // `run` refuses to treat open terms as terminated).
                Value::Free(x) => End::Stuck(StuckReason::FreeVariable(x.to_string())),
                value => End::Value(value),
            });
        };
        match frame {
            Frame::AppArg { arg, env: arg_env } => match self.strategy {
                Strategy::CallByName => {
                    let binding = Binding::Thunk { term: arg, env: arg_env };
                    self.beta(value, binding)
                }
                Strategy::CallByValue => {
                    self.stack.push(Frame::AppFun { fun: value });
                    self.control = Some(Control::Eval { term: arg, env: arg_env });
                    None
                }
            },
            Frame::AppFun { fun } => self.beta(fun, Binding::Val(value)),
            Frame::If { then, els, env } => match value {
                Value::Num(r) => {
                    self.steps += 1; // counted: the conditional rule
                    let taken = if r.is_positive() { els } else { then };
                    self.control = Some(Control::Eval { term: taken, env });
                    None
                }
                other => Some(self.stuck_value(other, StuckReason::NotANumeral)),
            },
            Frame::Score => match value {
                Value::Num(r) => {
                    if r.is_negative() {
                        return Some(End::Stuck(StuckReason::NegativeScore(r)));
                    }
                    self.steps += 1; // counted: the score rule
                    self.control = Some(Control::Return(Value::Num(r)));
                    None
                }
                other => Some(self.stuck_value(other, StuckReason::NotANumeral)),
            },
            Frame::Prim { prim, args, mut done, env } => match value {
                Value::Num(r) => {
                    done.push(r);
                    if done.len() == args.len() {
                        match prim.eval(&done) {
                            Some(result) => {
                                self.steps += 1; // counted: the primitive rule
                                self.control = Some(Control::Return(Value::Num(result)));
                                None
                            }
                            // A domain error is stuck *without* reducing, so
                            // it does not count as a step (like the reference).
                            None => Some(End::Stuck(StuckReason::PrimDomain(prim))),
                        }
                    } else {
                        let next = &args[done.len()];
                        self.stack.push(Frame::Prim { prim, args, done, env: env.clone() });
                        self.control = Some(Control::Eval { term: next, env });
                        None
                    }
                }
                other => Some(self.stuck_value(other, StuckReason::NotANumeral)),
            },
        }
    }

    /// Applies the function value to the argument binding — the β /
    /// fix-unrolling redexes, the only transitions that extend environments.
    fn beta(&mut self, fun: Value<'a>, argument: Binding<'a>) -> Option<End<'a>> {
        match fun {
            Value::Closure { fun: Term::Lam(x, body), env } => {
                self.steps += 1; // counted: β
                let env = bind(&env, x, argument);
                self.control = Some(Control::Eval { term: &**body, env });
                None
            }
            Value::Closure { fun: fix @ Term::Fix(phi, x, body), env } => {
                self.steps += 1; // counted: fix unrolling
                // Mirrors `body.subst(x, arg).subst(phi, fix)`: the inner
                // substitution (x) shadows the outer one (φ) on name clashes.
                let recursive = Value::Closure { fun: fix, env: env.clone() };
                let env = bind(&env, phi, Binding::Val(recursive));
                let env = bind(&env, x, argument);
                self.control = Some(Control::Eval { term: &**body, env });
                None
            }
            Value::Closure { .. } => unreachable!("closures wrap Lam or Fix nodes only"),
            other => Some(self.stuck_value(other, StuckReason::NotAFunction)),
        }
    }

    /// Mirrors `eval::stuck_value`: free variables take precedence as the
    /// reported stuck reason.
    fn stuck_value(&mut self, value: Value<'a>, otherwise: StuckReason) -> End<'a> {
        let reason = match value {
            Value::Free(x) => StuckReason::FreeVariable(x.to_string()),
            _ => otherwise,
        };
        End::Stuck(reason)
    }

    /// Reads the whole machine state back into the term the reference
    /// semantics would be holding: readback the control, then plug it into
    /// the continuation frames from the innermost outwards.
    fn residualize(&self) -> Term {
        let mut readback = Readback::default();
        let mut term = match self.control.as_ref().expect("machine control invariant") {
            Control::Eval { term, env } => readback.term(term, env),
            Control::Return(value) => readback.value(value),
        };
        for frame in self.stack.iter().rev() {
            term = match frame {
                Frame::AppArg { arg, env } => Term::app(term, readback.term(arg, env)),
                Frame::AppFun { fun } => Term::app(readback.value(fun), term),
                Frame::If { then, els, env } => {
                    Term::ite(term, readback.term(then, env), readback.term(els, env))
                }
                Frame::Score => Term::score(term),
                Frame::Prim { prim, args, done, env } => {
                    let mut full: Vec<Term> =
                        done.iter().cloned().map(Term::Num).collect();
                    full.push(term);
                    for arg in &args[done.len() + 1..] {
                        full.push(readback.term(arg, env));
                    }
                    Term::Prim(*prim, full)
                }
            };
        }
        term
    }
}

/// Reads machine structures back into source terms.
///
/// The replacement term of every environment node is computed once (the memo
/// is keyed by the node's address, which is stable because nodes live behind
/// `Rc`), and the dependency walk over the environment DAG is iterative — a
/// call-by-name run that suspends thunk-inside-thunk chains thousands deep
/// (e.g. a truncated `fix phi x. phi x` run) must not overflow the stack.
#[derive(Default)]
struct Readback {
    memo: std::collections::HashMap<*const (), Term>,
}

impl Readback {
    /// Converts a machine value back into a source term.
    fn value(&mut self, value: &Value<'_>) -> Term {
        match value {
            Value::Num(r) => Term::Num(r.clone()),
            Value::Closure { fun, env } => self.term(fun, env),
            Value::Free(x) => Term::Var(x.clone()),
        }
    }

    /// Substitutes an environment into a source subterm, innermost bindings
    /// first, recovering the term of the paper's configuration. Only called
    /// when a result is reported, never on the hot path.
    fn term(&mut self, term: &Term, env: &Env<'_>) -> Term {
        self.resolve(env);
        self.apply(term, env)
    }

    /// Substitutes the (already resolved) replacements of `env` into `term`.
    fn apply(&self, term: &Term, env: &Env<'_>) -> Term {
        let mut result = term.clone();
        let mut current = env;
        while let Some(node) = current {
            let replacement = &self.memo[&node_key(node)];
            result = result.subst(&node.name, replacement);
            current = &node.next;
        }
        result
    }

    /// Resolves the replacement term of every node reachable from `env`,
    /// dependencies first, without recursion.
    fn resolve(&mut self, env: &Env<'_>) {
        let mut work: Vec<(&EnvNode<'_>, bool)> = Vec::new();
        let mut current = env;
        while let Some(node) = current {
            work.push((node, false));
            current = &node.next;
        }
        while let Some((node, dependencies_ready)) = work.pop() {
            if self.memo.contains_key(&node_key(node)) {
                continue;
            }
            let dependency_env = match &node.binding {
                Binding::Thunk { env, .. } => env,
                Binding::Val(Value::Closure { env, .. }) => env,
                Binding::Val(_) => &None,
            };
            if dependencies_ready {
                let replacement = match &node.binding {
                    Binding::Thunk { term, env } => self.apply(term, env),
                    Binding::Val(Value::Num(r)) => Term::Num(r.clone()),
                    Binding::Val(Value::Closure { fun, env }) => self.apply(fun, env),
                    Binding::Val(Value::Free(x)) => Term::Var(x.clone()),
                };
                self.memo.insert(node_key(node), replacement);
            } else {
                work.push((node, true));
                let mut current = dependency_env;
                while let Some(dependency) = current {
                    if !self.memo.contains_key(&node_key(dependency)) {
                        work.push((dependency, false));
                    }
                    current = &dependency.next;
                }
            }
        }
    }
}

fn node_key(node: &EnvNode<'_>) -> *const () {
    node as *const EnvNode<'_> as *const ()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::eval::run_substitution;
    use crate::parser::parse_term;
    use crate::trace::FixedTrace;

    fn both(strategy: Strategy, term: &Term, ratios: &[(i64, i64)], max_steps: usize) -> (Run, Run) {
        let mut t1 = FixedTrace::from_ratios(ratios);
        let mut t2 = FixedTrace::from_ratios(ratios);
        (
            run_machine(strategy, term, &mut t1, max_steps),
            run_substitution(strategy, term, &mut t2, max_steps),
        )
    }

    fn assert_agree(strategy: Strategy, src: &str, ratios: &[(i64, i64)], max_steps: usize) {
        let term = parse_term(src).unwrap();
        let (machine, reference) = both(strategy, &term, ratios, max_steps);
        assert_eq!(machine, reference, "{strategy:?} disagreement on `{src}`");
    }

    #[test]
    fn agrees_on_arithmetic_and_conditionals() {
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            assert_agree(strategy, "1 + 2 * 3", &[], 1_000);
            assert_agree(strategy, "abs(-3) + min(2, 5) + max(0, exp(0))", &[], 1_000);
            assert_agree(strategy, "if 0 then 10 else 20", &[], 1_000);
            assert_agree(strategy, "if 1 <= 2 then 10 else 20", &[], 1_000);
            assert_agree(strategy, "score(0.25) + 1", &[], 1_000);
        }
    }

    #[test]
    fn agrees_on_thunk_duplication() {
        // CbN duplicates the unevaluated sample; CbV draws once.
        let src = "(lam x. x + x) sample";
        assert_agree(Strategy::CallByName, src, &[(1, 4), (1, 2)], 1_000);
        assert_agree(Strategy::CallByValue, src, &[(1, 4)], 1_000);
    }

    #[test]
    fn agrees_on_stuck_configurations() {
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            assert_agree(strategy, "score(0 - 1)", &[], 1_000);
            assert_agree(strategy, "sample", &[], 1_000);
            assert_agree(strategy, "log(0)", &[], 1_000);
            assert_agree(strategy, "1 2", &[], 1_000);
            assert_agree(strategy, "x + 1", &[], 1_000);
            assert_agree(strategy, "x", &[], 1_000);
            assert_agree(strategy, "(lam y. 42) x", &[], 1_000);
            assert_agree(strategy, "(lam y. x) 0", &[], 1_000);
            assert_agree(strategy, "x (1 + 1)", &[], 1_000);
        }
    }

    #[test]
    fn agrees_on_fuel_exhaustion_with_residual_term() {
        // The OutOfFuel payloads must be syntactically equal terms.
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            assert_agree(strategy, "(fix phi x. phi x) 0", &[], 100);
            assert_agree(
                strategy,
                "(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0",
                &[(9, 10); 40],
                100,
            );
        }
        // Fuel boundary: exactly enough steps to finish still reports
        // OutOfFuel, like the reference loop.
        assert_agree(Strategy::CallByName, "1 + 1", &[], 1);
        assert_agree(Strategy::CallByName, "1 + 1", &[], 0);
    }

    #[test]
    fn differential_whole_catalogue_on_seeded_random_traces() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut all = catalog::table1_benchmarks();
        all.extend(catalog::table2_benchmarks());
        all.push(catalog::triangle_example());
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        for benchmark in &all {
            for case in 0..6 {
                let len = rng.gen_range(0usize..24);
                let ratios: Vec<(i64, i64)> =
                    (0..len).map(|_| (rng.gen_range(0i64..1000), 1000)).collect();
                for strategy in [Strategy::CallByName, Strategy::CallByValue] {
                    let (machine, reference) = both(strategy, &benchmark.term, &ratios, 700);
                    assert_eq!(
                        machine, reference,
                        "{}: {strategy:?} case {case} trace {ratios:?}",
                        benchmark.name
                    );
                }
            }
        }
    }

    #[test]
    fn deep_divergent_runs_tear_down_without_overflowing_the_stack() {
        // `(fix phi x. phi x) 0` nests environments through the φ closure
        // *binding* (not the `next` pointer), so this is the regression test
        // for the worklist in `EnvNode::drop`: tearing down the state of a
        // few-hundred-thousand-step truncated run must not recurse.
        let term = parse_term("(fix phi x. phi x) 0").unwrap();
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            let mut trace = FixedTrace::from_ratios(&[]);
            let result = run_machine_summary(strategy, &term, &mut trace, 300_000);
            assert_eq!(result.outcome, SummaryOutcome::OutOfFuel);
            assert_eq!(result.steps, 300_000);
        }
    }

    #[test]
    fn environment_depth_stays_bounded_while_terms_grow() {
        // gr on an all-failing trace grows its residual term linearly, but
        // the machine's per-step cost stays flat: run a large budget and make
        // sure the step count is exact (would time out quadratically before).
        let gr = catalog::golden_ratio().term;
        let mut trace = FixedTrace::from_ratios(&vec![(9, 10); 20_000]);
        let result = run_machine(Strategy::CallByValue, &gr, &mut trace, 20_000);
        assert!(matches!(result.outcome, Outcome::OutOfFuel(_)));
        assert_eq!(result.steps, 20_000);
    }
}
