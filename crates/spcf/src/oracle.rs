//! Conditional oracles and the oracle-annotated reduction (paper Fig. 11,
//! Appendix B.4).
//!
//! The completeness proof of the interval semantics partitions the set of
//! terminating traces by their *branching behaviour*: the sequence
//! `κ ∈ {L, R}*` of directions taken at the conditionals encountered during
//! the run. Lemma B.5 states that every terminating trace determines a unique
//! such `κ`, and the oracle-annotated reduction `→co` only allows a run to
//! proceed when its branch decisions follow the prescribed oracle, so that
//! `T_M,term` decomposes into the disjoint union of the `T^(κ)_M,term`.
//!
//! This module recovers the branching behaviour of a run
//! ([`branching_behaviour`]) and replays a configuration against a prescribed
//! oracle ([`run_with_oracle`]), which the symbolic-execution and
//! intersection-type layers use to cross-check their own per-path reasoning.

use crate::ast::Term;
use crate::eval::{step, Outcome, Step, Strategy};
use crate::trace::Sampler;
use std::fmt;

/// A branch direction of a conditional: `L` (guard ≤ 0, then-branch) or `R`
/// (guard > 0, else-branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The then-branch (`r ≤ 0`).
    Left,
    /// The else-branch (`r > 0`).
    Right,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Left => write!(f, "L"),
            Direction::Right => write!(f, "R"),
        }
    }
}

/// A conditional oracle `κ ∈ {L, R}*`.
pub type Oracle = Vec<Direction>;

/// Renders an oracle as a compact string such as `"RRL"`.
pub fn oracle_string(oracle: &[Direction]) -> String {
    oracle.iter().map(Direction::to_string).collect()
}

/// The result of an oracle-annotated run (Fig. 11).
#[derive(Debug, Clone, PartialEq)]
pub struct OracleRun {
    /// The final outcome of the reduction, or `None` if the run was aborted
    /// because a branch contradicted the oracle (no `→co` rule applies, so
    /// the configuration is stuck without reducing further).
    pub outcome: Option<Outcome>,
    /// The branch directions actually taken, in order.
    pub taken: Oracle,
    /// Number of small steps performed.
    pub steps: usize,
    /// `true` if the run was aborted because a branch contradicted the oracle
    /// or the oracle was exhausted.
    pub oracle_violation: bool,
}

impl OracleRun {
    /// `true` if the run terminated in a value while following the oracle.
    pub fn followed_oracle(&self) -> bool {
        !self.oracle_violation
            && matches!(self.outcome, Some(Outcome::Terminated(_)))
    }
}

/// If the next redex of `term` (under `strategy`) is a conditional whose guard
/// is already a numeral, returns the direction it will take.
fn pending_branch(strategy: Strategy, term: &Term) -> Option<Direction> {
    let mut current = term;
    loop {
        match current {
            Term::App(fun, arg) => match strategy {
                Strategy::CallByName => {
                    if fun.is_value() {
                        return None;
                    }
                    current = fun;
                }
                Strategy::CallByValue => {
                    if !fun.is_value() {
                        current = fun;
                    } else if !arg.is_value() {
                        current = arg;
                    } else {
                        return None;
                    }
                }
            },
            Term::If(guard, _, _) => match &**guard {
                Term::Num(r) => {
                    return Some(if r.is_positive() { Direction::Right } else { Direction::Left })
                }
                g if g.is_value() => return None,
                _ => current = guard,
            },
            Term::Score(inner) => {
                if inner.is_value() {
                    return None;
                }
                current = inner;
            }
            Term::Prim(_, args) => match args.iter().find(|a| a.as_num().is_none()) {
                Some(a) if !a.is_value() => current = a,
                _ => return None,
            },
            Term::Var(_) | Term::Num(_) | Term::Lam(_, _) | Term::Fix(_, _, _) | Term::Sample => {
                return None
            }
        }
    }
}

/// Runs `term` on `sampler`, recording the branching behaviour `κ` of the run
/// (the premise annotations of the `→co` rules in Fig. 11).
///
/// Returns the recorded oracle together with the run outcome. By Lemma B.5
/// the oracle is uniquely determined by the trace whenever the run terminates.
pub fn branching_behaviour(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    max_steps: usize,
) -> OracleRun {
    drive(strategy, term, sampler, max_steps, None)
}

/// Runs `term` on `sampler` while enforcing the prescribed conditional oracle
/// `κ` (Fig. 11): the run is aborted, with `oracle_violation` set, as soon as
/// a conditional would branch differently from the oracle or the oracle runs
/// out of directions.
pub fn run_with_oracle(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    oracle: &[Direction],
    max_steps: usize,
) -> OracleRun {
    drive(strategy, term, sampler, max_steps, Some(oracle))
}

fn drive(
    strategy: Strategy,
    term: &Term,
    sampler: &mut dyn Sampler,
    max_steps: usize,
    oracle: Option<&[Direction]>,
) -> OracleRun {
    let mut current = term.clone();
    let mut taken: Oracle = Vec::new();
    let mut steps = 0usize;
    while steps < max_steps {
        if let Some(direction) = pending_branch(strategy, &current) {
            if let Some(oracle) = oracle {
                match oracle.get(taken.len()) {
                    Some(expected) if *expected == direction => {}
                    _ => {
                        return OracleRun {
                            outcome: None,
                            taken,
                            steps,
                            oracle_violation: true,
                        }
                    }
                }
            }
            taken.push(direction);
        }
        match step(strategy, &current, sampler) {
            Step::Reduced(next) => {
                current = next;
                steps += 1;
            }
            Step::Value => {
                return OracleRun {
                    outcome: Some(Outcome::Terminated(current)),
                    taken,
                    steps,
                    oracle_violation: false,
                }
            }
            Step::Stuck(reason) => {
                return OracleRun {
                    outcome: Some(Outcome::Stuck(reason)),
                    taken,
                    steps,
                    oracle_violation: false,
                }
            }
        }
    }
    OracleRun {
        outcome: Some(Outcome::OutOfFuel(current)),
        taken,
        steps,
        oracle_violation: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::StuckReason;
    use crate::parser::parse_term;
    use crate::trace::FixedTrace;
    use probterm_numerics::Rational;

    fn geo() -> Term {
        parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap()
    }

    fn trace(ratios: &[(i64, i64)]) -> FixedTrace {
        FixedTrace::from_ratios(ratios)
    }

    #[test]
    fn branching_behaviour_of_the_geometric_term() {
        // Two failures (samples > 1/2) then a success: behaviour R R L.
        let mut t = trace(&[(7, 10), (8, 10), (2, 10)]);
        let run = branching_behaviour(Strategy::CallByName, &geo(), &mut t, 1_000);
        assert!(matches!(run.outcome, Some(Outcome::Terminated(_))));
        assert_eq!(
            run.taken,
            vec![Direction::Right, Direction::Right, Direction::Left]
        );
        assert_eq!(oracle_string(&run.taken), "RRL");
        // An immediately successful trace has behaviour L.
        let mut t = trace(&[(1, 10)]);
        let run = branching_behaviour(Strategy::CallByName, &geo(), &mut t, 1_000);
        assert_eq!(run.taken, vec![Direction::Left]);
    }

    #[test]
    fn lemma_b5_replay_follows_the_recorded_oracle() {
        let ratios = [(9, 10), (3, 10)];
        let mut t = trace(&ratios);
        let recorded = branching_behaviour(Strategy::CallByName, &geo(), &mut t, 1_000);
        assert!(matches!(recorded.outcome, Some(Outcome::Terminated(_))));
        // Replaying the same trace against its own oracle succeeds and takes
        // the same number of steps (the oracle is unique, Lemma B.5).
        let mut t = trace(&ratios);
        let replay =
            run_with_oracle(Strategy::CallByName, &geo(), &mut t, &recorded.taken, 1_000);
        assert!(replay.followed_oracle());
        assert_eq!(replay.steps, recorded.steps);
        assert_eq!(replay.taken, recorded.taken);
    }

    #[test]
    fn contradicting_oracle_aborts_the_run() {
        let ratios = [(9, 10), (3, 10)];
        // The true behaviour is R L; prescribe L instead.
        let mut t = trace(&ratios);
        let wrong = run_with_oracle(
            Strategy::CallByName,
            &geo(),
            &mut t,
            &[Direction::Left],
            1_000,
        );
        assert!(wrong.oracle_violation);
        assert!(!wrong.followed_oracle());
        assert_eq!(wrong.outcome, None);
        // A too-short oracle is also a violation.
        let mut t = trace(&ratios);
        let short = run_with_oracle(
            Strategy::CallByName,
            &geo(),
            &mut t,
            &[Direction::Right],
            1_000,
        );
        assert!(short.oracle_violation);
        assert_eq!(short.taken, vec![Direction::Right]);
    }

    #[test]
    fn oracles_partition_terminating_traces() {
        // Traces of geo with the same number of failed attempts share an
        // oracle; different attempt counts give different oracles.
        let behaviours: Vec<String> = [
            vec![(1, 4)],
            vec![(2, 5)],
            vec![(3, 4), (1, 4)],
            vec![(9, 10), (1, 3)],
            vec![(3, 4), (9, 10), (1, 10)],
        ]
        .into_iter()
        .map(|ratios| {
            let mut t = FixedTrace::from_ratios(&ratios);
            let run = branching_behaviour(Strategy::CallByName, &geo(), &mut t, 1_000);
            assert!(run.followed_oracle());
            oracle_string(&run.taken)
        })
        .collect();
        assert_eq!(behaviours[0], behaviours[1]);
        assert_eq!(behaviours[2], behaviours[3]);
        assert_ne!(behaviours[0], behaviours[2]);
        assert_ne!(behaviours[2], behaviours[4]);
        assert_eq!(behaviours[4], "RRL");
    }

    #[test]
    fn strategies_agree_on_first_order_branching() {
        // On a first-order program the CbN and CbV behaviours coincide.
        let term =
            parse_term("(fix phi x. if sample <= 1/3 then x else phi (x + 1)) 2").unwrap();
        let ratios = [(1, 2), (9, 10), (1, 5)];
        let mut cbn_trace = trace(&ratios);
        let mut cbv_trace = trace(&ratios);
        let cbn = branching_behaviour(Strategy::CallByName, &term, &mut cbn_trace, 10_000);
        let cbv = branching_behaviour(Strategy::CallByValue, &term, &mut cbv_trace, 10_000);
        assert_eq!(cbn.taken, cbv.taken);
        assert!(cbn.followed_oracle());
        assert!(cbv.followed_oracle());
    }

    #[test]
    fn stuck_and_out_of_fuel_runs_report_their_partial_behaviour() {
        // Exhausted trace: stuck after taking the first branch.
        let mut t = trace(&[(9, 10)]);
        let run = branching_behaviour(Strategy::CallByName, &geo(), &mut t, 1_000);
        assert!(matches!(run.outcome, Some(Outcome::Stuck(_))));
        assert_eq!(run.taken, vec![Direction::Right]);
        // Fuel exhaustion.
        let mut t = trace(&[(9, 10), (8, 10)]);
        let run = branching_behaviour(Strategy::CallByName, &geo(), &mut t, 3);
        assert!(matches!(run.outcome, Some(Outcome::OutOfFuel(_))));
        assert!(!run.followed_oracle());
    }

    #[test]
    fn score_failures_are_not_oracle_violations() {
        let term = parse_term("if sample <= 1/2 then score(0 - 1) else 1").unwrap();
        let mut t = trace(&[(1, 4)]);
        let run = run_with_oracle(
            Strategy::CallByName,
            &term,
            &mut t,
            &[Direction::Left],
            100,
        );
        assert!(!run.oracle_violation);
        assert!(matches!(
            run.outcome,
            Some(Outcome::Stuck(StuckReason::NegativeScore(_)))
        ));
        let _ = Rational::zero();
    }
}
