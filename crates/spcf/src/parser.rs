//! Parser for the SPCF surface syntax.
//!
//! The grammar (desugaring into the core calculus of [`crate::ast`]):
//!
//! ```text
//! term      ::= 'fix' IDENT IDENT '.' term
//!             | ('lam' | '\') IDENT+ '.' term
//!             | 'let' IDENT '=' term 'in' term
//!             | 'if' term 'then' term 'else' term
//!             | 'flip' '(' term ',' term ',' term ')'       -- left branch w.p. first argument
//!             | comparison
//! comparison::= arith (('<=' | '<' | '>=' | '>') arith)?
//! arith     ::= product (('+' | '-') product)*
//! product   ::= unary ('*' unary)*
//! unary     ::= '-' unary | application
//! application ::= atom atom*
//! atom      ::= NUMBER | NUMBER '/' NUMBER | IDENT | 'sample'
//!             | 'score' '(' term ')' | PRIM '(' term {',' term} ')' | '(' term ')'
//! ```
//!
//! Conditionals follow the paper's convention: `if G then N else P` reduces to
//! `N` when `G ≤ 0`. Comparisons desugar into subtraction, so `a <= b` and
//! `a < b` denote the same guard `a - b` (they differ only on a measure-zero
//! event), and `a >= b` / `a > b` denote `b - a`.

use crate::ast::{Prim, Term};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use probterm_numerics::Rational;
use std::fmt;

/// An error produced by [`parse_term`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// The parser found an unexpected token.
    Unexpected {
        /// What the parser was looking for.
        expected: String,
        /// The token it found instead.
        found: String,
        /// Byte offset of the offending token.
        offset: usize,
    },
    /// A numeric literal could not be interpreted as a rational.
    BadNumber {
        /// The literal text.
        literal: String,
        /// Byte offset of the literal.
        offset: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                expected,
                found,
                offset,
            } => write!(f, "parse error at byte {offset}: expected {expected}, found {found}"),
            ParseError::BadNumber { literal, offset } => {
                write!(f, "parse error at byte {offset}: malformed number `{literal}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

const KEYWORDS: &[&str] = &[
    "fix", "lam", "let", "in", "if", "then", "else", "flip", "sample", "score",
];

struct Parser {
    tokens: Vec<Token>,
    position: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.position].kind
    }

    fn peek_offset(&self) -> usize {
        self.tokens[self.position].offset
    }

    fn advance(&mut self) -> TokenKind {
        let tok = self.tokens[self.position].kind.clone();
        if self.position + 1 < self.tokens.len() {
            self.position += 1;
        }
        tok
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            TokenKind::Ident(s) if s == kw => {
                self.advance();
                Ok(())
            }
            _ => Err(self.unexpected(&format!("keyword `{kw}`"))),
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            expected: expected.to_string(),
            found: self.peek().to_string(),
            offset: self.peek_offset(),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn parse_binder(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) if !KEYWORDS.contains(&name.as_str()) => {
                self.advance();
                Ok(name)
            }
            _ => Err(self.unexpected("a variable name")),
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        if self.peek_keyword("fix") {
            self.advance();
            let phi = self.parse_binder()?;
            let x = self.parse_binder()?;
            self.expect(&TokenKind::Dot, "`.`")?;
            let body = self.parse_term()?;
            return Ok(Term::fix(&phi, &x, body));
        }
        if self.peek_keyword("lam") || self.peek() == &TokenKind::Backslash {
            self.advance();
            let mut binders = vec![self.parse_binder()?];
            while let TokenKind::Ident(name) = self.peek() {
                if KEYWORDS.contains(&name.as_str()) {
                    break;
                }
                binders.push(self.parse_binder()?);
            }
            self.expect(&TokenKind::Dot, "`.`")?;
            let mut body = self.parse_term()?;
            for b in binders.iter().rev() {
                body = Term::lam(b, body);
            }
            return Ok(body);
        }
        if self.peek_keyword("let") {
            self.advance();
            let x = self.parse_binder()?;
            self.expect(&TokenKind::Eq, "`=`")?;
            let bound = self.parse_term()?;
            self.expect_keyword("in")?;
            let body = self.parse_term()?;
            return Ok(Term::let_in(&x, bound, body));
        }
        if self.peek_keyword("if") {
            self.advance();
            let guard = self.parse_term()?;
            self.expect_keyword("then")?;
            let then = self.parse_term()?;
            self.expect_keyword("else")?;
            let els = self.parse_term()?;
            return Ok(Term::ite(guard, then, els));
        }
        if self.peek_keyword("flip") {
            self.advance();
            self.expect(&TokenKind::LParen, "`(`")?;
            let p = self.parse_term()?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let left = self.parse_term()?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let right = self.parse_term()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            // flip(p, L, R): take L with probability p, i.e. if(sample - p, L, R).
            return Ok(Term::ite(Term::sub(Term::Sample, p), left, right));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Term, ParseError> {
        let lhs = self.parse_arith()?;
        match self.peek() {
            TokenKind::Le | TokenKind::Lt => {
                self.advance();
                let rhs = self.parse_arith()?;
                Ok(Term::sub(lhs, rhs))
            }
            TokenKind::Ge | TokenKind::Gt => {
                self.advance();
                let rhs = self.parse_arith()?;
                Ok(Term::sub(rhs, lhs))
            }
            _ => Ok(lhs),
        }
    }

    fn parse_arith(&mut self) -> Result<Term, ParseError> {
        let mut acc = self.parse_product()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.advance();
                    let rhs = self.parse_product()?;
                    acc = Term::add(acc, rhs);
                }
                TokenKind::Minus => {
                    self.advance();
                    let rhs = self.parse_product()?;
                    acc = Term::sub(acc, rhs);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_product(&mut self) -> Result<Term, ParseError> {
        let mut acc = self.parse_unary()?;
        while self.peek() == &TokenKind::Star {
            self.advance();
            let rhs = self.parse_unary()?;
            acc = Term::mul(acc, rhs);
        }
        Ok(acc)
    }

    fn parse_unary(&mut self) -> Result<Term, ParseError> {
        if self.peek() == &TokenKind::Minus {
            self.advance();
            let inner = self.parse_unary()?;
            // Constant-fold negation of numerals for readability of ASTs.
            if let Term::Num(r) = &inner {
                return Ok(Term::Num(-r));
            }
            return Ok(Term::Prim(Prim::Neg, vec![inner]));
        }
        self.parse_application()
    }

    fn starts_atom(&self) -> bool {
        match self.peek() {
            TokenKind::Number(_) | TokenKind::LParen => true,
            TokenKind::Ident(name) => {
                !KEYWORDS.contains(&name.as_str())
                    || name == "sample"
                    || name == "score"
                    || name == "flip"
            }
            _ => false,
        }
    }

    fn parse_application(&mut self) -> Result<Term, ParseError> {
        let mut acc = self.parse_atom()?;
        while self.starts_atom() {
            // `flip(...)` as an argument needs the keyword-level parser.
            let arg = if self.peek_keyword("flip") {
                self.parse_term()?
            } else {
                self.parse_atom()?
            };
            acc = Term::app(acc, arg);
        }
        Ok(acc)
    }

    fn parse_number(&mut self, literal: &str, offset: usize) -> Result<Rational, ParseError> {
        let first = Rational::parse(literal).ok_or_else(|| ParseError::BadNumber {
            literal: literal.to_string(),
            offset,
        })?;
        // Rational literal `a/b` (only between numeric literals).
        if self.peek() == &TokenKind::Slash {
            self.advance();
            match self.advance() {
                TokenKind::Number(denom) => {
                    let d = Rational::parse(&denom).filter(|d| !d.is_zero()).ok_or_else(|| {
                        ParseError::BadNumber {
                            literal: denom.clone(),
                            offset,
                        }
                    })?;
                    Ok(first / d)
                }
                other => Err(ParseError::Unexpected {
                    expected: "a denominator literal".into(),
                    found: other.to_string(),
                    offset,
                }),
            }
        } else {
            Ok(first)
        }
    }

    fn parse_atom(&mut self) -> Result<Term, ParseError> {
        let offset = self.peek_offset();
        match self.peek().clone() {
            TokenKind::Number(literal) => {
                self.advance();
                Ok(Term::Num(self.parse_number(&literal, offset)?))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.parse_term()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                if name == "sample" {
                    self.advance();
                    return Ok(Term::Sample);
                }
                if name == "score" {
                    self.advance();
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let inner = self.parse_term()?;
                    self.expect(&TokenKind::RParen, "`)`")?;
                    return Ok(Term::score(inner));
                }
                if KEYWORDS.contains(&name.as_str()) && name != "flip" {
                    return Err(self.unexpected("a term"));
                }
                if let Some(prim) = Prim::from_name(&name) {
                    // A primitive call `f(a, b)` — only if followed by `(`.
                    if self.tokens[self.position + 1].kind == TokenKind::LParen {
                        self.advance();
                        self.advance();
                        let mut args = vec![self.parse_term()?];
                        while self.peek() == &TokenKind::Comma {
                            self.advance();
                            args.push(self.parse_term()?);
                        }
                        self.expect(&TokenKind::RParen, "`)`")?;
                        if args.len() != prim.arity() {
                            return Err(ParseError::Unexpected {
                                expected: format!("{} arguments to `{}`", prim.arity(), prim),
                                found: format!("{} arguments", args.len()),
                                offset,
                            });
                        }
                        return Ok(Term::Prim(prim, args));
                    }
                }
                self.advance();
                Ok(Term::var(&name))
            }
            _ => Err(self.unexpected("a term")),
        }
    }
}

/// Parses a complete SPCF term from its surface syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input cannot be tokenized or parsed, or if
/// trailing input remains.
///
/// # Examples
///
/// ```
/// use probterm_spcf::parse_term;
///
/// let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
/// assert!(geo.is_closed());
/// ```
pub fn parse_term(input: &str) -> Result<Term, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, position: 0 };
    let term = parser.parse_term()?;
    if parser.peek() != &TokenKind::Eof {
        return Err(parser.unexpected("end of input"));
    }
    Ok(term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ident;

    #[test]
    fn parses_numbers_and_rationals() {
        assert_eq!(parse_term("0.25").unwrap(), Term::ratio(1, 4));
        assert_eq!(parse_term("2/3").unwrap(), Term::ratio(2, 3));
        assert_eq!(parse_term("-1.5").unwrap(), Term::ratio(-3, 2));
        assert_eq!(parse_term("7").unwrap(), Term::int(7));
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let t = parse_term("1 + 2 * 3").unwrap();
        assert_eq!(t, Term::add(Term::int(1), Term::mul(Term::int(2), Term::int(3))));
        let t = parse_term("(1 + 2) * 3").unwrap();
        assert_eq!(t, Term::mul(Term::add(Term::int(1), Term::int(2)), Term::int(3)));
        let t = parse_term("1 - 2 - 3").unwrap();
        assert_eq!(t, Term::sub(Term::sub(Term::int(1), Term::int(2)), Term::int(3)));
    }

    #[test]
    fn parses_lambdas_lets_and_application() {
        let t = parse_term("(lam x y. x + y) 1 2").unwrap();
        assert_eq!(
            t,
            Term::app(
                Term::app(
                    Term::lam("x", Term::lam("y", Term::add(Term::var("x"), Term::var("y")))),
                    Term::int(1)
                ),
                Term::int(2)
            )
        );
        let t = parse_term("let x = sample in x * x").unwrap();
        assert_eq!(
            t,
            Term::let_in("x", Term::Sample, Term::mul(Term::var("x"), Term::var("x")))
        );
        let backslash = parse_term("\\x. x").unwrap();
        assert!(backslash.alpha_eq(&Term::lam("z", Term::var("z"))));
    }

    #[test]
    fn parses_running_example() {
        let t = parse_term("(fix phi x. if sample <= 0.5 then x else phi (phi (x + 1))) 1").unwrap();
        let expected = Term::app(
            Term::fix(
                "phi",
                "x",
                Term::ite(
                    Term::sub(Term::Sample, Term::ratio(1, 2)),
                    Term::var("x"),
                    Term::app(
                        Term::var("phi"),
                        Term::app(Term::var("phi"), Term::add(Term::var("x"), Term::int(1))),
                    ),
                ),
            ),
            Term::int(1),
        );
        assert_eq!(t, expected);
        assert!(t.is_closed());
    }

    #[test]
    fn comparisons_desugar_to_guards() {
        // Parsing succeeds even with free variables (closedness is a separate check).
        assert!(parse_term("if x <= 2 then 0 else 1").is_ok());
        let le = parse_term("lam x. if x <= 2 then 0 else 1").unwrap();
        let gt = parse_term("lam x. if x > 2 then 0 else 1").unwrap();
        match (le, gt) {
            (Term::Lam(_, le_body), Term::Lam(_, gt_body)) => {
                match (*le_body, *gt_body) {
                    (Term::If(g1, _, _), Term::If(g2, _, _)) => {
                        assert_eq!(*g1, Term::sub(Term::var("x"), Term::int(2)));
                        assert_eq!(*g2, Term::sub(Term::int(2), Term::var("x")));
                    }
                    _ => panic!("expected conditionals"),
                }
            }
            _ => panic!("expected lambdas"),
        }
    }

    #[test]
    fn parses_flip_and_score_and_prims() {
        let t = parse_term("flip(1/3, 0, score(1))").unwrap();
        assert_eq!(
            t,
            Term::ite(
                Term::sub(Term::Sample, Term::ratio(1, 3)),
                Term::int(0),
                Term::score(Term::int(1))
            )
        );
        let t = parse_term("sig(3) + exp(0) + min(1, 2)").unwrap();
        assert_eq!(t.count_samples(), 0);
        assert!(matches!(t, Term::Prim(Prim::Add, _)));
        // A prim name not followed by `(` is an ordinary variable.
        let t = parse_term("lam exp. exp").unwrap();
        assert!(t.alpha_eq(&Term::lam("e", Term::var("e"))));
    }

    #[test]
    fn flip_works_in_argument_position() {
        let t = parse_term("phi flip(0.5, x, y)");
        assert!(t.is_ok());
        let t = t.unwrap();
        match t {
            Term::App(f, arg) => {
                assert_eq!(*f, Term::var("phi"));
                assert!(matches!(*arg, Term::If(_, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_term("if x then 1").is_err());
        assert!(parse_term("(1 + 2").is_err());
        assert!(parse_term("1 2 3 )").is_err());
        assert!(parse_term("add(1)").is_err());
        assert!(parse_term("let = 3 in 4").is_err());
        assert!(parse_term("").is_err());
        assert!(parse_term("1/0").is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let err = parse_term("if 1 then 2 banana 3").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("expected"), "{msg}");
    }

    #[test]
    fn free_variables_survive_parsing() {
        let t = parse_term("phi (x + 1)").unwrap();
        let fv = t.free_vars();
        assert!(fv.contains(&ident("phi")));
        assert!(fv.contains(&ident("x")));
    }
}
