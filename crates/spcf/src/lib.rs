//! Statistical PCF (SPCF): the probabilistic functional language studied by
//! *"On Probabilistic Termination of Functional Programs with Continuous
//! Distributions"* (Beutner & Ong, PLDI 2021).
//!
//! This crate is the language substrate of the `probterm` workspace. It
//! provides:
//!
//! * the abstract syntax and capture-avoiding substitution ([`Term`],
//!   [`Prim`]), plus α-invariant canonical forms and 128-bit content hashes
//!   ([`Term::canonical_form`], [`Term::canonical_key`]) used by the analysis
//!   service to content-address its result cache,
//! * the simple type system and inference ([`infer_type`], [`SimpleType`]),
//! * a parser and pretty-printer for a small surface syntax ([`parse_term`]),
//! * the call-by-name and call-by-value sampling-style small-step semantics
//!   over explicit traces ([`FixedTrace`]) or random samplers
//!   ([`RandomSampler`]): [`run`] executes on an O(1)-per-step environment
//!   machine ([`machine`]), with the literal substitution stepper kept as
//!   the reference semantics ([`run_substitution`]),
//! * a Monte-Carlo reference estimator ([`estimate_termination`]) used to
//!   cross-validate the exact analyses,
//! * the catalogue of benchmark programs used in the paper's evaluation
//!   ([`catalog`]).
//!
//! # Quick example
//!
//! ```
//! use probterm_spcf::{parse_term, run, FixedTrace, Strategy};
//!
//! // Example 1.1 (1): the unreliable 3D printer.
//! let printer = parse_term(
//!     "(fix phi x. if sample <= 0.5 then x else phi (x + 1)) 1",
//! ).unwrap();
//!
//! // Deterministic evaluation on the trace (0.9, 0.1): one failed print, then success.
//! let mut trace = FixedTrace::from_ratios(&[(9, 10), (1, 10)]);
//! let result = run(Strategy::CallByName, &printer, &mut trace, 1_000);
//! assert!(result.outcome.is_terminated());
//! ```

#![warn(missing_docs)]

pub mod absmachine;
mod ast;
mod canon;
pub mod catalog;
mod eval;
mod lexer;
pub mod machine;
mod montecarlo;
mod oracle;
mod parser;
mod pretty;
mod trace;
mod types;

pub use ast::{fresh_ident, ident, Ident, Prim, Term};
pub use eval::{
    run, run_substitution, step, terminates_on_trace, Outcome, Run, Step, Strategy, StuckReason,
};
pub use machine::{run_machine, run_machine_summary, RunSummary, SummaryOutcome};
pub use lexer::{tokenize, LexError, Token, TokenKind};
pub use oracle::{
    branching_behaviour, oracle_string, run_with_oracle, Direction, Oracle, OracleRun,
};
pub use montecarlo::{
    estimate_termination, estimate_termination_profiled, try_estimate_termination,
    MonteCarloConfig, MonteCarloEstimate,
};
pub use parser::{parse_term, ParseError};
pub use trace::{trace_len, FixedTrace, RandomSampler, Sampler, Trace};
pub use types::{infer_type, infer_type_in, is_first_order_fixpoint, is_program, SimpleType, TypeError};
