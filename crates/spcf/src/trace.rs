//! Execution traces and sample sources.
//!
//! The sampling-style semantics (paper §2.3, after Kozen) evaluates a term
//! against a *trace* — a finite sequence of numbers in `[0, 1]` that are
//! consumed left-to-right by `sample` redexes. [`Sampler`] abstracts over how
//! the next random draw is produced:
//!
//! * [`FixedTrace`] replays a predetermined trace and fails when it is
//!   exhausted (this is the deterministic semantics `⟨M, s⟩ → ⟨M′, s′⟩`),
//! * [`RandomSampler`] draws lazily from a pseudo-random number generator
//!   (used by the Monte-Carlo reference estimator).

use probterm_numerics::Rational;
use rand::Rng;

/// A finite execution trace: the sequence of probabilistic outcomes consumed
/// by an evaluation.
pub type Trace = Vec<Rational>;

/// A source of samples for the operational semantics.
pub trait Sampler {
    /// Produces the next sample in `[0, 1]`, or `None` if the source is
    /// exhausted (in which case evaluation of `sample` is stuck).
    fn next_sample(&mut self) -> Option<Rational>;
}

/// Replays a fixed trace of samples, failing when it runs out.
///
/// # Examples
///
/// ```
/// use probterm_numerics::Rational;
/// use probterm_spcf::{FixedTrace, Sampler};
///
/// let mut t = FixedTrace::new(vec![Rational::from_ratio(1, 3)]);
/// assert_eq!(t.next_sample(), Some(Rational::from_ratio(1, 3)));
/// assert_eq!(t.next_sample(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FixedTrace {
    values: Vec<Rational>,
    position: usize,
}

impl FixedTrace {
    /// Creates a fixed trace from the given samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample lies outside `[0, 1]`.
    pub fn new(values: Vec<Rational>) -> FixedTrace {
        assert!(
            values.iter().all(Rational::in_unit_interval),
            "trace values must lie in [0, 1]"
        );
        FixedTrace { values, position: 0 }
    }

    /// Constructs a trace from `(numerator, denominator)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a denominator is zero or a value lies outside `[0, 1]`.
    pub fn from_ratios(ratios: &[(i64, i64)]) -> FixedTrace {
        FixedTrace::new(
            ratios
                .iter()
                .map(|(n, d)| Rational::from_ratio(*n, *d))
                .collect(),
        )
    }

    /// Number of samples consumed so far.
    pub fn consumed(&self) -> usize {
        self.position
    }

    /// Number of samples remaining.
    pub fn remaining(&self) -> usize {
        self.values.len() - self.position
    }

    /// Returns `true` when every sample has been consumed (the paper's
    /// termination judgement `⟨M, s⟩ →* ⟨V, ε⟩` requires the trace to be used
    /// up exactly).
    pub fn is_exhausted(&self) -> bool {
        self.position == self.values.len()
    }
}

impl Sampler for FixedTrace {
    fn next_sample(&mut self) -> Option<Rational> {
        let v = self.values.get(self.position)?.clone();
        self.position += 1;
        Some(v)
    }
}

/// Draws samples lazily from a random number generator, recording them so the
/// realised trace can be inspected afterwards.
#[derive(Debug)]
pub struct RandomSampler<R: Rng> {
    rng: R,
    drawn: Trace,
}

impl<R: Rng> RandomSampler<R> {
    /// Creates a sampler over the given RNG.
    pub fn new(rng: R) -> RandomSampler<R> {
        RandomSampler { rng, drawn: Vec::new() }
    }

    /// The samples drawn so far, in order.
    pub fn drawn(&self) -> &[Rational] {
        &self.drawn
    }

    /// Consumes the sampler and returns the realised trace.
    pub fn into_trace(self) -> Trace {
        self.drawn
    }
}

impl<R: Rng> Sampler for RandomSampler<R> {
    fn next_sample(&mut self) -> Option<Rational> {
        let v: f64 = self.rng.gen_range(0.0..1.0);
        let q = Rational::from_f64_exact(v);
        self.drawn.push(q.clone());
        Some(q)
    }
}

/// The weight (Lebesgue-style product measure contribution) of an interval
/// around a trace is only defined for interval traces; for standard traces the
/// useful quantity is their length, exposed here for reporting purposes.
pub fn trace_len(trace: &Trace) -> usize {
    trace.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_trace_replays_in_order() {
        let mut t = FixedTrace::from_ratios(&[(1, 2), (1, 4)]);
        assert_eq!(t.remaining(), 2);
        assert_eq!(t.next_sample(), Some(Rational::from_ratio(1, 2)));
        assert_eq!(t.next_sample(), Some(Rational::from_ratio(1, 4)));
        assert!(t.is_exhausted());
        assert_eq!(t.next_sample(), None);
        assert_eq!(t.consumed(), 2);
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn fixed_trace_rejects_out_of_range() {
        let _ = FixedTrace::from_ratios(&[(3, 2)]);
    }

    #[test]
    fn random_sampler_records_draws_in_unit_interval() {
        let mut s = RandomSampler::new(StdRng::seed_from_u64(42));
        for _ in 0..50 {
            let v = s.next_sample().unwrap();
            assert!(v.in_unit_interval());
        }
        assert_eq!(s.drawn().len(), 50);
        assert_eq!(s.into_trace().len(), 50);
    }
}
