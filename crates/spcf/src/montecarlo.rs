//! Monte-Carlo reference estimator for termination probabilities.
//!
//! The trace semantics interprets `Pterm(M)` as the measure of terminating
//! traces (Definition 2.1). This module estimates that measure by repeated
//! randomised evaluation. It is *not* part of the paper's contribution — the
//! whole point of §3 is that enumeration of runs cannot give sound lower
//! bounds — but it provides an invaluable statistical cross-check for the
//! exact analyses implemented in the other crates, and is used as such by the
//! integration tests and the benchmark harness.

use crate::ast::Term;
use crate::eval::Strategy;
use crate::machine::{run_machine_summary_profiled, SummaryOutcome};
use crate::trace::RandomSampler;
use probterm_telemetry::{EngineProfile, ProfileCell, SharedProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a Monte-Carlo estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Number of independent runs.
    pub runs: usize,
    /// Step budget per run; runs exceeding it are counted as non-terminating.
    pub max_steps: usize,
    /// RNG seed (fixed for reproducibility).
    pub seed: u64,
    /// Evaluation strategy.
    pub strategy: Strategy,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            runs: 10_000,
            max_steps: 10_000,
            seed: 0xC0FFEE,
            strategy: Strategy::CallByName,
        }
    }
}

/// The result of a Monte-Carlo estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloEstimate {
    /// Number of runs performed.
    pub runs: usize,
    /// Number of runs that terminated within the step budget.
    pub terminated: usize,
    /// Number of runs that got stuck (score failure, domain error, …).
    pub stuck: usize,
    /// Number of runs that exhausted the step budget.
    pub out_of_fuel: usize,
    /// Average number of small steps over terminating runs.
    pub mean_steps: f64,
    /// Average number of samples consumed over terminating runs.
    pub mean_samples: f64,
}

impl MonteCarloEstimate {
    /// The estimated probability of termination.
    ///
    /// An estimate over zero runs carries no information; it reports `0.0`
    /// rather than `NaN`.
    pub fn probability(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.terminated as f64 / self.runs as f64
    }

    /// A half-width of the 99% confidence interval for the estimated
    /// probability, using the Wilson score interval.
    ///
    /// The Wilson interval stays meaningful at the boundary `p̂ ∈ {0, 1}`
    /// (where the naive normal approximation degenerates to width zero even
    /// after a handful of runs) — exactly the regime AST benchmarks live in.
    /// For zero runs the uncertainty is total and the half-width is `1.0`.
    pub fn confidence_99(&self) -> f64 {
        if self.runs == 0 {
            return 1.0;
        }
        let n = self.runs as f64;
        let p = self.probability();
        let z = 2.576f64; // 99% two-sided normal quantile
        let z2 = z * z;
        (z / (1.0 + z2 / n)) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt()
    }
}

/// Estimates the probability of termination of a closed term.
///
/// # Examples
///
/// ```
/// use probterm_spcf::{estimate_termination, parse_term, MonteCarloConfig};
///
/// let geo = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
/// let config = MonteCarloConfig { runs: 500, ..Default::default() };
/// let estimate = estimate_termination(&geo, &config);
/// assert!(estimate.probability() > 0.95);
/// ```
pub fn estimate_termination(term: &Term, config: &MonteCarloConfig) -> MonteCarloEstimate {
    match try_estimate_termination(term, config, |_| Ok::<(), std::convert::Infallible>(())) {
        Ok(estimate) => estimate,
        Err(never) => match never {},
    }
}

/// Like [`estimate_termination`], but calls `check(i)` before run `i` and
/// aborts with its error if it fails — the cooperative-interruption hook the
/// analysis service uses to enforce per-request deadlines between runs.
///
/// Run `i` always draws from `StdRng::seed_from_u64(seed + i)`, so an
/// uninterrupted call returns exactly what [`estimate_termination`] does
/// (which is implemented on top of this with an infallible `check`).
///
/// # Errors
///
/// Returns the first error produced by `check`, discarding the partial tally.
pub fn try_estimate_termination<E>(
    term: &Term,
    config: &MonteCarloConfig,
    check: impl FnMut(usize) -> Result<(), E>,
) -> Result<MonteCarloEstimate, E> {
    estimate_inner(term, config, check, None)
}

/// Like [`estimate_termination`], additionally tallying an aggregate machine
/// profile (steps and event kinds summed over every run).
pub fn estimate_termination_profiled(
    term: &Term,
    config: &MonteCarloConfig,
) -> (MonteCarloEstimate, EngineProfile) {
    let cell = ProfileCell::shared();
    let estimate =
        match estimate_inner(term, config, |_| Ok::<(), std::convert::Infallible>(()), Some(&cell))
        {
            Ok(estimate) => estimate,
            Err(never) => match never {},
        };
    (estimate, cell.snapshot())
}

fn estimate_inner<E>(
    term: &Term,
    config: &MonteCarloConfig,
    mut check: impl FnMut(usize) -> Result<(), E>,
    profile: Option<&SharedProfile>,
) -> Result<MonteCarloEstimate, E> {
    let mut terminated = 0usize;
    let mut stuck = 0usize;
    let mut out_of_fuel = 0usize;
    let mut total_steps = 0usize;
    let mut total_samples = 0usize;
    for i in 0..config.runs {
        check(i)?;
        let rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
        let mut sampler = RandomSampler::new(rng);
        // The summary entry point skips materialising result/residual terms
        // the estimator would discard (the dominant cost of truncated runs).
        let result = run_machine_summary_profiled(
            config.strategy,
            term,
            &mut sampler,
            config.max_steps,
            profile,
        );
        match result.outcome {
            SummaryOutcome::Terminated => {
                terminated += 1;
                total_steps += result.steps;
                total_samples += result.samples;
            }
            SummaryOutcome::Stuck(_) => stuck += 1,
            SummaryOutcome::OutOfFuel => out_of_fuel += 1,
        }
    }
    let denom = terminated.max(1) as f64;
    Ok(MonteCarloEstimate {
        runs: config.runs,
        terminated,
        stuck,
        out_of_fuel,
        mean_steps: total_steps as f64 / denom,
        mean_samples: total_samples as f64 / denom,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;

    fn estimate(src: &str, strategy: Strategy) -> MonteCarloEstimate {
        let term = parse_term(src).unwrap();
        estimate_termination(
            &term,
            &MonteCarloConfig {
                // Terminating runs of these programs are orders of magnitude
                // shorter than 1 500 steps, so the estimates are unchanged
                // from the old 8 000-step budget while divergent runs (which
                // always burn the whole budget) cost 5× less.
                runs: 1_500,
                max_steps: 1_500,
                seed: 7,
                strategy,
            },
        )
    }

    #[test]
    fn ast_terms_estimate_close_to_one() {
        let e = estimate(
            "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0",
            Strategy::CallByName,
        );
        assert!(e.probability() > 0.98, "estimate {e:?}");
        assert!(e.stuck == 0);
    }

    #[test]
    fn nonterminating_fraction_of_unfair_printer_matches_closed_form() {
        // Ex. 1.1 (2) with p = 1/4: Pterm = 1/3.
        let e = estimate(
            "(fix phi x. if sample <= 1/4 then x else phi (phi (x + 1))) 1",
            Strategy::CallByValue,
        );
        let p = e.probability();
        assert!((p - 1.0 / 3.0).abs() < 0.05, "estimate {p}");
    }

    #[test]
    fn golden_ratio_term_estimate() {
        // gr: Pterm = (√5 - 1)/2 ≈ 0.618.
        let e = estimate(
            "(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0",
            Strategy::CallByValue,
        );
        let expected = (5f64.sqrt() - 1.0) / 2.0;
        assert!((e.probability() - expected).abs() < 0.05, "estimate {e:?}");
    }

    #[test]
    fn diverging_term_estimates_zero() {
        let e = estimate("(fix phi x. phi x) 0", Strategy::CallByName);
        assert_eq!(e.terminated, 0);
        assert!(e.probability() < 1e-9);
        assert_eq!(e.out_of_fuel, e.runs);
    }

    #[test]
    fn zero_runs_yield_no_nan_and_total_uncertainty() {
        let term = parse_term("0").unwrap();
        let e = estimate_termination(
            &term,
            &MonteCarloConfig { runs: 0, max_steps: 10, seed: 1, strategy: Strategy::CallByName },
        );
        assert_eq!(e.probability(), 0.0);
        assert!(!e.probability().is_nan());
        assert_eq!(e.confidence_99(), 1.0);
    }

    #[test]
    fn wilson_interval_is_positive_at_the_boundary() {
        // Every run of a value terminates: p̂ = 1. The normal approximation
        // would report a zero-width interval; Wilson must not.
        let term = parse_term("1 + 1").unwrap();
        let e = estimate_termination(
            &term,
            &MonteCarloConfig { runs: 100, max_steps: 10, seed: 1, strategy: Strategy::CallByName },
        );
        assert_eq!(e.probability(), 1.0);
        let half_width = e.confidence_99();
        assert!(half_width > 0.0, "degenerate interval at p = 1");
        assert!(half_width < 0.1, "implausibly wide interval {half_width}");
        // More runs must tighten the interval.
        let tighter = estimate_termination(
            &term,
            &MonteCarloConfig { runs: 400, max_steps: 10, seed: 1, strategy: Strategy::CallByName },
        );
        assert!(tighter.confidence_99() < half_width);
    }

    #[test]
    fn confidence_interval_is_reasonable() {
        let e = estimate(
            "if sample <= 1/2 then 0 else (fix phi x. phi x) 0",
            Strategy::CallByName,
        );
        assert!((e.probability() - 0.5).abs() < 0.05);
        assert!(e.confidence_99() < 0.05);
    }
}
