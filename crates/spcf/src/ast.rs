//! Abstract syntax of Statistical PCF (SPCF).
//!
//! SPCF (paper §2.2) is a simply-typed λ-calculus with
//!
//! * real-valued numerals and measurable primitive functions `f ∈ F`,
//! * a fixpoint constructor `μφ x. M` binding the recursive function `φ` and
//!   its argument `x`,
//! * `sample`, drawing from the uniform distribution on `[0, 1]`,
//! * `score(M)`, used for stochastic conditioning (only its success/failure
//!   matters for termination, see paper footnote 7),
//! * conditionals `if(M, N, P)` branching on whether `M ≤ 0`.
//!
//! Numerals are represented by exact [`Rational`]s; the paper's
//! recursion-theoretic results (Thm. 3.10) are stated for rational numerals
//! and `Q`-interval-preserving primitives, which is exactly the fragment
//! implemented here.

use probterm_numerics::Rational;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// An identifier (variable name).
pub type Ident = Rc<str>;

/// Creates an identifier from a string slice.
pub fn ident(s: &str) -> Ident {
    Rc::from(s)
}

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Generates a globally fresh identifier based on `base`.
///
/// Fresh names contain a `#`, which the lexer rejects, so they can never
/// collide with user-written identifiers.
pub fn fresh_ident(base: &str) -> Ident {
    let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
    let base = base.split('#').next().unwrap_or("x");
    Rc::from(format!("{base}#{n}"))
}

/// Primitive (measurable) first-order functions `f : R^{|f|} → R`.
///
/// All of them are continuous and hence interval preserving (Lemma 3.2); all
/// except `Floor` have measure-zero level sets and are therefore interval
/// separable (Lemma 3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// Binary addition.
    Add,
    /// Binary subtraction.
    Sub,
    /// Binary multiplication.
    Mul,
    /// Unary negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
    /// Exponential function.
    Exp,
    /// Natural logarithm (partial: undefined on non-positive reals).
    Log,
    /// Logistic sigmoid `sig(x) = 1 / (1 + e^{-x})`, used by Ex. 5.1/5.15.
    Sig,
    /// Floor function (interval preserving but *not* interval separable).
    Floor,
}

impl Prim {
    /// The arity `|f|` of the primitive.
    pub fn arity(self) -> usize {
        match self {
            Prim::Add | Prim::Sub | Prim::Mul | Prim::Min | Prim::Max => 2,
            Prim::Neg | Prim::Abs | Prim::Exp | Prim::Log | Prim::Sig | Prim::Floor => 1,
        }
    }

    /// The surface-syntax name of the primitive.
    pub fn name(self) -> &'static str {
        match self {
            Prim::Add => "add",
            Prim::Sub => "sub",
            Prim::Mul => "mul",
            Prim::Neg => "neg",
            Prim::Abs => "abs",
            Prim::Min => "min",
            Prim::Max => "max",
            Prim::Exp => "exp",
            Prim::Log => "log",
            Prim::Sig => "sig",
            Prim::Floor => "floor",
        }
    }

    /// Looks a primitive up by its surface-syntax name.
    pub fn from_name(name: &str) -> Option<Prim> {
        Some(match name {
            "add" => Prim::Add,
            "sub" => Prim::Sub,
            "mul" => Prim::Mul,
            "neg" => Prim::Neg,
            "abs" => Prim::Abs,
            "min" => Prim::Min,
            "max" => Prim::Max,
            "exp" => Prim::Exp,
            "log" => Prim::Log,
            "sig" => Prim::Sig,
            "floor" => Prim::Floor,
            _ => return None,
        })
    }

    /// Evaluates the primitive on exact rational arguments.
    ///
    /// Transcendental primitives (`exp`, `log`, `sig`) are evaluated through
    /// `f64` and converted back exactly; this is the reference semantics used
    /// for Monte-Carlo cross-validation only — the interval semantics uses
    /// certified enclosures instead.
    ///
    /// Returns `None` when the argument is outside the primitive's domain
    /// (e.g. `log` of a non-positive number).
    ///
    /// # Panics
    ///
    /// Panics if the number of arguments does not match [`Prim::arity`].
    pub fn eval(self, args: &[Rational]) -> Option<Rational> {
        assert_eq!(args.len(), self.arity(), "arity mismatch for {self:?}");
        Some(match self {
            Prim::Add => &args[0] + &args[1],
            Prim::Sub => &args[0] - &args[1],
            Prim::Mul => &args[0] * &args[1],
            Prim::Neg => -&args[0],
            Prim::Abs => args[0].abs(),
            Prim::Min => args[0].clone().min(args[1].clone()),
            Prim::Max => args[0].clone().max(args[1].clone()),
            Prim::Exp => Rational::from_f64_exact(args[0].to_f64().exp()),
            Prim::Log => {
                if !args[0].is_positive() {
                    return None;
                }
                Rational::from_f64_exact(args[0].to_f64().ln())
            }
            Prim::Sig => {
                let x = args[0].to_f64();
                Rational::from_f64_exact(1.0 / (1.0 + (-x).exp()))
            }
            Prim::Floor => Rational::from_bigint(args[0].floor()),
        })
    }

    /// Returns `true` if the primitive is interval separable (Lemma 3.7):
    /// continuous with measure-zero level sets. `Floor` is the counterexample
    /// kept around for tests of the completeness hypotheses.
    pub fn is_interval_separable(self) -> bool {
        !matches!(self, Prim::Floor)
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A term of SPCF.
///
/// The grammar follows paper §2.2:
///
/// ```text
/// V ::= x | r | λx. M | μφ x. M
/// M ::= V | M N | if(M, N, P) | f(M₁, …, M_{|f|}) | sample | score(M)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A variable.
    Var(Ident),
    /// A real-valued (here: rational) numeral.
    Num(Rational),
    /// A λ-abstraction `λx. M`.
    Lam(Ident, Box<Term>),
    /// A fixpoint `μφ x. M`, binding the recursive function `φ` and argument `x`.
    Fix(Ident, Ident, Box<Term>),
    /// Application `M N`.
    App(Box<Term>, Box<Term>),
    /// Conditional `if(M, N, P)`: reduces to `N` when `M ≤ 0` and to `P` otherwise.
    If(Box<Term>, Box<Term>, Box<Term>),
    /// Primitive function application `f(M₁, …, M_{|f|})`.
    Prim(Prim, Vec<Term>),
    /// A draw from the uniform distribution on `[0, 1]`.
    Sample,
    /// Conditioning weight `score(M)`; reduction is stuck on negative arguments.
    Score(Box<Term>),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(ident(name))
    }

    /// Convenience constructor for an integer numeral.
    pub fn int(v: i64) -> Term {
        Term::Num(Rational::from_int(v))
    }

    /// Convenience constructor for a rational numeral `n/d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn ratio(n: i64, d: i64) -> Term {
        Term::Num(Rational::from_ratio(n, d))
    }

    /// Convenience constructor for a λ-abstraction.
    pub fn lam(x: &str, body: Term) -> Term {
        Term::Lam(ident(x), Box::new(body))
    }

    /// Convenience constructor for a fixpoint `μφ x. M`.
    pub fn fix(phi: &str, x: &str, body: Term) -> Term {
        Term::Fix(ident(phi), ident(x), Box::new(body))
    }

    /// Convenience constructor for application.
    pub fn app(f: Term, a: Term) -> Term {
        Term::App(Box::new(f), Box::new(a))
    }

    /// Applies `f` to several arguments left-associatively.
    pub fn apps(f: Term, args: impl IntoIterator<Item = Term>) -> Term {
        args.into_iter().fold(f, Term::app)
    }

    /// Convenience constructor for the conditional `if(guard, then, else)`.
    pub fn ite(guard: Term, then: Term, els: Term) -> Term {
        Term::If(Box::new(guard), Box::new(then), Box::new(els))
    }

    /// Binary addition `M + N`.
    pub fn add(a: Term, b: Term) -> Term {
        Term::Prim(Prim::Add, vec![a, b])
    }

    /// Binary subtraction `M - N`.
    pub fn sub(a: Term, b: Term) -> Term {
        Term::Prim(Prim::Sub, vec![a, b])
    }

    /// Binary multiplication `M * N`.
    pub fn mul(a: Term, b: Term) -> Term {
        Term::Prim(Prim::Mul, vec![a, b])
    }

    /// Score construct.
    pub fn score(m: Term) -> Term {
        Term::Score(Box::new(m))
    }

    /// `let x = M in N`, desugared to `(λx. N) M`.
    pub fn let_in(x: &str, bound: Term, body: Term) -> Term {
        Term::app(Term::lam(x, body), bound)
    }

    /// Probabilistic choice `M ⊕_p N ≔ if(sample − p, M, N)` (paper §2.2).
    ///
    /// Takes the left branch with probability `p`.
    pub fn choice(p: Rational, left: Term, right: Term) -> Term {
        Term::ite(
            Term::sub(Term::Sample, Term::Num(p)),
            left,
            right,
        )
    }

    /// Fair probabilistic choice `M ⊕ N ≔ M ⊕_{1/2} N`.
    pub fn fair_choice(left: Term, right: Term) -> Term {
        Term::choice(Rational::from_ratio(1, 2), left, right)
    }

    /// Guard `M ≤ N`, i.e. a term that is `≤ 0` exactly when `M ≤ N`.
    pub fn leq(a: Term, b: Term) -> Term {
        Term::sub(a, b)
    }

    /// Returns `true` if the term is a value (paper §2.2).
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            Term::Var(_) | Term::Num(_) | Term::Lam(_, _) | Term::Fix(_, _, _)
        )
    }

    /// Returns the numeral's value if the term is a numeral.
    pub fn as_num(&self) -> Option<&Rational> {
        match self {
            Term::Num(r) => Some(r),
            _ => None,
        }
    }

    /// The set of free variables of the term.
    pub fn free_vars(&self) -> BTreeSet<Ident> {
        fn go(t: &Term, bound: &mut Vec<Ident>, acc: &mut BTreeSet<Ident>) {
            match t {
                Term::Var(x) => {
                    if !bound.contains(x) {
                        acc.insert(x.clone());
                    }
                }
                Term::Num(_) | Term::Sample => {}
                Term::Lam(x, body) => {
                    bound.push(x.clone());
                    go(body, bound, acc);
                    bound.pop();
                }
                Term::Fix(phi, x, body) => {
                    bound.push(phi.clone());
                    bound.push(x.clone());
                    go(body, bound, acc);
                    bound.pop();
                    bound.pop();
                }
                Term::App(f, a) => {
                    go(f, bound, acc);
                    go(a, bound, acc);
                }
                Term::If(g, t1, t2) => {
                    go(g, bound, acc);
                    go(t1, bound, acc);
                    go(t2, bound, acc);
                }
                Term::Prim(_, args) => {
                    for a in args {
                        go(a, bound, acc);
                    }
                }
                Term::Score(m) => go(m, bound, acc),
            }
        }
        let mut acc = BTreeSet::new();
        go(self, &mut Vec::new(), &mut acc);
        acc
    }

    /// Returns `true` if the term is closed (has no free variables).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Capture-avoiding substitution `self[replacement / x]`.
    ///
    /// Bound variables that would capture free variables of `replacement` are
    /// α-renamed to fresh names.
    pub fn subst(&self, x: &Ident, replacement: &Term) -> Term {
        match self {
            Term::Var(y) => {
                if y == x {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Term::Num(_) | Term::Sample => self.clone(),
            Term::Lam(y, body) => {
                if y == x {
                    self.clone()
                } else if replacement.free_vars().contains(y) {
                    let fresh = fresh_ident(y);
                    let renamed = body.subst(y, &Term::Var(fresh.clone()));
                    Term::Lam(fresh, Box::new(renamed.subst(x, replacement)))
                } else {
                    Term::Lam(y.clone(), Box::new(body.subst(x, replacement)))
                }
            }
            Term::Fix(phi, y, body) => {
                if phi == x || y == x {
                    self.clone()
                } else {
                    let fv = replacement.free_vars();
                    let (phi, body) = if fv.contains(phi) {
                        let fresh = fresh_ident(phi);
                        let body = body.subst(phi, &Term::Var(fresh.clone()));
                        (fresh, body)
                    } else {
                        (phi.clone(), (**body).clone())
                    };
                    let (y, body) = if fv.contains(&y.clone()) {
                        let fresh = fresh_ident(y);
                        let body = body.subst(y, &Term::Var(fresh.clone()));
                        (fresh, body)
                    } else {
                        (y.clone(), body)
                    };
                    Term::Fix(phi, y, Box::new(body.subst(x, replacement)))
                }
            }
            Term::App(f, a) => Term::App(
                Box::new(f.subst(x, replacement)),
                Box::new(a.subst(x, replacement)),
            ),
            Term::If(g, t1, t2) => Term::If(
                Box::new(g.subst(x, replacement)),
                Box::new(t1.subst(x, replacement)),
                Box::new(t2.subst(x, replacement)),
            ),
            Term::Prim(p, args) => Term::Prim(
                *p,
                args.iter().map(|a| a.subst(x, replacement)).collect(),
            ),
            Term::Score(m) => Term::Score(Box::new(m.subst(x, replacement))),
        }
    }

    /// Simultaneous substitution of several variables.
    pub fn subst_many(&self, substitutions: &[(Ident, Term)]) -> Term {
        // Sequential substitution is sound here because callers only use it
        // with replacements that are closed terms.
        let mut out = self.clone();
        for (x, r) in substitutions {
            out = out.subst(x, r);
        }
        out
    }

    /// Number of AST nodes (a rough size measure used by tests and reports).
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Num(_) | Term::Sample => 1,
            Term::Lam(_, b) | Term::Score(b) => 1 + b.size(),
            Term::Fix(_, _, b) => 1 + b.size(),
            Term::App(f, a) => 1 + f.size() + a.size(),
            Term::If(g, t, e) => 1 + g.size() + t.size() + e.size(),
            Term::Prim(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }

    /// Counts the `sample` occurrences in the term (an upper bound on the
    /// number of draws per recursion-free run).
    pub fn count_samples(&self) -> usize {
        match self {
            Term::Sample => 1,
            Term::Var(_) | Term::Num(_) => 0,
            Term::Lam(_, b) | Term::Score(b) | Term::Fix(_, _, b) => b.count_samples(),
            Term::App(f, a) => f.count_samples() + a.count_samples(),
            Term::If(g, t, e) => g.count_samples() + t.count_samples() + e.count_samples(),
            Term::Prim(_, args) => args.iter().map(Term::count_samples).sum(),
        }
    }

    /// Checks α-equivalence of two terms.
    pub fn alpha_eq(&self, other: &Term) -> bool {
        fn go(a: &Term, b: &Term, env: &mut Vec<(Ident, Ident)>) -> bool {
            match (a, b) {
                (Term::Var(x), Term::Var(y)) => {
                    for (bx, by) in env.iter().rev() {
                        if bx == x || by == y {
                            return bx == x && by == y;
                        }
                    }
                    x == y
                }
                (Term::Num(x), Term::Num(y)) => x == y,
                (Term::Sample, Term::Sample) => true,
                (Term::Lam(x, bx), Term::Lam(y, by)) => {
                    env.push((x.clone(), y.clone()));
                    let r = go(bx, by, env);
                    env.pop();
                    r
                }
                (Term::Fix(px, x, bx), Term::Fix(py, y, by)) => {
                    env.push((px.clone(), py.clone()));
                    env.push((x.clone(), y.clone()));
                    let r = go(bx, by, env);
                    env.pop();
                    env.pop();
                    r
                }
                (Term::App(fa, aa), Term::App(fb, ab)) => go(fa, fb, env) && go(aa, ab, env),
                (Term::If(ga, ta, ea), Term::If(gb, tb, eb)) => {
                    go(ga, gb, env) && go(ta, tb, env) && go(ea, eb, env)
                }
                (Term::Prim(pa, argsa), Term::Prim(pb, argsb)) => {
                    pa == pb
                        && argsa.len() == argsb.len()
                        && argsa.iter().zip(argsb).all(|(x, y)| go(x, y, env))
                }
                (Term::Score(ma), Term::Score(mb)) => go(ma, mb, env),
                _ => false,
            }
        }
        go(self, other, &mut Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_arities_and_names_roundtrip() {
        for p in [
            Prim::Add,
            Prim::Sub,
            Prim::Mul,
            Prim::Neg,
            Prim::Abs,
            Prim::Min,
            Prim::Max,
            Prim::Exp,
            Prim::Log,
            Prim::Sig,
            Prim::Floor,
        ] {
            assert_eq!(Prim::from_name(p.name()), Some(p));
            assert!(p.arity() >= 1 && p.arity() <= 2);
        }
        assert_eq!(Prim::from_name("nonsense"), None);
    }

    #[test]
    fn prim_eval_exact_cases() {
        let two = Rational::from_int(2);
        let neg3 = Rational::from_int(-3);
        assert_eq!(Prim::Add.eval(&[two.clone(), neg3.clone()]), Some(Rational::from_int(-1)));
        assert_eq!(Prim::Mul.eval(&[two.clone(), neg3.clone()]), Some(Rational::from_int(-6)));
        assert_eq!(Prim::Abs.eval(&[neg3.clone()]), Some(Rational::from_int(3)));
        assert_eq!(Prim::Min.eval(&[two.clone(), neg3.clone()]), Some(neg3.clone()));
        assert_eq!(Prim::Max.eval(&[two.clone(), neg3.clone()]), Some(two.clone()));
        assert_eq!(
            Prim::Floor.eval(&[Rational::from_ratio(7, 2)]),
            Some(Rational::from_int(3))
        );
        assert_eq!(Prim::Log.eval(&[Rational::zero()]), None);
        assert!(Prim::Sig.eval(&[Rational::zero()]).unwrap() == Rational::from_ratio(1, 2));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn prim_eval_wrong_arity_panics() {
        let _ = Prim::Add.eval(&[Rational::one()]);
    }

    #[test]
    fn free_vars_and_closedness() {
        // μφ x. if sample ≤ p then x else φ (x + 1)   with p free
        let body = Term::ite(
            Term::leq(Term::Sample, Term::var("p")),
            Term::var("x"),
            Term::app(Term::var("phi"), Term::add(Term::var("x"), Term::int(1))),
        );
        let term = Term::fix("phi", "x", body);
        let fv = term.free_vars();
        assert_eq!(fv.len(), 1);
        assert!(fv.contains(&ident("p")));
        assert!(!term.is_closed());
        let closed = term.subst(&ident("p"), &Term::ratio(1, 2));
        assert!(closed.is_closed());
    }

    #[test]
    fn substitution_avoids_capture() {
        // (λy. x) [y / x]  must not capture: result is λy'. y
        let t = Term::lam("y", Term::var("x"));
        let result = t.subst(&ident("x"), &Term::var("y"));
        match result {
            Term::Lam(binder, body) => {
                assert_ne!(&*binder, "y");
                assert_eq!(*body, Term::var("y"));
            }
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn substitution_respects_shadowing() {
        // (λx. x) [1 / x] = λx. x
        let t = Term::lam("x", Term::var("x"));
        assert_eq!(t.subst(&ident("x"), &Term::int(1)), t);
        // fix φ x. φ x   is unaffected by substituting φ or x.
        let f = Term::fix("phi", "x", Term::app(Term::var("phi"), Term::var("x")));
        assert_eq!(f.subst(&ident("phi"), &Term::int(0)), f);
        assert_eq!(f.subst(&ident("x"), &Term::int(0)), f);
    }

    #[test]
    fn alpha_equivalence() {
        let a = Term::lam("x", Term::var("x"));
        let b = Term::lam("y", Term::var("y"));
        assert!(a.alpha_eq(&b));
        let c = Term::lam("x", Term::var("z"));
        let d = Term::lam("y", Term::var("z"));
        assert!(c.alpha_eq(&d));
        assert!(!a.alpha_eq(&c));
        let f1 = Term::fix("f", "x", Term::app(Term::var("f"), Term::var("x")));
        let f2 = Term::fix("g", "y", Term::app(Term::var("g"), Term::var("y")));
        assert!(f1.alpha_eq(&f2));
    }

    #[test]
    fn choice_desugaring() {
        let t = Term::fair_choice(Term::int(0), Term::int(1));
        match t {
            Term::If(guard, _, _) => match *guard {
                Term::Prim(Prim::Sub, ref args) => {
                    assert_eq!(args[0], Term::Sample);
                    assert_eq!(args[1], Term::ratio(1, 2));
                }
                other => panic!("unexpected guard {other:?}"),
            },
            other => panic!("unexpected desugaring {other:?}"),
        }
    }

    #[test]
    fn size_and_sample_count() {
        let t = Term::fair_choice(Term::Sample, Term::int(1));
        assert_eq!(t.count_samples(), 2);
        assert!(t.size() >= 6);
        assert!(Term::int(4).is_value());
        assert!(!Term::score(Term::int(1)).is_value());
    }

    #[test]
    fn fresh_idents_are_distinct() {
        let a = fresh_ident("x");
        let b = fresh_ident("x");
        assert_ne!(a, b);
        assert!(a.contains('#'));
    }
}
