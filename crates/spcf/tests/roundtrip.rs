//! Seeded property tests: the pretty-printer and the parser are mutually
//! inverse up to α-equivalence, with the canonical hash as the equality.
//!
//! `parse_term(pretty(t))` must re-parse every catalogue term and every
//! randomly generated term to a term that is α-equivalent to `t` — checked
//! both with [`Term::alpha_eq`] and with [`Term::canonical_key`], which also
//! cross-validates that the two equivalence checks agree.

use probterm_spcf::{catalog, parse_term, Prim, Term};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Binder-name pools. Generating the same structure with two different pools
/// produces α-equivalent (usually syntactically distinct) terms.
const POOL_A: [&str; 4] = ["x", "y", "phi", "acc"];
const POOL_B: [&str; 4] = ["u", "v", "loop", "state"];

/// Generates a random term with at most `depth` nested constructors.
/// `scope` tracks the bound variables available at this point; `pool` names
/// new binders (reusing pool names on purpose, to exercise shadowing).
fn random_term(rng: &mut StdRng, depth: usize, scope: &mut Vec<String>, pool: &[&str]) -> Term {
    // At depth zero only leaves are available.
    let choice = if depth == 0 { rng.gen_range(0usize..3) } else { rng.gen_range(0usize..10) };
    match choice {
        0 => Term::Num(probterm_numerics_ratio(rng)),
        1 => Term::Sample,
        2 => {
            if scope.is_empty() {
                Term::Num(probterm_numerics_ratio(rng))
            } else {
                let index = rng.gen_range(0usize..scope.len());
                Term::var(&scope[index])
            }
        }
        3 => {
            let name = pool[rng.gen_range(0usize..pool.len())];
            scope.push(name.to_string());
            let body = random_term(rng, depth - 1, scope, pool);
            scope.pop();
            Term::lam(name, body)
        }
        4 => {
            let f = pool[rng.gen_range(0usize..pool.len())];
            let x = pool[rng.gen_range(0usize..pool.len())];
            scope.push(f.to_string());
            scope.push(x.to_string());
            let body = random_term(rng, depth - 1, scope, pool);
            scope.pop();
            scope.pop();
            Term::fix(f, x, body)
        }
        5 => Term::app(
            random_term(rng, depth - 1, scope, pool),
            random_term(rng, depth - 1, scope, pool),
        ),
        6 => Term::ite(
            random_term(rng, depth - 1, scope, pool),
            random_term(rng, depth - 1, scope, pool),
            random_term(rng, depth - 1, scope, pool),
        ),
        7 => Term::score(random_term(rng, depth - 1, scope, pool)),
        8 => {
            let prims = [
                Prim::Add,
                Prim::Sub,
                Prim::Mul,
                Prim::Neg,
                Prim::Abs,
                Prim::Min,
                Prim::Max,
                Prim::Exp,
                Prim::Log,
                Prim::Sig,
                Prim::Floor,
            ];
            let prim = prims[rng.gen_range(0usize..prims.len())];
            let args = (0..prim.arity())
                .map(|_| random_term(rng, depth - 1, scope, pool))
                .collect();
            Term::Prim(prim, args)
        }
        _ => {
            let name = pool[rng.gen_range(0usize..pool.len())];
            let bound = random_term(rng, depth - 1, scope, pool);
            scope.push(name.to_string());
            let body = random_term(rng, depth - 1, scope, pool);
            scope.pop();
            Term::let_in(name, bound, body)
        }
    }
}

/// A small random rational (numerals, including negative ones).
fn probterm_numerics_ratio(rng: &mut StdRng) -> probterm_numerics::Rational {
    probterm_numerics::Rational::from_ratio(rng.gen_range(-20i64..21), rng.gen_range(1i64..8))
}

fn assert_roundtrip(term: &Term, context: &str) -> Result<(), String> {
    let printed = term.to_string();
    let reparsed = parse_term(&printed)
        .map_err(|e| format!("{context}: `{printed}` does not re-parse: {e}"))?;
    if !term.alpha_eq(&reparsed) {
        return Err(format!("{context}: `{printed}` re-parses to an α-distinct term"));
    }
    if term.canonical_key() != reparsed.canonical_key() {
        return Err(format!(
            "{context}: canonical keys disagree after the `{printed}` roundtrip"
        ));
    }
    Ok(())
}

#[test]
fn every_catalogue_term_roundtrips_through_the_printer() {
    let mut all = catalog::table1_benchmarks();
    all.extend(catalog::table2_benchmarks());
    all.push(catalog::triangle_example());
    for b in &all {
        assert_roundtrip(&b.term, &b.name).unwrap();
        // Roundtripping an α-renamed variant must preserve the key too.
        let renamed = match &b.term {
            Term::App(f, a) => Term::app(
                rename_binders(f),
                (**a).clone(),
            ),
            other => rename_binders(other),
        };
        assert!(renamed.alpha_eq(&b.term), "{}", b.name);
        assert_eq!(renamed.canonical_key(), b.term.canonical_key(), "{}", b.name);
    }
}

/// α-renames the outermost binder of `t` via capture-avoiding substitution.
fn rename_binders(t: &Term) -> Term {
    match t {
        Term::Lam(x, body) => {
            let fresh = "renamed_binder";
            Term::lam(fresh, body.subst(x, &Term::var(fresh)))
        }
        Term::Fix(phi, x, body) => {
            let (f2, x2) = ("renamed_phi", "renamed_arg");
            Term::fix(f2, x2, body.subst(phi, &Term::var(f2)).subst(x, &Term::var(x2)))
        }
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random terms (closed and open, with deliberate shadowing) round-trip
    /// through the printer up to α-equivalence.
    #[test]
    fn random_terms_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = 2 + (seed % 4) as usize;
        let term = random_term(&mut rng, depth, &mut Vec::new(), &POOL_A);
        if let Err(message) = assert_roundtrip(&term, "random term") {
            prop_assert!(false, "seed {seed}: {message}");
        }
    }

    /// Generating the same structure with two binder-name pools yields
    /// α-equivalent terms with equal canonical keys — and α-distinct draws
    /// (from different seeds) almost never collide.
    #[test]
    fn canonical_key_is_alpha_invariant_on_random_terms(seed in any::<u64>()) {
        let depth = 2 + (seed % 4) as usize;
        let a = random_term(&mut StdRng::seed_from_u64(seed), depth, &mut Vec::new(), &POOL_A);
        let b = random_term(&mut StdRng::seed_from_u64(seed), depth, &mut Vec::new(), &POOL_B);
        prop_assert!(a.alpha_eq(&b), "same-seed terms must be α-equivalent");
        prop_assert_eq!(a.canonical_key(), b.canonical_key());
        // A structurally different draw must not collide.
        let c = random_term(
            &mut StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15),
            depth,
            &mut Vec::new(),
            &POOL_A,
        );
        prop_assert_eq!(a.alpha_eq(&c), a.canonical_key() == c.canonical_key());
    }
}
