use probterm_spcf::{parse_term, run_machine_summary, FixedTrace, Strategy};

#[test]
fn deep_cbn_truncated_run_drops_without_overflow() {
    let term = parse_term("(fix phi x. phi x) 0").unwrap();
    let mut t = FixedTrace::new(vec![]);
    let s = run_machine_summary(Strategy::CallByName, &term, &mut t, 30_000);
    assert_eq!(s.steps, 30_000);
}
