//! Property-based differential testing of the environment machine against the
//! substitution-based reference semantics (via the seeded `proptest` shim).
//!
//! For random catalogue terms × random finite traces × both strategies, the
//! machine and the reference stepper must agree on the *entire* [`Run`]:
//! outcome (including stuck reasons and `OutOfFuel` residual terms), step
//! count and sample count. Trace prefixes of a terminating run exercise the
//! `TraceExhausted` path; tight step budgets exercise residualization.

use probterm_spcf::{catalog, run_machine, run_substitution, FixedTrace, Run, Strategy, Term};
use proptest::prelude::*;

fn catalogue() -> Vec<Term> {
    let mut all = catalog::table1_benchmarks();
    all.extend(catalog::table2_benchmarks());
    all.push(catalog::triangle_example());
    all.into_iter().map(|b| b.term).collect()
}

fn run_both(
    strategy: Strategy,
    term: &Term,
    ratios: &[(i64, i64)],
    max_steps: usize,
) -> (Run, Run) {
    let mut machine_trace = FixedTrace::from_ratios(ratios);
    let mut reference_trace = FixedTrace::from_ratios(ratios);
    (
        run_machine(strategy, term, &mut machine_trace, max_steps),
        run_substitution(strategy, term, &mut reference_trace, max_steps),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Machine ≡ reference on random catalogue terms and traces, both
    /// strategies, with a budget comfortably above most terminating runs.
    #[test]
    fn machine_matches_reference_on_random_traces(
        term_index in 0usize..16,
        numerators in proptest::collection::vec(0i64..=1000, 0..24),
    ) {
        let terms = catalogue();
        let term = &terms[term_index % terms.len()];
        let ratios: Vec<(i64, i64)> = numerators.iter().map(|n| (*n, 1001)).collect();
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            let (machine, reference) = run_both(strategy, term, &ratios, 600);
            prop_assert_eq!(
                &machine, &reference,
                "{:?} diverged on term #{} trace {:?}",
                strategy, term_index, ratios
            );
        }
    }

    /// Tight, randomised step budgets force fuel exhaustion mid-redex, so the
    /// machine's residualized `OutOfFuel` term must equal the reference's
    /// current term at the same step count.
    #[test]
    fn residual_terms_match_under_random_budgets(
        term_index in 0usize..16,
        budget in 0usize..120,
        seed_num in 0i64..=1000,
    ) {
        let terms = catalogue();
        let term = &terms[term_index % terms.len()];
        // A repeating above-half/below-half trace drives a mix of branches.
        let ratios: Vec<(i64, i64)> = (0..40)
            .map(|i| if i % 3 == 0 { (seed_num, 1001) } else { (900, 1000) })
            .collect();
        for strategy in [Strategy::CallByName, Strategy::CallByValue] {
            let (machine, reference) = run_both(strategy, term, &ratios, budget);
            prop_assert_eq!(
                &machine, &reference,
                "{:?} diverged on term #{} at budget {}",
                strategy, term_index, budget
            );
        }
    }
}
