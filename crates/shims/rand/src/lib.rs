//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no registry access, so the few
//! pieces of `rand` the workspace uses are re-implemented here with the same
//! module paths and signatures:
//!
//! * [`RngCore`] / [`Rng::gen_range`] over half-open ranges,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], implemented as xoshiro256++ seeded through SplitMix64.
//!
//! The generator is deterministic for a given seed (all probterm call sites
//! fix their seeds), statistically solid for Monte-Carlo use, and obviously
//! not cryptographic — exactly like the real `StdRng` contract as probterm
//! relies on it.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1), scaled into the range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                assert!(span > 0, "cannot sample from empty range");
                // Modulo bias is < 2^-64 for every span probterm uses.
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128,
);

/// The user-facing random-value API (blanket-implemented for every source).
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256++ must not start in the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn f64_range_respects_bounds_and_moves() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let v = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            distinct.insert(v.to_bits());
        }
        assert!(distinct.len() > 990, "draws should almost never repeat");
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
