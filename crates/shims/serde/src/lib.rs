//! Offline stand-in for `serde` (+ re-exported derive).
//!
//! Instead of serde's zero-copy serializer architecture, this shim defines a
//! single owned JSON-like [`Value`] tree and a [`Serialize`] trait producing
//! it. `#[derive(Serialize)]` (from the sibling `serde_derive` shim) works on
//! structs with named fields, and the sibling `serde_json` shim renders the
//! tree. That is the entire surface `probterm-bench` needs for its JSON
//! reports.

pub use serde_derive::Serialize;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any numeric value, rendered without a trailing `.0` when integral.
    Num(f64),
    /// An exact unsigned integer (kept separate so `u128` survives).
    UInt(u128),
    /// An exact signed integer.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned JSON value.
    fn serialize(&self) -> Value;
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Num(*self as f64)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
    )+};
}

macro_rules! impl_serialize_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )+};
}

impl_serialize_uint!(u8, u16, u32, u64, u128, usize);
impl_serialize_int!(i8, i16, i32, i64, i128, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(true.serialize(), Value::Bool(true));
        assert_eq!(3u128.serialize(), Value::UInt(3));
        assert_eq!((-4i64).serialize(), Value::Int(-4));
        assert_eq!("hi".serialize(), Value::Str("hi".into()));
        assert_eq!(None::<f64>.serialize(), Value::Null);
        assert_eq!(Some(0.5f64).serialize(), Value::Num(0.5));
        assert_eq!(
            vec![1u64, 2].serialize(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
