//! Offline stand-in for `serde` (+ re-exported derive).
//!
//! Instead of serde's zero-copy serializer architecture, this shim defines a
//! single owned JSON-like [`Value`] tree and a [`Serialize`] trait producing
//! it. `#[derive(Serialize)]` (from the sibling `serde_derive` shim) works on
//! structs with named fields, and the sibling `serde_json` shim renders the
//! tree. That is the entire surface `probterm-bench` needs for its JSON
//! reports.

pub use serde_derive::Serialize;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any numeric value, rendered without a trailing `.0` when integral.
    Num(f64),
    /// An exact unsigned integer (kept separate so `u128` survives).
    UInt(u128),
    /// An exact signed integer.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an [`Value::Object`] (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the string slice if the value is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if the value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns any numeric value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if it is a non-negative integer (exact
    /// integral floats included, mirroring `serde_json::Value::as_u64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => u64::try_from(*u).ok(),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Num(n) if *n >= 0.0 && *n == n.trunc() && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Int(i) => i64::try_from(*i).ok(),
            Value::Num(n) if *n == n.trunc() && n.abs() < i64::MAX as f64 => Some(*n as i64),
            _ => None,
        }
    }

    /// Returns the element slice if the value is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the entry slice if the value is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns `true` iff the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned JSON value.
    fn serialize(&self) -> Value;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Num(*self as f64)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
    )+};
}

macro_rules! impl_serialize_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )+};
}

impl_serialize_uint!(u8, u16, u32, u64, u128, usize);
impl_serialize_int!(i8, i16, i32, i64, i128, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("s".into(), Value::Str("hi".into())),
            ("n".into(), Value::Num(3.0)),
            ("u".into(), Value::UInt(7)),
            ("i".into(), Value::Int(-2)),
            ("b".into(), Value::Bool(true)),
            ("a".into(), Value::Array(vec![Value::Null])),
        ]);
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("u").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("i").and_then(Value::as_i64), Some(-2));
        assert_eq!(v.get("i").and_then(Value::as_u64), None);
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Value::as_array).map(<[Value]>::len), Some(1));
        assert!(v.get("a").unwrap().as_array().unwrap()[0].is_null());
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("s"), None);
        assert!(v.as_object().is_some());
    }

    #[test]
    fn primitives_serialize() {
        assert_eq!(true.serialize(), Value::Bool(true));
        assert_eq!(3u128.serialize(), Value::UInt(3));
        assert_eq!((-4i64).serialize(), Value::Int(-4));
        assert_eq!("hi".serialize(), Value::Str("hi".into()));
        assert_eq!(None::<f64>.serialize(), Value::Null);
        assert_eq!(Some(0.5f64).serialize(), Value::Num(0.5));
        assert_eq!(
            vec![1u64, 2].serialize(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
