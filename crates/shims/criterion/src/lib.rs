//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the `probterm-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! straightforward wall-clock timer instead of criterion's statistical
//! machinery.
//!
//! Each benchmark runs one untimed warm-up iteration, then `sample_size`
//! timed iterations (capped to keep single-CPU runs quick), and reports
//! minimum / median / mean per-iteration time. Output lines look like
//! `group/name  min 1.234ms  median 1.456ms  mean 1.500ms (15 samples)` and
//! are also emitted as machine-readable JSON when `CRITERION_JSON` is set to
//! a file path.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Upper bound on timed samples per benchmark, keeping full `cargo bench`
/// runs tractable on the single-CPU container.
const MAX_SAMPLES: usize = 20;

/// Identifier for a parameterised benchmark, e.g. `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter, for groups benchmarking one function.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once untimed, then `samples` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

/// One recorded benchmark result.
struct Record {
    id: String,
    min: Duration,
    median: Duration,
    mean: Duration,
    samples: usize,
}

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards trailing CLI args; treat the first
        // non-flag argument as a substring filter, like criterion does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter, records: Vec::new() }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: MAX_SAMPLES,
        }
    }

    /// Benchmarks `routine` without an explicit group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        routine: R,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(id, MAX_SAMPLES, routine);
        self
    }

    fn run_one<R: FnMut(&mut Bencher)>(&mut self, id: String, samples: usize, mut routine: R) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { samples, timings: Vec::new() };
        routine(&mut bencher);
        let mut timings = bencher.timings;
        if timings.is_empty() {
            timings.push(Duration::ZERO);
        }
        timings.sort();
        let min = timings[0];
        let median = timings[timings.len() / 2];
        let total: Duration = timings.iter().sum();
        let mean = total / timings.len() as u32;
        println!(
            "{id:<55} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            timings.len()
        );
        self.records.push(Record { id, min, median, mean, samples: timings.len() });
    }

    /// Writes collected results as JSON to `$CRITERION_JSON`, if set, and
    /// appends one `{ts, git_rev, bench, metrics}` trajectory record to
    /// `BENCH_history.jsonl` next to that file (bench name = the file stem
    /// minus its `BENCH_` prefix).
    fn flush_json(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else { return };
        if path.is_empty() {
            return;
        }
        let entries: Vec<String> = self
            .records
            .iter()
            .map(|r| {
                format!(
                    "{{\"id\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}",
                    r.id.replace('"', "'"),
                    r.min.as_nanos(),
                    r.median.as_nanos(),
                    r.mean.as_nanos(),
                    r.samples
                )
            })
            .collect();
        let out = format!("[\n  {}\n]\n", entries.join(",\n  "));
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = file.write_all(out.as_bytes());
        }
        let report = std::path::Path::new(&path);
        let bench = report
            .file_stem()
            .and_then(|s| s.to_str())
            .map_or("criterion", |s| s.strip_prefix("BENCH_").unwrap_or(s));
        let history = report
            .parent()
            .map_or_else(|| "BENCH_history.jsonl".into(), |d| d.join("BENCH_history.jsonl"));
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let line = format!(
            "{{\"ts\": {ts}, \"git_rev\": \"{git_rev}\", \"bench\": \"{bench}\", \"metrics\": [{}]}}\n",
            entries.join(", ")
        );
        if let Ok(mut file) =
            std::fs::OpenOptions::new().create(true).append(true).open(&history)
        {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark (capped internally).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, MAX_SAMPLES);
        self
    }

    /// Accepted for API compatibility; the shim warms up with one iteration.
    pub fn warm_up_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed sample count.
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `group_name/id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        routine: R,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        let samples = self.sample_size;
        self.criterion.run_one(id, samples, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size;
        self.criterion.run_one(id, samples, |b| routine(b, input));
        self
    }

    /// Ends the group (prints nothing extra; results stream as they finish).
    pub fn finish(&mut self) {}
}

/// Things accepted as a benchmark name: strings or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Prevents the optimiser from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            $crate::__flush(&criterion);
        }
    };
}

/// Declares `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[doc(hidden)]
pub fn __flush(criterion: &Criterion) {
    criterion.flush_json();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_record() {
        let mut c = Criterion { filter: None, records: Vec::new() };
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].id, "unit/sum");
        assert_eq!(c.records[1].id, "unit/scaled/4");
        assert!(c.records[0].samples == 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("keep".into()), records: Vec::new() };
        c.bench_function("keep_this", |b| b.iter(|| 1 + 1));
        c.bench_function("drop_this", |b| b.iter(|| 1 + 1));
        assert_eq!(c.records.len(), 1);
    }
}
