//! Offline stand-in for `serde_json`: renders the shim [`serde::Value`] tree
//! produced by the shim `Serialize` trait as JSON text, compact
//! ([`to_string`]) or indented ([`to_string_pretty`]), and parses JSON text
//! back into a [`serde::Value`] tree ([`from_str`]).

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation or parse error; parse errors carry a byte offset and message.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn at(offset: usize, message: impl Into<String>) -> Error {
        Error { message: format!("{} at byte {offset}", message.into()) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serialises `value` to an indented (2 spaces) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a JSON document into a [`Value`] tree.
///
/// Accepts exactly one top-level value (any trailing non-whitespace is an
/// error), which is what newline-delimited-JSON framing needs. Numbers parse
/// to [`Value::Int`]/[`Value::UInt`] when integral and in range, and to
/// [`Value::Num`] otherwise; `\uXXXX` escapes (including surrogate pairs) are
/// decoded.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::at(parser.pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting depth cap: deeper documents are rejected instead of overflowing
/// the stack on hostile input (the service parses untrusted request lines).
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_PARSE_DEPTH {
            return Err(Error::at(self.pos, "JSON nesting too deep"));
        }
        match self.peek() {
            None => Err(Error::at(self.pos, "unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_whitespace();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::at(self.pos, "expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    self.skip_whitespace();
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::at(self.pos, "expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::at(
                self.pos,
                format!("unexpected character `{}`", other as char),
            )),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at(start, "invalid number"))?;
        if integral {
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::at(start, format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&high) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::at(self.pos, "unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::at(self.pos, "invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::at(self.pos, "invalid surrogate pair"))?
                            } else {
                                char::from_u32(high)
                                    .ok_or_else(|| Error::at(self.pos, "invalid \\u escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos past the digits; skip the
                            // `pos += 1` shared by single-byte escapes below.
                            continue;
                        }
                        _ => return Err(Error::at(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source text.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::at(self.pos, "invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    if (c as u32) < 0x20 {
                        return Err(Error::at(self.pos, "unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::at(self.pos, "truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }
}

fn render(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Num(n) => {
            if n.is_finite() {
                if *n == n.trunc() && n.abs() < 1e15 {
                    out.push_str(&format!("{:.1}", n));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                // JSON has no NaN/Infinity; serde_json uses null.
                out.push_str("null");
            }
        }
        Value::Str(s) => push_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                push_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    struct Row;

    impl Serialize for Row {
        fn serialize(&self) -> Value {
            Value::Object(vec![
                ("name".to_string(), Value::Str("geo(1/2)".to_string())),
                ("pterm".to_string(), Value::Num(1.0)),
                ("paths".to_string(), Value::UInt(12)),
                ("missing".to_string(), Value::Null),
            ])
        }
    }

    #[test]
    fn compact_and_pretty_render() {
        let compact = to_string(&Row).unwrap();
        assert_eq!(
            compact,
            "{\"name\":\"geo(1/2)\",\"pterm\":1.0,\"paths\":12,\"missing\":null}"
        );
        let pretty = to_string_pretty(&Row).unwrap();
        assert!(pretty.contains("\n  \"name\": \"geo(1/2)\""));
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string(&"a\"b\\c\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn arrays_of_objects_render() {
        let rows = vec![Row, Row];
        let json = to_string(&rows).unwrap();
        assert!(json.starts_with('['));
        assert_eq!(json.matches("geo(1/2)").count(), 2);
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.5").unwrap(), Value::Num(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Num(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::Str("hi".into()));
        assert_eq!(
            from_str("[1, [2], {}]").unwrap(),
            Value::Array(vec![
                Value::UInt(1),
                Value::Array(vec![Value::UInt(2)]),
                Value::Object(vec![]),
            ])
        );
        let obj = from_str("{\"op\": \"lower\", \"depth\": 60}").unwrap();
        assert_eq!(obj.get("op").and_then(Value::as_str), Some("lower"));
        assert_eq!(obj.get("depth").and_then(Value::as_u64), Some(60));
    }

    #[test]
    fn parse_roundtrips_rendered_values() {
        let original = Row.serialize();
        let json = to_string(&Row).unwrap();
        assert_eq!(from_str(&json).unwrap(), original);
        let pretty = to_string_pretty(&Row).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), original);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            from_str("\"a\\\"b\\\\c\\n\\u0041\"").unwrap(),
            Value::Str("a\"b\\c\nA".into())
        );
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(
            from_str("\"\\uD834\\uDD1E\"").unwrap(),
            Value::Str("\u{1D11E}".into())
        );
        assert_eq!(from_str("\"κ ∈ {L,R}*\"").unwrap(), Value::Str("κ ∈ {L,R}*".into()));
    }

    #[test]
    fn parse_errors_are_structured() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"unterminated",
            "\"\\u12\"", "\"\\uD834\"", "1 2", "{\"a\":1} trailing", "nan",
        ] {
            let err = from_str(bad).expect_err(bad);
            assert!(err.to_string().contains("byte"), "{bad}: {err}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err());
    }
}
