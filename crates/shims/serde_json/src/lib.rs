//! Offline stand-in for `serde_json`: renders the shim [`serde::Value`] tree
//! produced by the shim `Serialize` trait as JSON text, compact
//! ([`to_string`]) or indented ([`to_string_pretty`]).

use serde::{Serialize, Value};
use std::fmt;

/// Error type for API compatibility; rendering owned values cannot fail.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serialises `value` to an indented (2 spaces) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Num(n) => {
            if n.is_finite() {
                if *n == n.trunc() && n.abs() < 1e15 {
                    out.push_str(&format!("{:.1}", n));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                // JSON has no NaN/Infinity; serde_json uses null.
                out.push_str("null");
            }
        }
        Value::Str(s) => push_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                push_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    struct Row;

    impl Serialize for Row {
        fn serialize(&self) -> Value {
            Value::Object(vec![
                ("name".to_string(), Value::Str("geo(1/2)".to_string())),
                ("pterm".to_string(), Value::Num(1.0)),
                ("paths".to_string(), Value::UInt(12)),
                ("missing".to_string(), Value::Null),
            ])
        }
    }

    #[test]
    fn compact_and_pretty_render() {
        let compact = to_string(&Row).unwrap();
        assert_eq!(
            compact,
            "{\"name\":\"geo(1/2)\",\"pterm\":1.0,\"paths\":12,\"missing\":null}"
        );
        let pretty = to_string_pretty(&Row).unwrap();
        assert!(pretty.contains("\n  \"name\": \"geo(1/2)\""));
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string(&"a\"b\\c\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn arrays_of_objects_render() {
        let rows = vec![Row, Row];
        let json = to_string(&rows).unwrap();
        assert!(json.starts_with('['));
        assert_eq!(json.matches("geo(1/2)").count(), 2);
    }
}
