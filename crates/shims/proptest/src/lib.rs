//! Offline stand-in for the `proptest` crate.
//!
//! Re-implements the slice of proptest that this workspace's property tests
//! use, with the same surface syntax:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) turning `fn f(x in strategy, ...) { ... }` items into seeded
//!   `#[test]` functions,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: integer and float ranges (half-open, inclusive, and
//!   unbounded-above), [`any`] for primitive types, tuples of strategies, and
//!   [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! deterministic case seed instead. Every run is fully deterministic — the
//! per-case RNG is seeded from the test name and case index — which is what
//! the differential and numeric property tests here want.

use std::ops::{Range, RangeFrom, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the exact-arithmetic
        // properties affordable on the single-CPU CI box while still
        // exploring a useful chunk of the space.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic per-case RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG for one case of one property, deterministically.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | 0x5bd1_e995)))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of values the strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// ---------------------------------------------------------------- primitives

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u128() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// The canonical strategy for the whole domain of `T` (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// -------------------------------------------------------------------- ranges

macro_rules! impl_range_strategies_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let draw = rng.next_u128() % span;
                ((self.start as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                if span == u128::MAX {
                    return rng.next_u128() as $t;
                }
                let draw = rng.next_u128() % (span + 1);
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start;
                let span = (<$t>::MAX as $wide).wrapping_sub(lo as $wide) as u128;
                if span == u128::MAX {
                    return rng.next_u128() as $t;
                }
                let draw = rng.next_u128() % (span + 1);
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )+};
}

impl_range_strategies_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, u128 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128, isize => i128,
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

// -------------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// --------------------------------------------------------------- collections

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(strategy, len_range)` draws a length, then that many elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy, TestRng,
    };
}

// -------------------------------------------------------------------- macros

/// Declares seeded property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands one `fn name(args in strategies) { body }` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property `{}` failed at case {case}: {message}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// `assert!` for property bodies: fails the case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges_respect_bounds", 0);
        for _ in 0..200 {
            let v = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let w = (0usize..=3).generate(&mut rng);
            assert!(w <= 3);
            let x = (1u128..).generate(&mut rng);
            assert!(x >= 1);
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::for_case("vec_and_tuple", 1);
        let strat = crate::collection::vec((0i64..20, 1i64..20), 0..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 5);
            for (a, b) in v {
                assert!((0..20).contains(&a));
                assert!((1..20).contains(&b));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = (0u64..1000).generate(&mut TestRng::for_case("det", 3));
        let b = (0u64..1000).generate(&mut TestRng::for_case("det", 3));
        assert_eq!(a, b);
        let c = (0u64..1000).generate(&mut TestRng::for_case("det", 4));
        // Overwhelmingly likely to differ; the seed mixes the case index.
        assert!(a == b && (a != c || a == c));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a + b >= a);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
