//! Offline stand-in for `serde_derive`.
//!
//! Provides `#[derive(Serialize)]` for structs with named fields, emitting an
//! implementation of the shim `serde::Serialize` trait that builds a
//! `serde::Value::Object` with one entry per field, in declaration order.
//!
//! The input is parsed with the bare `proc_macro` API (no `syn`/`quote` in
//! this offline container): the parser scans for `struct <Name>`, then walks
//! the brace group collecting the identifier immediately preceding each
//! top-level `:`. Field types containing top-level commas inside angle
//! brackets (e.g. `HashMap<K, V>`) are not supported — none of the derived
//! structs in this workspace use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes and visibility until the `struct` keyword.
    let mut name: Option<String> = None;
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            if ident.to_string() == "struct" {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("derive(Serialize): expected struct name, got {other:?}"),
                }
                break;
            }
        }
    }
    let name = name.expect("derive(Serialize): no `struct` keyword found");

    // The next brace group holds the named fields.
    let mut fields: Vec<String> = Vec::new();
    for token in tokens {
        if let TokenTree::Group(group) = token {
            if group.delimiter() == Delimiter::Brace {
                // A field name is the identifier directly before a top-level
                // `:`; `expecting` is true from the start and after each `,`.
                let mut expecting = true;
                let mut candidate: Option<String> = None;
                for t in group.stream() {
                    match t {
                        TokenTree::Ident(ident) => {
                            if expecting {
                                candidate = Some(ident.to_string());
                            }
                        }
                        TokenTree::Punct(punct) => match punct.as_char() {
                            ':' if expecting => {
                                if let Some(field) = candidate.take() {
                                    fields.push(field);
                                }
                                expecting = false;
                            }
                            ',' => expecting = true,
                            _ => {}
                        },
                        _ => {}
                    }
                }
                break;
            }
        }
    }

    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::serialize(&self.{f}))"))
        .collect();
    let body = entries.join(", ");
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{body}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl must parse")
}
