//! Abstract-machine run profiles.
//!
//! The environment machine pauses at every effectful redex and reports an
//! event; a [`ProfileCell`] tallies those events, the counted reduction
//! steps, driver-side forks, and the deepest exploration frontier observed.
//! Engine runs are single-threaded but *fork* machines by cloning, so the
//! cell uses [`Cell`] counters behind an [`Rc`] ([`SharedProfile`]): every
//! forked machine shares its parent's tallies, and bumping one is a plain
//! in-cache increment — no atomics on the machine's hot path.
//!
//! When a run finishes, [`ProfileCell::snapshot`] freezes the tallies into a
//! plain-data [`EngineProfile`] that results can carry across threads.

use std::cell::Cell;
use std::rc::Rc;

/// The kinds of event a machine reports, as a dense index space for
/// tallying. Mirrors `absmachine::Event` variant-for-variant (the machine
/// crate maps events onto kinds; telemetry stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Reached a value with an empty continuation.
    Done,
    /// Step budget exhausted.
    OutOfFuel,
    /// Structurally stuck.
    Stuck,
    /// A `sample` redex paused.
    Sample,
    /// A primitive had all its arguments.
    PrimReady,
    /// A literal reached an `if` guard.
    BranchReady,
    /// A literal reached a `score` redex.
    ScoreReady,
    /// An atom was applied.
    AtomApplied,
    /// An opaque `fix` was focused.
    FixEncountered,
}

/// Number of [`EventKind`]s.
pub const EVENT_KIND_COUNT: usize = 9;

impl EventKind {
    /// Every kind, in index order.
    pub const ALL: [EventKind; EVENT_KIND_COUNT] = [
        EventKind::Done,
        EventKind::OutOfFuel,
        EventKind::Stuck,
        EventKind::Sample,
        EventKind::PrimReady,
        EventKind::BranchReady,
        EventKind::ScoreReady,
        EventKind::AtomApplied,
        EventKind::FixEncountered,
    ];

    /// Dense index of the kind.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (used in `--profile` output and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Done => "done",
            EventKind::OutOfFuel => "out_of_fuel",
            EventKind::Stuck => "stuck",
            EventKind::Sample => "sample",
            EventKind::PrimReady => "prim_ready",
            EventKind::BranchReady => "branch_ready",
            EventKind::ScoreReady => "score_ready",
            EventKind::AtomApplied => "atom_applied",
            EventKind::FixEncountered => "fix_encountered",
        }
    }
}

/// Mutable tally cell for one engine run, shared across forked machines.
#[derive(Debug, Default)]
pub struct ProfileCell {
    steps: Cell<u64>,
    events: [Cell<u64>; EVENT_KIND_COUNT],
    forks: Cell<u64>,
    max_frontier: Cell<u64>,
}

/// How engine drivers hold (and machines share) a profile cell.
pub type SharedProfile = Rc<ProfileCell>;

impl ProfileCell {
    /// A fresh zeroed cell behind an [`Rc`], ready to hand to machines.
    #[must_use]
    pub fn shared() -> SharedProfile {
        Rc::new(ProfileCell::default())
    }

    /// Tally `n` counted reduction steps.
    #[inline]
    pub fn count_steps(&self, n: u64) {
        self.steps.set(self.steps.get() + n);
    }

    /// Tally one machine event of the given kind.
    #[inline]
    pub fn count_event(&self, kind: EventKind) {
        let cell = &self.events[kind.index()];
        cell.set(cell.get() + 1);
    }

    /// Tally one driver-side machine fork (symbolic branch split).
    #[inline]
    pub fn count_fork(&self) {
        self.forks.set(self.forks.get() + 1);
    }

    /// Record the current frontier depth (queue length / recursion depth);
    /// keeps the maximum.
    #[inline]
    pub fn observe_frontier(&self, depth: usize) {
        let depth = depth as u64;
        if depth > self.max_frontier.get() {
            self.max_frontier.set(depth);
        }
    }

    /// Freeze the tallies into a plain-data profile.
    #[must_use]
    pub fn snapshot(&self) -> EngineProfile {
        EngineProfile {
            steps: self.steps.get(),
            events: std::array::from_fn(|i| self.events[i].get()),
            forks: self.forks.get(),
            max_frontier_depth: self.max_frontier.get(),
        }
    }
}

/// A frozen abstract-machine run profile, carried in engine results and
/// printed by `probterm --profile`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Counted reduction steps across every machine of the run.
    pub steps: u64,
    /// Event tallies, indexed by [`EventKind::index`].
    pub events: [u64; EVENT_KIND_COUNT],
    /// Machines forked by the driver at symbolic branches.
    pub forks: u64,
    /// Deepest exploration frontier (BFS queue length or tree recursion
    /// depth) the driver observed.
    pub max_frontier_depth: u64,
}

impl EngineProfile {
    /// Tally for one event kind.
    #[must_use]
    pub fn event(&self, kind: EventKind) -> u64 {
        self.events[kind.index()]
    }

    /// Total events of every kind.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Pointwise sum with another profile (max of frontier depths).
    pub fn absorb(&mut self, other: &EngineProfile) {
        self.steps += other.steps;
        for (mine, theirs) in self.events.iter_mut().zip(&other.events) {
            *mine += theirs;
        }
        self.forks += other.forks;
        self.max_frontier_depth = self.max_frontier_depth.max(other.max_frontier_depth);
    }
}

impl std::fmt::Display for EngineProfile {
    /// One human line, nonzero event kinds only:
    /// `steps=1234 forks=7 max_frontier=3 events: sample=41 branch_ready=40 done=12`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps={} forks={} max_frontier={} events:",
            self.steps, self.forks, self.max_frontier_depth
        )?;
        let mut any = false;
        for kind in EventKind::ALL {
            let n = self.event(kind);
            if n > 0 {
                write!(f, " {}={}", kind.name(), n)?;
                any = true;
            }
        }
        if !any {
            write!(f, " none")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_accumulate_and_snapshot() {
        let cell = ProfileCell::shared();
        let clone = Rc::clone(&cell); // a "forked machine" shares the cell
        cell.count_steps(3);
        clone.count_steps(2);
        cell.count_event(EventKind::Sample);
        clone.count_event(EventKind::Sample);
        clone.count_event(EventKind::BranchReady);
        cell.count_fork();
        cell.observe_frontier(4);
        cell.observe_frontier(2);
        let p = cell.snapshot();
        assert_eq!(p.steps, 5);
        assert_eq!(p.event(EventKind::Sample), 2);
        assert_eq!(p.event(EventKind::BranchReady), 1);
        assert_eq!(p.total_events(), 3);
        assert_eq!(p.forks, 1);
        assert_eq!(p.max_frontier_depth, 4);
    }

    #[test]
    fn display_lists_nonzero_kinds() {
        let cell = ProfileCell::shared();
        cell.count_steps(10);
        cell.count_event(EventKind::Done);
        let text = cell.snapshot().to_string();
        assert!(text.contains("steps=10"));
        assert!(text.contains("done=1"));
        assert!(!text.contains("sample="));
        assert!(EngineProfile::default().to_string().contains("events: none"));
    }

    #[test]
    fn absorb_sums_pointwise() {
        let a = ProfileCell::shared();
        a.count_steps(1);
        a.observe_frontier(9);
        let b = ProfileCell::shared();
        b.count_steps(2);
        b.count_fork();
        b.observe_frontier(4);
        let mut p = a.snapshot();
        p.absorb(&b.snapshot());
        assert_eq!(p.steps, 3);
        assert_eq!(p.forks, 1);
        assert_eq!(p.max_frontier_depth, 9);
    }
}
