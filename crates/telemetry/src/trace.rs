//! Structured JSONL event sink.
//!
//! A [`TraceSink`] serializes events — insertion-ordered key/value records —
//! as one JSON object per line onto any `Write + Send` target (a file, or
//! stderr for `probterm serve --trace -`). Writes are serialized through a
//! mutex and flushed per record, so concurrent workers interleave whole
//! lines, never bytes, and a crash loses at most the record being written.

use serde::Value;
use std::io::Write;
use std::sync::Mutex;

/// A mutex-serialized JSONL writer.
pub struct TraceSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").finish_non_exhaustive()
    }
}

impl TraceSink {
    /// A sink writing to `out` (wrap files in a `BufWriter` upstream if the
    /// per-record flush should batch OS writes).
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> TraceSink {
        TraceSink { out: Mutex::new(out) }
    }

    /// A sink appending to (or creating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `File::create` error.
    pub fn to_file(path: &str) -> std::io::Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// A sink writing to stderr (the stdout channel may be carrying the
    /// service's NDJSON protocol).
    #[must_use]
    pub fn to_stderr() -> TraceSink {
        TraceSink::new(Box::new(std::io::stderr()))
    }

    /// Emit one record as a single JSON line. Field order is preserved.
    /// IO errors are swallowed: tracing must never take down the service.
    pub fn emit(&self, fields: Vec<(String, Value)>) {
        // The serde shim's `Serialize` produces owned `Value`s; wrap the one
        // we already have so `to_string` can render it directly.
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn serialize(&self) -> Value {
                self.0.clone()
            }
        }
        let Ok(line) = serde_json::to_string(&Raw(Value::Object(fields))) else {
            return;
        };
        let mut out = self.out.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write target collecting bytes behind an Arc so the test can inspect
    /// what the sink wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn records_are_single_parseable_lines() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(Box::new(buf.clone()));
        sink.emit(vec![
            ("id".to_string(), Value::UInt(1)),
            ("op".to_string(), Value::Str("lower".to_string())),
            ("outcome".to_string(), Value::Str("ok".to_string())),
        ]);
        sink.emit(vec![("id".to_string(), Value::UInt(2))]);
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("op").and_then(Value::as_str), Some("lower"));
        assert_eq!(first.get("id").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn concurrent_emitters_interleave_whole_lines() {
        let buf = SharedBuf::default();
        let sink = Arc::new(TraceSink::new(Box::new(buf.clone())));
        let handles: Vec<_> = (0..4u64)
            .map(|worker| {
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        sink.emit(vec![
                            ("worker".to_string(), Value::UInt(worker.into())),
                            ("i".to_string(), Value::UInt(i.into())),
                        ]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 200);
        for line in lines {
            assert!(serde_json::from_str(line).is_ok(), "unparseable line: {line}");
        }
    }
}
