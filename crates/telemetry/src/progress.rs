//! Live engine progress: a lock-free, cross-thread snapshot of a running
//! analysis.
//!
//! [`ProfileCell`](crate::ProfileCell) is a *post-hoc* profile: `Rc<Cell>`
//! counters read once, when the run finishes. [`ProgressCell`] is its live
//! sibling — the engine thread publishes into it mid-run and *other* threads
//! (the service's `inspect` op, the streaming-progress emitter) read a
//! consistent snapshot at any moment, without locks on either side.
//!
//! The cell is a seqlock: one sequence counter plus a handful of payload
//! atomics. The single writer bumps the counter to an odd value, stores the
//! payload, and bumps it back to even; readers retry until they observe the
//! same even sequence on both sides of the payload loads. Writers never
//! block (two relaxed-cost RMWs per publish), readers never block writers,
//! and a torn read is impossible — the retry loop rejects it.
//!
//! The bound travels as a **scaled fixed point** (`BOUND_SCALE` units per
//! 1.0) in an `AtomicU64` rather than as `f64` bits: the anytime bound is
//! monotone nondecreasing (Thm. 3.4 — every terminated path certifies
//! independent mass), and integer fixed point keeps that monotonicity exact
//! across the wire regardless of float rounding at the read side.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-point scale of [`ProgressSnapshot::bound_scaled`]: parts per 1e9 of
/// probability mass (nanoprobability), so the full `[0, 1]` range spans
/// `0..=BOUND_SCALE` with comfortably sub-float-epsilon resolution.
pub const BOUND_SCALE: u64 = 1_000_000_000;

/// A point-in-time, consistent view of a running engine's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressSnapshot {
    /// Exploration work units performed (machine small-steps plus per-path
    /// overheads — the same monotone counter the cooperative `check`
    /// receives).
    pub steps: u64,
    /// Symbolic paths that terminated (and were measured) so far.
    pub paths_terminated: u64,
    /// Paths currently queued in the exploration frontier.
    pub frontier: u64,
    /// Deepest path seen so far, in machine small-steps.
    pub max_depth: u64,
    /// The monotone lower bound accumulated so far, in [`BOUND_SCALE`]ths.
    pub bound_scaled: u64,
}

impl ProgressSnapshot {
    /// The bound as a float in `[0, 1]`.
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.bound_scaled as f64 / BOUND_SCALE as f64
    }
}

/// A lock-free progress cell: single writer (the engine thread), any number
/// of concurrent readers (see module docs for the seqlock protocol).
///
/// Publishing is two `fetch_add`s plus a few relaxed stores; the disabled
/// path in the engines is one `Option` discriminant check, guarded by the
/// same overhead test discipline as machine profiling.
#[derive(Debug, Default)]
pub struct ProgressCell {
    seq: AtomicU64,
    steps: AtomicU64,
    paths_terminated: AtomicU64,
    frontier: AtomicU64,
    max_depth: AtomicU64,
    bound_scaled: AtomicU64,
}

impl ProgressCell {
    /// A fresh, all-zero cell.
    #[must_use]
    pub const fn new() -> ProgressCell {
        ProgressCell {
            seq: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            paths_terminated: AtomicU64::new(0),
            frontier: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
            bound_scaled: AtomicU64::new(0),
        }
    }

    /// Opens a write section: bumps the sequence to odd. Readers that land
    /// inside the section retry.
    fn write_begin(&self) {
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// Closes a write section: bumps the sequence back to even.
    fn write_end(&self) {
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// Publishes the exploration-side numbers (called from the engine's
    /// cooperative-check poll points). `depth` only ratchets `max_depth`
    /// upward.
    pub fn publish_exploration(&self, steps: u64, frontier: u64, depth: u64) {
        self.write_begin();
        self.steps.store(steps, Ordering::Relaxed);
        self.frontier.store(frontier, Ordering::Relaxed);
        if depth > self.max_depth.load(Ordering::Relaxed) {
            self.max_depth.store(depth, Ordering::Relaxed);
        }
        self.write_end();
    }

    /// Publishes the measurement-side numbers (called the instant a path
    /// terminates and its volume lands): cumulative path count and the
    /// monotone bound in `[0, 1]`. Out-of-range floats are clamped; the
    /// stored fixed point never decreases.
    pub fn publish_terminated(&self, paths_terminated: u64, bound: f64) {
        let scaled = if bound.is_finite() {
            (bound.clamp(0.0, 1.0) * BOUND_SCALE as f64) as u64
        } else {
            0
        };
        self.write_begin();
        self.paths_terminated.store(paths_terminated, Ordering::Relaxed);
        if scaled > self.bound_scaled.load(Ordering::Relaxed) {
            self.bound_scaled.store(scaled, Ordering::Relaxed);
        }
        self.write_end();
    }

    /// Reads a consistent snapshot, retrying while a write is in flight.
    ///
    /// The retry loop is bounded in practice by the writer's publish rate
    /// (every 256 work units at the earliest); a reader that keeps losing
    /// races still makes progress because write sections are a handful of
    /// relaxed stores long.
    #[must_use]
    pub fn snapshot(&self) -> ProgressSnapshot {
        loop {
            let before = self.seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snap = ProgressSnapshot {
                steps: self.steps.load(Ordering::Relaxed),
                paths_terminated: self.paths_terminated.load(Ordering::Relaxed),
                frontier: self.frontier.load(Ordering::Relaxed),
                max_depth: self.max_depth.load(Ordering::Relaxed),
                bound_scaled: self.bound_scaled.load(Ordering::Relaxed),
            };
            std::sync::atomic::fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == before {
                return snap;
            }
            std::hint::spin_loop();
        }
    }
}

/// A settable instantaneous measurement (bytes held, entries resident, …),
/// the up-and-down counterpart of the monotone [`Counter`](crate::Counter).
///
/// Like `Counter`, all operations are `Relaxed`: gauges are statistics, not
/// synchronization edges.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zeroed gauge.
    #[must_use]
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds to the gauge.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts from the gauge, saturating at zero.
    pub fn sub(&self, n: u64) {
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(n))
        });
    }

    /// Raises the gauge to `value` if it is higher — a monotone high-water
    /// mark (largest fan-out seen, deepest queue observed, …). Returns the
    /// value in force after the ratchet.
    pub fn ratchet(&self, value: u64) -> u64 {
        self.0.fetch_max(value, Ordering::Relaxed).max(value)
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn snapshots_report_published_values() {
        let cell = ProgressCell::new();
        assert_eq!(cell.snapshot(), ProgressSnapshot::default());
        cell.publish_exploration(512, 7, 40);
        cell.publish_terminated(3, 0.25);
        let s = cell.snapshot();
        assert_eq!(s.steps, 512);
        assert_eq!(s.frontier, 7);
        assert_eq!(s.max_depth, 40);
        assert_eq!(s.paths_terminated, 3);
        assert_eq!(s.bound_scaled, BOUND_SCALE / 4);
        assert!((s.bound() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_depth_and_bound_only_ratchet_upward() {
        let cell = ProgressCell::new();
        cell.publish_exploration(1, 0, 100);
        cell.publish_exploration(2, 0, 30);
        assert_eq!(cell.snapshot().max_depth, 100);
        cell.publish_terminated(1, 0.5);
        cell.publish_terminated(2, 0.4); // float jitter must not regress the bound
        assert_eq!(cell.snapshot().bound_scaled, BOUND_SCALE / 2);
        // Non-finite and out-of-range inputs are defanged.
        cell.publish_terminated(3, f64::NAN);
        cell.publish_terminated(4, 7.0);
        assert_eq!(cell.snapshot().bound_scaled, BOUND_SCALE);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_snapshots() {
        // The writer maintains the invariant `paths_terminated == steps` in
        // every publish; a torn read would break it.
        let cell = Arc::new(ProgressCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = cell.snapshot();
                        assert_eq!(
                            s.steps, s.paths_terminated,
                            "torn snapshot: steps {} vs paths {}",
                            s.steps, s.paths_terminated
                        );
                        assert!(s.steps >= last, "snapshot went backwards");
                        last = s.steps;
                    }
                })
            })
            .collect();
        for i in 1..=50_000u64 {
            cell.write_begin();
            cell.steps.store(i, Ordering::Relaxed);
            cell.paths_terminated.store(i, Ordering::Relaxed);
            cell.write_end();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        let s = cell.snapshot();
        assert_eq!(s.steps, 50_000);
    }

    #[test]
    fn gauges_set_add_sub_and_saturate() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
    }

    #[test]
    fn gauge_ratchet_is_a_monotone_high_water_mark() {
        let g = Gauge::new();
        assert_eq!(g.ratchet(7), 7);
        assert_eq!(g.ratchet(3), 7, "lower values never regress the mark");
        assert_eq!(g.ratchet(9), 9);
        assert_eq!(g.get(), 9);
    }
}
