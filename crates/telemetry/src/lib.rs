//! Observability primitives shared by the engines, the analysis service, and
//! the CLI.
//!
//! Everything here is `std`-only and allocation-light so the hot paths of the
//! abstract machine and the request loop can afford it:
//!
//! - [`Counter`] — a relaxed [`AtomicU64`](std::sync::atomic::AtomicU64)
//!   wrapper for lifetime tallies.
//! - [`Histogram`] — a fixed-size log-bucketed latency/size histogram with
//!   lock-free recording, p50/p95/p99/max extraction, and exact
//!   merge-equals-concatenation semantics (see [`histogram`]).
//! - [`SpanTimer`] — a phase stopwatch over [`std::time::Instant`], the
//!   *monotonic* clock. No telemetry in this workspace reads the wall clock;
//!   durations, deadlines, and trace timestamps can never go backwards under
//!   NTP adjustment.
//! - [`ProfileCell`] / [`EngineProfile`] — the per-run abstract-machine
//!   profile shared across forked machines (see [`profile`]).
//! - [`ProgressCell`] / [`Gauge`] — live introspection: a seqlock-style
//!   snapshot the engine thread publishes into mid-run and other threads
//!   (the service's `inspect` op, streamed progress frames) read without
//!   locks (see [`progress`]).
//! - [`TraceSink`] — a line-buffered, mutex-serialized JSONL event sink used
//!   by `probterm serve --trace`.

pub mod histogram;
pub mod profile;
pub mod progress;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use profile::{EngineProfile, EventKind, ProfileCell, SharedProfile, EVENT_KIND_COUNT};
pub use progress::{Gauge, ProgressCell, ProgressSnapshot, BOUND_SCALE};
pub use span::SpanTimer;
pub use trace::TraceSink;

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing lifetime counter.
///
/// All operations use `Relaxed` ordering: counters are statistics, not
/// synchronization edges, and a relaxed `fetch_add` compiles to a single
/// uncontended RMW on every platform we target.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add an arbitrary amount.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_tally() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
