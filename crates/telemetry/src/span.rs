//! Monotonic span timing.
//!
//! Every duration in the workspace — request phases, engine elapsed times,
//! deadlines, trace timestamps — is measured against
//! [`std::time::Instant`], the monotonic clock, never the wall clock.
//! [`SpanTimer`] packages the two operations the instrumented code needs:
//! total elapsed time since the span opened, and per-phase *laps* that
//! partition the span into consecutive segments.

use std::time::{Duration, Instant};

/// A phase stopwatch over the monotonic clock.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    started: Instant,
    lap_started: Instant,
}

impl Default for SpanTimer {
    fn default() -> Self {
        SpanTimer::start()
    }
}

impl SpanTimer {
    /// Opens a span now.
    #[must_use]
    pub fn start() -> SpanTimer {
        let now = Instant::now();
        SpanTimer { started: now, lap_started: now }
    }

    /// Time since the span opened.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time since the span opened, in whole microseconds (saturating).
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Closes the current phase and opens the next: returns the time since
    /// the last `lap` (or since the span opened). Successive laps partition
    /// the span, so their sum is the total elapsed time.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now.duration_since(self.lap_started);
        self.lap_started = now;
        lap
    }

    /// Like [`lap`](Self::lap), in whole microseconds (saturating).
    pub fn lap_us(&mut self) -> u64 {
        u64::try_from(self.lap().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_partition_the_span() {
        let mut t = SpanTimer::start();
        std::thread::sleep(Duration::from_millis(2));
        let a = t.lap();
        std::thread::sleep(Duration::from_millis(2));
        let b = t.lap();
        let total = t.elapsed();
        assert!(a >= Duration::from_millis(2));
        assert!(b >= Duration::from_millis(2));
        // Monotonic: laps never exceed the span that contains them.
        assert!(a + b <= total + Duration::from_millis(1));
    }

    #[test]
    fn elapsed_us_is_monotone() {
        let t = SpanTimer::start();
        let first = t.elapsed_us();
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.elapsed_us() >= first);
    }
}
