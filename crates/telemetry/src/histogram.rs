//! Log-bucketed histograms for latencies and other nonnegative magnitudes.
//!
//! # Bucket layout
//!
//! Values below 8 get one exact bucket each (indices 0–7). Every larger value
//! lands in one of four sub-buckets per power-of-two octave: for a value with
//! most-significant bit `m >= 3`, the two bits below the MSB select the
//! sub-bucket, so
//!
//! ```text
//! index(v) = v                               for v < 8
//! index(v) = 8 + (m - 3) * 4 + ((v >> (m - 2)) & 3)   otherwise
//! ```
//!
//! Each sub-bucket spans a quarter of its octave, so any reported quantile is
//! at most ~25% above the true value — plenty for p50/p95/p99 latency work —
//! while the whole `u64` range fits in [`BUCKET_COUNT`] = 252 buckets (2 KiB
//! of counters).
//!
//! # Concurrency
//!
//! [`Histogram`] records through relaxed atomics: recording is a single
//! `fetch_add` on the bucket plus bookkeeping, never a lock. Snapshots are
//! *not* atomic across buckets — a snapshot taken during concurrent recording
//! may split a logical sample between `count` and its bucket — which is the
//! standard (and harmless) trade for lock-free statistics.
//!
//! # Merge ≡ concatenation
//!
//! Bucketing is deterministic per value, and merging adds bucket counts
//! pointwise (plus `count`/`sum` and max-of-max), so merging two snapshots is
//! *exactly* the snapshot of the concatenated sample streams. The service
//! leans on this to combine per-phase histograms, and the bench harness to
//! combine per-client recorders.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 8 exact small-value buckets plus 4 sub-buckets for each
/// of the 61 octaves `[2^3, 2^4)` … `[2^63, 2^64)`.
pub const BUCKET_COUNT: usize = 8 + 61 * 4;

/// Bucket index for a recorded value.
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 3 here
        let sub = ((v >> (msb - 2)) & 3) as usize;
        8 + (msb - 3) * 4 + sub
    }
}

/// Largest value that lands in bucket `index` (inclusive upper bound).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKET_COUNT);
    if index < 8 {
        index as u64
    } else {
        let octave = (index - 8) / 4;
        let sub = ((index - 8) % 4) as u64;
        let base = 1u64 << (octave + 3);
        let width = base >> 2;
        // `base - 1 + ...` keeps the top bucket's bound at u64::MAX without
        // overflowing the intermediate sum.
        base - 1 + (sub + 1) * width
    }
}

/// A lock-free log-bucketed histogram (see the module docs for the layout).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`Duration`](std::time::Duration) in whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s counters, with quantile extraction
/// and merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; BUCKET_COUNT], count: 0, sum: 0, max: 0 }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (wrapping on overflow, like the recorder).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the upper bound of the bucket
    /// holding the rank-`ceil(q * count)` observation, clamped to the
    /// observed maximum. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](Self::quantile)).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another snapshot into this one. The result is exactly the
    /// snapshot of the concatenated sample streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_at_octave_edges() {
        // First bucketed octave [8, 16): sub-buckets {8,9} {10,11} {12,13} {14,15}.
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(9), 8);
        assert_eq!(bucket_index(10), 9);
        assert_eq!(bucket_index(15), 11);
        assert_eq!(bucket_index(16), 12);
        assert_eq!(bucket_upper_bound(8), 9);
        assert_eq!(bucket_upper_bound(11), 15);
        // Top of the range still fits.
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_upper_bound(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn upper_bounds_bracket_their_values() {
        let probes = [
            0u64,
            1,
            7,
            8,
            12,
            100,
            1_000,
            4_095,
            4_096,
            123_456_789,
            u64::MAX / 3,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            let upper = bucket_upper_bound(idx);
            assert!(upper >= v, "upper bound {upper} below value {v}");
            if idx > 0 {
                assert!(bucket_upper_bound(idx - 1) < v, "value {v} fits an earlier bucket");
            }
            // Relative error of reporting the upper bound: at most 25%.
            assert!((upper - v) as f64 <= 0.25 * v as f64 + 1.0, "bucket too wide at {v}");
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = bucket_index(0);
        let mut v = 1u64;
        while v < 1 << 20 {
            let idx = bucket_index(v);
            assert!(idx >= prev);
            prev = idx;
            v += 1;
        }
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        assert_eq!(s.max(), 100);
        // p50 covers rank 50; value 50 lives in [48, 55] whose bound is 55.
        assert_eq!(s.p50(), bucket_upper_bound(bucket_index(50)));
        // p99 and p100 are clamped by the observed max.
        assert!(s.p99() >= 99 && s.p99() <= 100);
        assert_eq!(s.quantile(1.0), 100);
        // Below the first observation the histogram still answers sanely.
        assert!(s.quantile(0.0) >= 1);
    }

    #[test]
    fn empty_snapshot_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_is_concatenation_on_a_fixed_example() {
        let (a, b, ab) = (Histogram::new(), Histogram::new(), Histogram::new());
        let xs = [3u64, 9, 9, 77, 1_000_000];
        let ys = [0u64, 8, 500, u64::MAX];
        for &x in &xs {
            a.record(x);
            ab.record(x);
        }
        for &y in &ys {
            b.record(y);
            ab.record(y);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, ab.snapshot());
    }
}
