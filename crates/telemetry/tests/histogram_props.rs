//! Property tests for the log-bucketed histogram.
//!
//! The central algebraic contract is that `merge` is *exactly* stream
//! concatenation: merging the snapshots of two independently recorded sample
//! streams equals the snapshot of one histogram fed both streams. The service
//! (per-phase recorders), the bench harness (per-client recorders) and any
//! future sharded transport all rely on this to aggregate without bias.

use probterm_telemetry::histogram::{bucket_index, bucket_upper_bound};
use probterm_telemetry::{Histogram, BUCKET_COUNT};
use proptest::prelude::*;

/// Mixed-magnitude samples: small exact values, mid-range latencies and
/// values near the top buckets, so every region of the layout gets exercised.
fn shaped(raw: u64) -> u64 {
    match raw % 4 {
        0 => raw % 8,
        1 => raw % 10_000,
        2 => raw % 1_000_000_000,
        _ => u64::MAX - (raw % 1_000),
    }
}

proptest! {
    #[test]
    fn merge_agrees_with_concatenated_recording(
        xs in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..200),
        ys in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..200),
    ) {
        let (a, b, ab) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &x in &xs {
            let x = shaped(x);
            a.record(x);
            ab.record(x);
        }
        for &y in &ys {
            let y = shaped(y);
            b.record(y);
            ab.record(y);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        prop_assert_eq!(merged, ab.snapshot());
    }

    #[test]
    fn buckets_bracket_every_value(v in proptest::prelude::any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKET_COUNT);
        prop_assert!(bucket_upper_bound(idx) >= v);
        if idx > 0 {
            prop_assert!(bucket_upper_bound(idx - 1) < v);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_max(
        xs in proptest::collection::vec(proptest::prelude::any::<u64>(), 1..300),
    ) {
        let h = Histogram::new();
        let mut true_max = 0u64;
        for &x in &xs {
            let x = shaped(x);
            h.record(x);
            true_max = true_max.max(x);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.max(), true_max);
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        prop_assert!(p50 <= p95 && p95 <= p99);
        prop_assert!(p99 <= s.max());
    }
}
