//! Criterion benchmark regenerating Figure 6: the stochastic symbolic
//! execution tree of the running example (Ex. 5.1, Fig. 6a) and the
//! enumeration of all Environment strategies with their polytope volumes
//! (Fig. 6b), i.e. the full automated proof-system pipeline of §6.

use criterion::{criterion_group, criterion_main, Criterion};
use probterm_astver::{build_tree, verify_ast};
use probterm_numerics::Rational;
use probterm_spcf::catalog;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_symbolic_execution_trees");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    // Fig. 6a: building the symbolic execution tree of Ex. 5.1.
    let tired = catalog::tired_printer(Rational::parse("0.6").unwrap());
    group.bench_function("build_tree(Ex 5.1)", |b| {
        b.iter(|| {
            let tree = build_tree(&tired.term).expect("supported benchmark");
            assert!(tree.env_count >= 1, "Ex. 5.1 has an argument-dependent branch");
            tree
        })
    });
    let printer = catalog::printer_nonaffine(Rational::from_ratio(1, 2));
    group.bench_function("build_tree(Ex 1.1 (2))", |b| {
        b.iter(|| build_tree(&printer.term).expect("supported benchmark"))
    });

    // Fig. 6b: enumerating every Environment strategy, computing each path
    // volume, assembling P_approx and deciding AST.
    group.bench_function("strategies_and_papprox(Ex 5.1)", |b| {
        b.iter(|| {
            let verification = verify_ast(&tired.term).expect("supported benchmark");
            assert!(verification.strategies >= 2, "Fig. 6b enumerates several strategies");
            assert!(verification.verified_ast);
            verification
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
