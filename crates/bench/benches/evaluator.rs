//! Criterion benchmark for the SPCF evaluators: the environment machine
//! (`run_machine`, the default behind `run`) against the substitution-based
//! reference stepper (`run_substitution`).
//!
//! Two workload shapes matter:
//!
//! * **Truncated divergent runs** (`gr` on an all-failing trace): the residual
//!   term grows linearly with the step count, so the reference stepper is
//!   quadratic in `max_steps` while the machine is linear. This is the shape
//!   that dominates Monte-Carlo estimation of non-AST terms.
//! * **Full Monte-Carlo estimation** (`gr`, 400 runs × 6000 steps — the
//!   budget the integration tests use): end-to-end effect on the statistical
//!   cross-checks.
//!
//! Run with `CRITERION_JSON=... cargo bench -p probterm-bench --bench
//! evaluator` to capture the numbers recorded in `BENCH_evaluator.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probterm_spcf::{
    catalog, estimate_termination, run_machine, run_substitution, FixedTrace, MonteCarloConfig,
    Strategy,
};

/// An all-failing trace for `gr`: every sample is 0.9 > 1/2, so the term
/// keeps spawning recursive calls until the step budget runs out.
fn failing_trace(len: usize) -> FixedTrace {
    FixedTrace::from_ratios(&vec![(9, 10); len])
}

fn bench_truncated_divergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator_truncated_gr");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(2));
    let gr = catalog::golden_ratio().term;
    for max_steps in [500usize, 1_000, 2_000, 4_000] {
        group.bench_with_input(
            BenchmarkId::new("machine", max_steps),
            &max_steps,
            |b, &max_steps| {
                b.iter(|| {
                    let mut trace = failing_trace(max_steps);
                    run_machine(Strategy::CallByValue, &gr, &mut trace, max_steps)
                })
            },
        );
        // The reference stepper is quadratic here; keep its sizes in range.
        if max_steps <= 2_000 {
            group.bench_with_input(
                BenchmarkId::new("substitution", max_steps),
                &max_steps,
                |b, &max_steps| {
                    b.iter(|| {
                        let mut trace = failing_trace(max_steps);
                        run_substitution(Strategy::CallByValue, &gr, &mut trace, max_steps)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_terminating_geometric(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator_geometric_cbn");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(2));
    let geo = catalog::geometric(probterm_numerics::Rational::from_ratio(1, 2)).term;
    // 200 failures then success: a long but terminating CbN run.
    let mut ratios = vec![(9i64, 10i64); 200];
    ratios.push((1, 10));
    group.bench_function("machine", |b| {
        b.iter(|| {
            let mut trace = FixedTrace::from_ratios(&ratios);
            run_machine(Strategy::CallByName, &geo, &mut trace, 100_000)
        })
    });
    group.bench_function("substitution", |b| {
        b.iter(|| {
            let mut trace = FixedTrace::from_ratios(&ratios);
            run_substitution(Strategy::CallByName, &geo, &mut trace, 100_000)
        })
    });
    group.finish();
}

fn bench_monte_carlo_gr(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator_monte_carlo_gr");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(5));
    let gr = catalog::golden_ratio().term;
    // The integration-test budget that used to take ~15 minutes on the
    // substitution stepper; `estimate_termination` now runs on the machine.
    let config = MonteCarloConfig {
        runs: 400,
        max_steps: 6_000,
        seed: 13,
        strategy: Strategy::CallByValue,
    };
    group.bench_function("estimate_400x6000", |b| {
        b.iter(|| {
            let estimate = estimate_termination(&gr, &config);
            assert!(estimate.terminated > 0);
            estimate
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_truncated_divergence,
    bench_terminating_geometric,
    bench_monte_carlo_gr
);
criterion_main!(benches);
