//! Criterion benchmark regenerating Table 2 (AST verification).
//!
//! Each benchmark measures the complete verification pipeline for one row of
//! the paper's Table 2: building the symbolic execution tree, enumerating all
//! Environment strategies, computing the exact polytope volume of every path,
//! assembling `P_approx` and deciding AST via Theorem 5.4.

use criterion::{criterion_group, criterion_main, Criterion};
use probterm_astver::verify_ast;
use probterm_spcf::catalog;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_ast_verification");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for benchmark in catalog::table2_benchmarks() {
        group.bench_function(benchmark.name.clone(), |b| {
            b.iter(|| {
                let verification = verify_ast(&benchmark.term).expect("supported benchmark");
                assert!(verification.verified_ast, "{} must verify", benchmark.name);
                verification
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
