//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **Exact polytope volumes vs. box-splitting sweep** for the same path
//!   regions (the lower-bound engine uses the former whenever path constraints
//!   are affine; this ablation quantifies the cost/precision trade-off).
//! * **Exploration depth scaling** of the lower-bound engine on the geometric
//!   benchmark (the "anytime" axis of Table 1).
//! * **Strategy enumeration cost** as the number of Environment nodes grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probterm_intervalsem::{explore, lower_bound, ExplorationConfig, LowerBoundConfig};
use probterm_numerics::Rational;
use probterm_spcf::{catalog, parse_term};

/// Exact volume vs. box sweep on the triangle region of Ex. 3.5.
fn bench_volume_vs_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_volume_vs_sweep");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let term = catalog::triangle_example().term;
    let exploration = explore(
        &term,
        &ExplorationConfig::default()
            .with_max_steps_per_path(25)
            .with_max_paths(100),
    );
    let path = exploration
        .terminated
        .into_iter()
        .find(|p| p.sample_count == 2)
        .expect("the no-recursion path of Ex. 3.5");
    group.bench_function("exact_polytope_volume", |b| {
        b.iter(|| path.exact_probability().expect("affine path"))
    });
    for boxes in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("box_sweep", boxes), &boxes, |b, &boxes| {
            b.iter(|| path.box_lower_bound(boxes))
        });
    }
    group.finish();
}

/// Lower-bound depth scaling on geo(1/2).
fn bench_depth_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_depth_scaling_geo");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let geo = catalog::geometric(Rational::from_ratio(1, 2)).term;
    for depth in [20usize, 40, 80] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| lower_bound(&geo, &LowerBoundConfig::default().with_depth(depth)))
        });
    }
    group.finish();
}

/// Strategy-enumeration cost as the number of environment nodes grows.
fn bench_strategy_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_strategy_enumeration");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    // k nested ⊛-dependent branches produce 2^k strategies.
    for k in [1usize, 2, 4] {
        let mut body = String::from("x");
        for _ in 0..k {
            body = format!("(if sig(x) <= 1/2 then phi (x+1) else {body})");
        }
        let src = format!("(fix phi x. if sample <= 3/4 then x else {body}) 1");
        let term = parse_term(&src).expect("generated benchmark parses");
        group.bench_with_input(BenchmarkId::from_parameter(k), &term, |b, term| {
            b.iter(|| probterm_astver::verify_ast(term).expect("supported"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_volume_vs_sweep,
    bench_depth_scaling,
    bench_strategy_enumeration
);
criterion_main!(benches);
