//! Micro-benchmarks of the substrates every analysis is built on: exact
//! rational arithmetic, exact polytope volumes (the §7.2 volume oracle),
//! random-walk decisions and matrix powers (§5.1), and branching-process
//! extinction probabilities. These quantify where the wall-clock time of the
//! table benchmarks goes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probterm_numerics::Rational;
use probterm_polytope::Polytope;
use probterm_rwalk::{GeneratingFunction, CountingDistribution, StepDistribution, WalkMatrix};

fn bench_rational(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_rational_arithmetic");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("harmonic_sum_300_terms", |b| {
        b.iter(|| {
            let mut total = Rational::zero();
            for k in 1..=300i64 {
                total += Rational::from_ratio(1, k);
            }
            total
        })
    });
    group.finish();
}

fn bench_polytope_volume(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_polytope_volume");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    for dimension in [2usize, 3, 4, 5] {
        group.bench_with_input(
            BenchmarkId::new("unit_simplex", dimension),
            &dimension,
            |b, &dimension| {
                b.iter(|| {
                    // {x ∈ [0,1]^d | Σ x_i ≤ 1} has volume 1/d!.
                    let mut polytope = Polytope::unit_cube(dimension);
                    polytope.add_constraint(vec![Rational::one(); dimension], Rational::one());
                    let volume = polytope.volume();
                    let factorial: i64 = (1..=dimension as i64).product();
                    assert_eq!(volume, Rational::from_ratio(1, factorial));
                    volume
                })
            },
        );
    }
    group.finish();
}

fn bench_random_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_random_walks");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    let fair = StepDistribution::from_pairs([
        (-1, Rational::from_ratio(1, 2)),
        (1, Rational::from_ratio(1, 2)),
    ]);
    group.bench_function("theorem_5_4_decision", |b| {
        b.iter(|| {
            assert!(fair.is_ast());
            fair.ast_violations()
        })
    });
    group.bench_function("exact_matrix_power_200_steps", |b| {
        let walk = WalkMatrix::new(&fair, 48);
        b.iter(|| walk.absorption_within(1, 200))
    });
    group.bench_function("extinction_probability_gr", |b| {
        let gr = CountingDistribution::from_pairs([
            (0, Rational::from_ratio(1, 2)),
            (3, Rational::from_ratio(1, 2)),
        ]);
        let generating = GeneratingFunction::new(&gr);
        b.iter(|| generating.extinction_probability_f64(1e-12, 100_000))
    });
    group.finish();
}

criterion_group!(benches, bench_rational, bench_polytope_volume, bench_random_walks);
criterion_main!(benches);
