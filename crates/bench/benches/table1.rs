//! Criterion benchmark regenerating (a scaled-down version of) Table 1.
//!
//! Each benchmark measures the full lower-bound pipeline — symbolic
//! exploration, exact polytope volumes and box-splitting sweeps — for one row
//! of the paper's Table 1. The depths are the paper's depths divided by four
//! (and by eight for the Criterion run) so that a full run stays fast; the `table1`
//! binary runs the full-depth version and prints the actual bounds.

use criterion::{criterion_group, criterion_main, Criterion};
use probterm_bench::{scaled_depths, table1_row};
use probterm_spcf::catalog;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_lower_bounds");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let depths = scaled_depths(8);
    for (benchmark, depth) in catalog::table1_benchmarks().into_iter().zip(depths) {
        group.bench_function(benchmark.name.clone(), |b| {
            b.iter(|| {
                let row = table1_row(&benchmark, depth);
                assert!(row.lower_bound_f64 >= 0.0);
                row
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
