//! Asserts symbolic exploration cost is roughly linear — not quadratic — in
//! the exploration depth.
//!
//! On the geometric benchmark every extra unit of depth adds a constant
//! amount of machine work per surviving path: the term no longer grows under
//! the machine's environments, so doubling the depth multiplies total work
//! by ~4 at most (2× paths × 2× average path length) — whereas the old
//! whole-term-substitution stepper also paid a term that grows with depth,
//! cubing the total. Wall-clock assertions are noisy on a busy single-CPU
//! box, so each measurement takes the minimum of several repetitions and the
//! accepted ratio (< 6× per doubling, vs ~8×+ for the substitution stepper)
//! leaves slack.

use probterm_intervalsem::{explore, ExplorationConfig};
use probterm_numerics::Rational;
use probterm_spcf::catalog;
use std::time::{Duration, Instant};

fn time_exploration(depth: usize) -> Duration {
    let geo = catalog::geometric(Rational::from_ratio(1, 2)).term;
    let config = ExplorationConfig::default()
        .with_max_steps_per_path(depth)
        .with_max_paths(20_000);
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let exploration = explore(&geo, &config);
        let elapsed = start.elapsed();
        // geo's k-th path terminates after ~5k steps, so a depth-d
        // exploration finds ~d/5 paths.
        assert!(exploration.terminated.len() > depth / 8, "exploration too shallow");
        best = best.min(elapsed);
    }
    best
}

#[test]
fn doubling_exploration_depth_scales_like_paths_not_quadratically_per_path() {
    // Warm up allocators and caches.
    let _ = time_exploration(50);
    let base_depth = 200;
    let base = time_exploration(base_depth);
    let doubled = time_exploration(base_depth * 2);
    let ratio = doubled.as_secs_f64() / base.as_secs_f64().max(1e-9);
    assert!(
        ratio < 6.0,
        "doubling the exploration depth ({base_depth} -> {}) multiplied wall time by \
         {ratio:.2} ({base:?} -> {doubled:?}); per-path exploration cost is super-linear \
         in the depth",
        base_depth * 2
    );
}
