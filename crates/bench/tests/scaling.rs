//! Asserts the evaluator's cost is linear — not quadratic — in `max_steps`.
//!
//! The `gr` term on an all-failing trace grows its pending-work term linearly
//! as it runs, which made the old substitution stepper quadratic in the step
//! budget. The environment machine must make doubling the budget cost about
//! double the time. Wall-clock assertions are noisy on a busy single-CPU box,
//! so each measurement takes the minimum of several repetitions and the
//! accepted ratio (< 3× per doubling, vs ~4× for quadratic growth) leaves
//! slack.

use probterm_spcf::{catalog, run_machine_summary, FixedTrace, Strategy, SummaryOutcome};
use std::time::{Duration, Instant};

fn time_truncated_run(max_steps: usize) -> Duration {
    let gr = catalog::golden_ratio().term;
    let ratios = vec![(9i64, 10i64); max_steps];
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let mut trace = FixedTrace::from_ratios(&ratios);
        let start = Instant::now();
        let run = run_machine_summary(Strategy::CallByValue, &gr, &mut trace, max_steps);
        let elapsed = start.elapsed();
        assert_eq!(run.outcome, SummaryOutcome::OutOfFuel);
        assert_eq!(run.steps, max_steps);
        best = best.min(elapsed);
    }
    best
}

#[test]
fn doubling_max_steps_scales_linearly_not_quadratically() {
    // Warm up allocators and caches.
    let _ = time_truncated_run(2_000);
    let base_steps = 20_000;
    let base = time_truncated_run(base_steps);
    let doubled = time_truncated_run(base_steps * 2);
    let ratio = doubled.as_secs_f64() / base.as_secs_f64().max(1e-9);
    // Quadratic growth would quadruple per doubling; 3.0 still separates
    // cleanly while tolerating scheduler noise on a loaded single-CPU box
    // (2.54 has been observed for the genuinely linear machine).
    assert!(
        ratio < 3.0,
        "doubling max_steps ({base_steps} -> {}) multiplied wall time by {ratio:.2} \
         ({base:?} -> {doubled:?}); evaluator cost is super-linear in the step budget",
        base_steps * 2
    );
}
