//! Asserts the engine profiling hook is near-free when disabled.
//!
//! The instrumentation on the environment machine is one `Option`
//! discriminant check per step and per paused event (plus `Cell` bumps when
//! a profile is attached). This guard times the `symbolic_scaling` geometric
//! workload with profiling off and with profiling on: the disabled path must
//! cost at most 5 % more than the *fully instrumented* path (plus a small
//! absolute slack for timer noise). Since an enabled run does strictly more
//! work than a disabled one, staying within 5 % of it demonstrates the
//! disabled check is in the noise. Wall-clock assertions are noisy on a busy
//! single-CPU box, so each measurement takes the minimum of several
//! repetitions (the same discipline as the `symbolic_scaling` test).

use probterm_intervalsem::{explore, lower_bound, ExplorationConfig, LowerBoundConfig};
use probterm_numerics::Rational;
use probterm_spcf::catalog;
use probterm_telemetry::ProgressCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn time_exploration(profile: bool) -> Duration {
    let geo = catalog::geometric(Rational::from_ratio(1, 2)).term;
    let config = ExplorationConfig::default()
        .with_max_steps_per_path(400)
        .with_max_paths(20_000)
        .with_profile(profile);
    let mut best = Duration::MAX;
    for _ in 0..7 {
        let start = Instant::now();
        let exploration = explore(&geo, &config);
        let elapsed = start.elapsed();
        assert_eq!(exploration.profile.is_some(), profile);
        if profile {
            let p = exploration.profile.as_ref().unwrap();
            assert!(p.steps > 0, "an enabled profile must tally machine steps");
            assert!(p.total_events() > 0, "an enabled profile must tally events");
        }
        best = best.min(elapsed);
    }
    best
}

fn time_lower_bound(progress: Option<Arc<ProgressCell>>) -> Duration {
    let geo = catalog::geometric(Rational::from_ratio(1, 2)).term;
    let mut best = Duration::MAX;
    for _ in 0..7 {
        let mut config = LowerBoundConfig::default().with_depth(400).with_max_paths(20_000);
        if let Some(cell) = &progress {
            config = config.with_progress(Arc::clone(cell));
        }
        let start = Instant::now();
        let result = lower_bound(&geo, &config);
        let elapsed = start.elapsed();
        assert!(result.probability.is_positive());
        if let Some(cell) = &progress {
            let snap = cell.snapshot();
            assert!(snap.steps > 0, "an attached cell must see exploration work");
            assert!(snap.paths_terminated > 0, "an attached cell must see terminated paths");
            assert!(snap.bound_scaled > 0, "an attached cell must see a nonzero bound");
        }
        best = best.min(elapsed);
    }
    best
}

#[test]
fn disabled_profiling_costs_less_than_five_percent() {
    // Warm up allocators and caches.
    let _ = time_exploration(false);
    let disabled = time_exploration(false);
    let enabled = time_exploration(true);
    let budget = enabled.as_secs_f64() * 1.05 + 0.002;
    assert!(
        disabled.as_secs_f64() <= budget,
        "the disabled-instrumentation path ({disabled:?}) costs more than 5 % over the \
         fully profiled run ({enabled:?}); the per-step enabled check is not near-free"
    );
}

/// The live-progress hook is one `Option` discriminant check per cooperative
/// poll point when no [`ProgressCell`] is attached. Same discipline as the
/// profiling guard above: the disabled path must stay within 5 % of the
/// *publishing* run (plus timer-noise slack), which does strictly more work.
#[test]
fn disabled_progress_costs_less_than_five_percent() {
    let _ = time_lower_bound(None); // warm-up
    let disabled = time_lower_bound(None);
    let enabled = time_lower_bound(Some(Arc::new(ProgressCell::new())));
    let budget = enabled.as_secs_f64() * 1.05 + 0.002;
    assert!(
        disabled.as_secs_f64() <= budget,
        "the disabled-progress path ({disabled:?}) costs more than 5 % over the \
         publishing run ({enabled:?}); the per-poll disabled check is not near-free"
    );
}
