//! Regenerates Table 1 of the paper: lower bounds on the probability of
//! termination for the ten benchmark programs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p probterm-bench --bin table1 [scale] [--json]
//! ```
//!
//! `scale` divides the paper's exploration depths (default 1 = full depths;
//! use e.g. `4` for a quick run). With `--json` the rows are also printed as
//! JSON for further processing.

use probterm_bench::{render_table1, scaled_depths, table1, table1_depths};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let scale: usize = args
        .iter()
        .find(|a| *a != "--json")
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let depths = if scale <= 1 { table1_depths() } else { scaled_depths(scale) };
    eprintln!("computing Table 1 (lower bounds) at depths {depths:?} ...");
    let rows = table1(&depths);
    println!("{}", render_table1(&rows));
    if json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serialisable rows"));
    }
}
