//! Depth-scaling driver for symbolic exploration: measures the
//! environment-machine explorer against the substitution-based reference
//! stepper across doubling exploration depths (the `d` column of Table 1)
//! and records the numbers to `BENCH_symbolic.json` (run from the workspace
//! root, e.g. `cargo run --release -p probterm-bench --bin symbolic_scaling`).
//!
//! The substitution stepper rebuilds the whole term at every small step, and
//! for recursive programs the unexplored recursion grows the term linearly
//! with the path depth — so its per-path cost is quadratic in `d` and its
//! per-depth-doubling time multiplies by ~4 (or worse once the path *count*
//! also grows with depth). The machine's per-step cost is flat: doubling the
//! depth should roughly double the per-path work.

use probterm_intervalsem::{explore, explore_substitution, ExplorationConfig};
use probterm_numerics::Rational;
use probterm_spcf::{catalog, Term};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Serialize)]
struct DepthRow {
    benchmark: String,
    depth: usize,
    paths: usize,
    machine_ns: u128,
    substitution_ns: u128,
    speedup: f64,
}

fn best_of<F: FnMut() -> usize>(repetitions: usize, mut run: F) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut paths = 0usize;
    for _ in 0..repetitions {
        let start = Instant::now();
        paths = run();
        best = best.min(start.elapsed());
    }
    (best, paths)
}

fn measure(name: &str, term: &Term, depths: &[usize], rows: &mut Vec<DepthRow>) {
    for &depth in depths {
        let config = ExplorationConfig::default()
            .with_max_steps_per_path(depth)
            .with_max_paths(20_000);
        let (machine_time, machine_paths) =
            best_of(3, || explore(term, &config).terminated.len());
        let (substitution_time, substitution_paths) =
            best_of(3, || explore_substitution(term, &config).terminated.len());
        assert_eq!(
            machine_paths, substitution_paths,
            "{name} @ {depth}: differential mismatch"
        );
        let speedup =
            substitution_time.as_secs_f64() / machine_time.as_secs_f64().max(1e-12);
        eprintln!(
            "{name:<16} d={depth:<5} paths={machine_paths:<6} machine={machine_time:?} \
             substitution={substitution_time:?} speedup={speedup:.1}x"
        );
        rows.push(DepthRow {
            benchmark: name.to_string(),
            depth,
            paths: machine_paths,
            machine_ns: machine_time.as_nanos(),
            substitution_ns: substitution_time.as_nanos(),
            speedup,
        });
    }
}

fn main() {
    let mut rows: Vec<DepthRow> = Vec::new();
    // Recursive catalogue examples: geometric recursion (linear path count,
    // linearly growing paths), the triangle example (two draws per
    // unfolding) and the non-affine printer (branching recursion).
    measure(
        "geometric",
        &catalog::geometric(Rational::from_ratio(1, 2)).term,
        &[100, 200, 400, 800],
        &mut rows,
    );
    measure(
        "triangle",
        &catalog::triangle_example().term,
        &[100, 200, 400, 800],
        &mut rows,
    );
    measure(
        "printer_nonaffine",
        &catalog::printer_nonaffine(Rational::from_ratio(1, 2)).term,
        &[40, 80, 160],
        &mut rows,
    );

    let rendered: Vec<String> = rows
        .iter()
        .map(|row| serde_json::to_string(row).expect("serialize row"))
        .collect();
    let payload = format!("[\n  {}\n]\n", rendered.join(",\n  "));
    std::fs::write("BENCH_symbolic.json", &payload).expect("write BENCH_symbolic.json");
    probterm_bench::append_history("symbolic_scaling", &rows.serialize());
    println!("wrote BENCH_symbolic.json ({} rows)", rows.len());
}
