//! Regenerates Table 2 of the paper: automated AST verification of the five
//! non-affine recursive benchmark programs, reporting the computed counting
//! distribution `P_approx`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p probterm-bench --bin table2 [--json]
//! ```

use probterm_bench::{render_table2, table2};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    eprintln!("computing Table 2 (AST verification) ...");
    let rows = table2();
    println!("{}", render_table2(&rows));
    if json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serialisable rows"));
    }
}
