//! Load driver for `probterm-service`: fires mixed concurrent request
//! streams at an in-process TCP server and records throughput to
//! `BENCH_service.json` (run from the workspace root, e.g.
//! `cargo run --release -p probterm-bench --bin service_load`).
//!
//! Three scenarios bracket the service's operating envelope:
//!
//! * **hot** — every client rotates through α-renamings of the same two
//!   programs, so after warm-up every request is a content-addressed cache
//!   hit: this measures the transport + canonicalisation ceiling.
//! * **cold** — every request submits a distinct program for AST
//!   verification, so every request runs the full §6 engine: this measures
//!   verification-heavy traffic with a useless cache.
//! * **mixed** — 4:1 hot:cold interleaving, the expected production shape.
//! * **overload** — offered load ~4× over a single deadline-bounded worker
//!   with a shallow admission queue: this measures the shed rate, the p99
//!   latency of the *admitted* requests (the overload-protection contract:
//!   shedding keeps admitted latency flat), and the wall-time speedup of
//!   resuming a checkpointed exploration over recomputing it from scratch.
//! * **coalesce** — 16 concurrent clients all submitting the *same* cold
//!   `lower` term: single-flight coalescing must collapse the burst into one
//!   engine run, and the row records the throughput ratio against the same
//!   burst uncoalesced (16 equal-cost distinct terms over the same workers).
//! * **warm-restart** — a server persisted its cache via `--cache-path`,
//!   drained, and reboots: time from accepting the first connection to the
//!   first cache-hit reply for a previously-computed request.

use probterm_service::{handle_line, Server, ServerConfig};
use probterm_telemetry::{Histogram, HistogramSnapshot, SpanTimer};
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct ScenarioRow {
    scenario: String,
    clients: usize,
    workers: usize,
    requests: u64,
    errors: u64,
    elapsed_ms: u128,
    requests_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    /// Client-observed round-trip latency percentiles, in microseconds,
    /// from log-bucketed histograms merged across clients (≤ ~25 % bucket
    /// error).
    latency_p50_us: u64,
    latency_p95_us: u64,
    latency_p99_us: u64,
    latency_max_us: u64,
    /// Requests refused by admission control with `overloaded` (overload
    /// scenario only — the other scenarios never saturate their queue).
    shed: u64,
    /// p99 round-trip latency of admitted (non-shed) requests only, in µs.
    /// Equal to `latency_p99_us` when nothing is shed.
    admitted_p99_us: u64,
    /// Wall-time ratio of a from-scratch full-budget `lower` run over a
    /// resumed completion from a half-budget checkpoint of the same
    /// exploration (overload scenario only; 0 elsewhere).
    resume_speedup: f64,
    /// Engine runs actually executed (server-side cache misses). The
    /// coalesce scenario's contract is that this stays at 1 for the whole
    /// identical burst; 0 in rows that predate the field.
    engine_runs: u64,
    /// Largest single-flight fan-out observed (waiters served by one run).
    coalesce_fanout: u64,
    /// Wall-time ratio of the uncoalesced burst (equal-cost distinct terms)
    /// over the coalesced identical burst (coalesce scenario only; 0
    /// elsewhere).
    throughput_vs_uncoalesced: f64,
    /// Milliseconds from accepting the reborn server's first connection to
    /// its first snapshot-served cache-hit reply (warm-restart scenario
    /// only; 0 elsewhere).
    time_to_first_hit_ms: u128,
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Round-trip latency of every request this client issued, in µs.
    latency: Histogram,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to load server");
        stream.set_nodelay(true).expect("set nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, writer: stream, latency: Histogram::new() }
    }

    /// Lock-step request/reply; returns `true` iff the reply is `ok`.
    fn request(&mut self, line: &str) -> bool {
        let timer = SpanTimer::start();
        let framed = format!("{line}\n");
        self.writer.write_all(framed.as_bytes()).expect("send request");
        self.writer.flush().expect("flush request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        self.latency.record(timer.elapsed_us());
        reply.contains("\"ok\":true")
    }
}

/// α-renamings of the fair non-affine printer (Ex. 1.1 (2), p = 1/2): all
/// share one canonical key, so they exercise the cache-hit path under
/// differently-spelled requests.
fn hot_verify_request(id: usize) -> String {
    let names = [
        ("phi", "x"),
        ("loop", "n"),
        ("retry", "copies"),
        ("f", "k"),
        ("print", "backlog"),
        ("g", "y"),
    ];
    let (f, x) = names[id % names.len()];
    format!(
        r#"{{"id":{id},"op":"verify","program":"(fix {f} {x}. if sample <= 1/2 then {x} else {f} ({f} ({x} + 1))) 1"}}"#
    )
}

fn hot_lower_request(id: usize) -> String {
    let names = [("phi", "x"), ("walk", "pos"), ("h", "z")];
    let (f, x) = names[id % names.len()];
    format!(
        r#"{{"id":{id},"op":"lower","program":"(fix {f} {x}. if sample <= 1/4 then {x} else {f} ({f} ({x} + 1))) 1","depth":30}}"#
    )
}

/// A verification request for a program no other request ever submits: the
/// non-affine printer at a fresh success probability per (client, index).
fn cold_verify_request(client: usize, index: usize) -> String {
    // Injective in (client, index) for index < 500 — covering every scenario
    // below — so no two cold requests ever share a canonical key, and the
    // numerator stays below the denominator (a genuine probability).
    let numerator = 1 + client * 500 + index;
    format!(
        r#"{{"id":"c{client}-{index}","op":"verify","program":"(fix phi x. if sample <= {numerator}/10000 then x else phi (phi (x + 1))) 1"}}"#
    )
}

fn run_scenario(
    name: &str,
    clients: usize,
    per_client: usize,
    request: impl Fn(usize, usize) -> String + Send + Sync + Copy + 'static,
) -> ScenarioRow {
    let workers = 2;
    let server = Server::new(ServerConfig { workers, ..Default::default() });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let addr = running.addr;

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|client_index| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut errors = 0u64;
                for index in 0..per_client {
                    if !client.request(&request(client_index, index)) {
                        errors += 1;
                    }
                }
                (errors, client.latency.snapshot())
            })
        })
        .collect();
    let mut errors = 0u64;
    // Merging per-client histograms is exact: merge ≡ recording the
    // concatenated sample streams into one histogram.
    let mut latency = HistogramSnapshot::empty();
    for handle in handles {
        let (client_errors, client_latency) = handle.join().expect("client");
        errors += client_errors;
        latency.merge(&client_latency);
    }
    let elapsed = started.elapsed();

    let stats = running.state().stats();
    Client::connect(addr).request(r#"{"op":"shutdown"}"#);
    running.join().expect("clean shutdown");

    let requests = (clients * per_client) as u64;
    ScenarioRow {
        scenario: name.to_string(),
        clients,
        workers,
        requests,
        errors,
        elapsed_ms: elapsed.as_millis(),
        requests_per_sec: requests as f64 / elapsed.as_secs_f64(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        latency_p50_us: latency.p50(),
        latency_p95_us: latency.p95(),
        latency_p99_us: latency.p99(),
        latency_max_us: latency.max(),
        shed: 0,
        admitted_p99_us: latency.p99(),
        resume_speedup: 0.0,
        engine_runs: stats.misses,
        coalesce_fanout: stats.coalesce_fanout_max,
        throughput_vs_uncoalesced: 0.0,
        time_to_first_hit_ms: 0,
    }
}

/// A deadline-bounded `lower` on a fresh cache key per (client, index): the
/// geometric chain never empties its frontier before the depth cap, so every
/// admitted request busies the engine for the whole deadline.
fn overload_lower_request(client: usize, index: usize) -> String {
    let k = 1 + client * 500 + index;
    format!(
        r#"{{"id":"o{client}-{index}","op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + {k})) 0","depth":400,"deadline_ms":150}}"#
    )
}

/// Offered load over capacity: 4 lock-step clients against 1 worker whose
/// every engine run burns a full 150 ms deadline, behind a queue of depth 2.
/// Admission control must shed the excess with `overloaded` while the
/// admitted requests keep their deadline-bounded latency.
fn run_overload() -> ScenarioRow {
    let workers = 1;
    let clients = 4;
    let per_client = 12;
    let server = Server::new(ServerConfig { workers, queue_depth: 2, ..Default::default() });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let addr = running.addr;

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|client_index| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut errors = 0u64;
                let admitted = Histogram::new();
                for index in 0..per_client {
                    let line = overload_lower_request(client_index, index);
                    let timer = SpanTimer::start();
                    let framed = format!("{line}\n");
                    client.writer.write_all(framed.as_bytes()).expect("send request");
                    client.writer.flush().expect("flush request");
                    let mut reply = String::new();
                    client.reader.read_line(&mut reply).expect("read reply");
                    let us = timer.elapsed_us();
                    client.latency.record(us);
                    if reply.contains("\"overloaded\"") {
                        continue; // shed — counted from the server's stats
                    }
                    admitted.record(us);
                    eprintln!("OV adm o{client_index}-{index} {us}us");
                    if !reply.contains("\"ok\":true") {
                        errors += 1;
                    }
                }
                (errors, client.latency.snapshot(), admitted.snapshot())
            })
        })
        .collect();
    let mut errors = 0u64;
    let mut latency = HistogramSnapshot::empty();
    let mut admitted = HistogramSnapshot::empty();
    for handle in handles {
        let (client_errors, client_latency, client_admitted) = handle.join().expect("client");
        errors += client_errors;
        latency.merge(&client_latency);
        admitted.merge(&client_admitted);
    }
    let elapsed = started.elapsed();

    let stats = running.state().stats();
    Client::connect(addr).request(r#"{"op":"shutdown"}"#);
    running.join().expect("clean shutdown");

    let requests = (clients * per_client) as u64;
    ScenarioRow {
        scenario: "overload".to_string(),
        clients,
        workers,
        requests,
        errors,
        elapsed_ms: elapsed.as_millis(),
        requests_per_sec: requests as f64 / elapsed.as_secs_f64(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        latency_p50_us: latency.p50(),
        latency_p95_us: latency.p95(),
        latency_p99_us: latency.p99(),
        latency_max_us: latency.max(),
        shed: stats.shed,
        admitted_p99_us: admitted.p99(),
        resume_speedup: measure_resume_speedup(),
        engine_runs: stats.misses,
        coalesce_fanout: stats.coalesce_fanout_max,
        throughput_vs_uncoalesced: 0.0,
        time_to_first_hit_ms: 0,
    }
}

/// One deterministic engine workload for the coalesce comparison: an
/// unbounded-depth geometric chain at a distinct offset `k`, so every `k` is
/// a fresh cache key with identical exploration cost (~tens of ms at depth
/// 400 in release).
fn coalesce_lower_request(id: usize, k: usize) -> String {
    format!(
        r#"{{"id":"x{id}","op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + {k})) 0","depth":400}}"#
    )
}

/// Fires `clients` concurrent lock-step clients, each sending the one line
/// `request(i)` cold, against a fresh 2-worker server; returns the wall
/// time, the merged latency histogram and the final stats snapshot.
fn burst(
    clients: usize,
    request: impl Fn(usize) -> String + Send + Sync + Copy + 'static,
) -> (std::time::Duration, HistogramSnapshot, probterm_service::StatsSnapshot) {
    let server = Server::new(ServerConfig { workers: 2, ..Default::default() });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let addr = running.addr;
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                assert!(client.request(&request(i)), "burst request {i} failed");
                client.latency.snapshot()
            })
        })
        .collect();
    let mut latency = HistogramSnapshot::empty();
    for handle in handles {
        latency.merge(&handle.join().expect("client"));
    }
    let elapsed = started.elapsed();
    let stats = running.state().stats();
    Client::connect(addr).request(r#"{"op":"shutdown"}"#);
    running.join().expect("clean shutdown");
    (elapsed, latency, stats)
}

/// 16 concurrent clients, one cold term: single-flight coalescing collapses
/// the burst into exactly one engine run. The throughput ratio compares the
/// same burst against 16 equal-cost *distinct* terms (no coalescing
/// possible) on identical workers.
fn run_coalesce() -> ScenarioRow {
    let clients = 16;
    let (uncoalesced, _, uncoalesced_stats) =
        burst(clients, |i| coalesce_lower_request(i, 1 + i));
    assert_eq!(
        uncoalesced_stats.misses, clients as u64,
        "distinct terms never coalesce"
    );
    let (coalesced, latency, stats) = burst(clients, |i| coalesce_lower_request(i, 1));

    ScenarioRow {
        scenario: "coalesce".to_string(),
        clients,
        workers: 2,
        requests: clients as u64,
        errors: 0,
        elapsed_ms: coalesced.as_millis(),
        requests_per_sec: clients as f64 / coalesced.as_secs_f64(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        latency_p50_us: latency.p50(),
        latency_p95_us: latency.p95(),
        latency_p99_us: latency.p99(),
        latency_max_us: latency.max(),
        shed: 0,
        admitted_p99_us: latency.p99(),
        resume_speedup: 0.0,
        engine_runs: stats.misses,
        coalesce_fanout: stats.coalesce_fanout_max,
        throughput_vs_uncoalesced: uncoalesced.as_secs_f64()
            / coalesced.as_secs_f64().max(1e-9),
        time_to_first_hit_ms: 0,
    }
}

/// Computes one cold `lower` under `--cache-path`, drains (persisting the
/// snapshot), reboots from the snapshot and times the reborn server from
/// first connection to first cache-hit reply.
fn run_warm_restart() -> ScenarioRow {
    let path = std::env::temp_dir()
        .join(format!("probterm-bench-warm-restart-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cache_path = path.to_str().expect("utf-8 temp path").to_string();
    let line = coalesce_lower_request(0, 1);

    let first = Server::new(ServerConfig {
        workers: 2,
        cache_path: Some(cache_path.clone()),
        ..Default::default()
    });
    let running = first.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(running.addr);
    assert!(client.request(&line), "cold fill failed");
    Client::connect(running.addr).request(r#"{"op":"shutdown"}"#);
    running.join().expect("drain persists the snapshot");

    let reborn = Server::new(ServerConfig {
        workers: 2,
        cache_path: Some(cache_path),
        ..Default::default()
    });
    let running = reborn.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let started = Instant::now();
    let mut client = Client::connect(running.addr);
    assert!(client.request(&line), "warm request failed");
    let elapsed = started.elapsed();
    let stats = running.state().stats();
    assert_eq!(stats.misses, 0, "the snapshot answers without an engine run");
    Client::connect(running.addr).request(r#"{"op":"shutdown"}"#);
    running.join().expect("clean shutdown");
    let _ = std::fs::remove_file(&path);

    ScenarioRow {
        scenario: "warm-restart".to_string(),
        clients: 1,
        workers: 2,
        requests: 1,
        errors: 0,
        elapsed_ms: elapsed.as_millis(),
        requests_per_sec: 1.0 / elapsed.as_secs_f64(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        latency_p50_us: client.latency.snapshot().p50(),
        latency_p95_us: client.latency.snapshot().p95(),
        latency_p99_us: client.latency.snapshot().p99(),
        latency_max_us: client.latency.snapshot().max(),
        shed: 0,
        admitted_p99_us: client.latency.snapshot().p99(),
        resume_speedup: 0.0,
        engine_runs: stats.misses,
        coalesce_fanout: 0,
        throughput_vs_uncoalesced: 0.0,
        time_to_first_hit_ms: elapsed.as_millis(),
    }
}

/// Times the same depth-capped geometric exploration twice: once from
/// scratch at an unbounded budget, and once resumed from the checkpoint a
/// half-budget run left behind. Returns `t_full / t_resume` — the payoff of
/// shipping the frontier in the partial-result cache instead of recomputing.
/// Returns 0.0 if the half-budget run finished outright (nothing to resume).
fn measure_resume_speedup() -> f64 {
    const GEO: &str = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
    let depth = 400;

    let fresh = Server::new(ServerConfig { workers: 1, ..Default::default() });
    let full_timer = Instant::now();
    let full = handle_line(
        fresh.state(),
        &format!(r#"{{"op":"lower","program":"{GEO}","depth":{depth}}}"#),
    )
    .expect("lower replies");
    let t_full = full_timer.elapsed();
    assert!(full.contains("\"complete\":true"), "unbounded run completes: {full}");

    let resumable = Server::new(ServerConfig { workers: 1, ..Default::default() });
    let half_ms = (t_full.as_millis() / 2).max(1);
    let partial = handle_line(
        resumable.state(),
        &format!(r#"{{"op":"lower","program":"{GEO}","depth":{depth},"deadline_ms":{half_ms}}}"#),
    )
    .expect("partial replies");
    if !partial.contains("\"checkpoint\"") {
        return 0.0;
    }
    let resume_timer = Instant::now();
    let resumed = handle_line(
        resumable.state(),
        &format!(r#"{{"op":"lower","program":"{GEO}","depth":{depth}}}"#),
    )
    .expect("resumed replies");
    let t_resume = resume_timer.elapsed();
    assert!(resumed.contains("\"resumed\":true"), "retry resumes the checkpoint: {resumed}");
    t_full.as_secs_f64() / t_resume.as_secs_f64().max(1e-9)
}

fn main() {
    let rows = vec![
        run_scenario("hot", 4, 1500, |client, index| {
            let id = client * 10_000 + index;
            if index % 2 == 0 {
                hot_verify_request(id)
            } else {
                hot_lower_request(id)
            }
        }),
        run_scenario("cold", 4, 150, cold_verify_request),
        run_scenario("mixed", 4, 500, |client, index| {
            if index % 5 == 4 {
                cold_verify_request(client, index)
            } else {
                hot_verify_request(client * 10_000 + index)
            }
        }),
        run_overload(),
        run_coalesce(),
        run_warm_restart(),
    ];

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>10} {:>12} {:>8} {:>8} {:>9} {:>9} {:>9} {:>6} {:>12} {:>8} {:>6} {:>8} {:>10} {:>10}",
        "scenario", "clients", "reqs", "errors", "t (ms)", "req/s", "hits", "misses", "p50 (us)",
        "p95 (us)", "p99 (us)", "shed", "adm p99 (us)", "resume", "runs", "fanout", "coalesce",
        "ttfh (ms)"
    );
    for r in &rows {
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>10} {:>12.1} {:>8} {:>8} {:>9} {:>9} {:>9} {:>6} {:>12} {:>7.2}x {:>6} {:>8} {:>9.2}x {:>10}",
            r.scenario,
            r.clients,
            r.requests,
            r.errors,
            r.elapsed_ms,
            r.requests_per_sec,
            r.cache_hits,
            r.cache_misses,
            r.latency_p50_us,
            r.latency_p95_us,
            r.latency_p99_us,
            r.shed,
            r.admitted_p99_us,
            r.resume_speedup,
            r.engine_runs,
            r.coalesce_fanout,
            r.throughput_vs_uncoalesced,
            r.time_to_first_hit_ms
        );
    }

    let json = serde_json::to_string_pretty(&rows).expect("serialise rows");
    std::fs::write("BENCH_service.json", json + "\n").expect("write BENCH_service.json");
    probterm_bench::append_history("service_load", &rows.serialize());
    eprintln!("wrote BENCH_service.json");
}
