//! Benchmark harness regenerating the paper's evaluation (Tables 1 and 2).
//!
//! The library part of this crate contains the row-generation logic shared by
//! the `table1` / `table2` binaries and the Criterion benchmarks, so that the
//! printed tables and the timed benchmarks are guaranteed to measure exactly
//! the same computations.

#![warn(missing_docs)]

use probterm_astver::verify_ast;
use probterm_intervalsem::{lower_bound, LowerBoundConfig};
use probterm_spcf::catalog::{self, Benchmark};
use serde::{Serialize, Value};

/// A row of Table 1 (lower-bound computation).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub term: String,
    /// The true probability of termination, when known.
    pub pterm: Option<f64>,
    /// The computed lower bound (decimal, 10 digits, truncated).
    pub lower_bound: String,
    /// The computed lower bound as a float (for quick comparisons).
    pub lower_bound_f64: f64,
    /// Lower bound on the expected number of reduction steps of terminating runs.
    pub expected_steps_lb: f64,
    /// Exploration depth used.
    pub depth: usize,
    /// Number of terminating symbolic paths found.
    pub paths: usize,
    /// Wall-clock time in milliseconds.
    pub time_ms: u128,
}

/// A row of Table 2 (AST verification).
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub term: String,
    /// The computed counting distribution `P_approx`, rendered.
    pub papprox: String,
    /// Whether AST was verified.
    pub verified: bool,
    /// Number of Environment strategies enumerated.
    pub strategies: usize,
    /// Wall-clock time in milliseconds.
    pub time_ms: u128,
}

/// The exploration depths used for Table 1, mirroring the `d` column of the
/// paper (same order as [`catalog::table1_benchmarks`]). The pedestrian model
/// uses a shallower depth, as in the paper.
pub fn table1_depths() -> Vec<usize> {
    vec![100, 200, 200, 150, 80, 90, 90, 80, 100, 40]
}

/// Depths scaled down by `factor` (for quick runs and the Criterion benches).
pub fn scaled_depths(factor: usize) -> Vec<usize> {
    table1_depths()
        .into_iter()
        .map(|d| (d / factor).max(10))
        .collect()
}

/// Computes one Table 1 row.
pub fn table1_row(benchmark: &Benchmark, depth: usize) -> Table1Row {
    let result = lower_bound(&benchmark.term, &LowerBoundConfig::default().with_depth(depth));
    Table1Row {
        term: benchmark.name.clone(),
        pterm: benchmark.expected_pterm,
        lower_bound: result.probability.to_decimal_string(10),
        lower_bound_f64: result.probability.to_f64(),
        expected_steps_lb: result.expected_steps.to_f64(),
        depth,
        paths: result.paths,
        time_ms: result.elapsed.as_millis(),
    }
}

/// Computes every row of Table 1 at the given depths (falling back to the
/// paper's depths when `depths` is shorter than the benchmark list).
pub fn table1(depths: &[usize]) -> Vec<Table1Row> {
    let defaults = table1_depths();
    catalog::table1_benchmarks()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let depth = depths.get(i).copied().unwrap_or(defaults[i]);
            table1_row(b, depth)
        })
        .collect()
}

/// Computes one Table 2 row.
pub fn table2_row(benchmark: &Benchmark) -> Table2Row {
    match verify_ast(&benchmark.term) {
        Ok(v) => Table2Row {
            term: benchmark.name.clone(),
            papprox: v.papprox.to_string(),
            verified: v.verified_ast,
            strategies: v.strategies,
            time_ms: v.elapsed.as_millis(),
        },
        Err(e) => Table2Row {
            term: benchmark.name.clone(),
            papprox: format!("error: {e}"),
            verified: false,
            strategies: 0,
            time_ms: 0,
        },
    }
}

/// Computes every row of Table 2.
pub fn table2() -> Vec<Table2Row> {
    catalog::table2_benchmarks().iter().map(table2_row).collect()
}

/// Appends one benchmark-trajectory record to `BENCH_history.jsonl` in the
/// current directory, alongside the benchmark's own `BENCH_*.json` report.
///
/// Each record is one JSONL line `{"ts": <unix seconds>, "git_rev":
/// "<short rev or unknown>", "bench": "<name>", "metrics": <metrics>}`, so
/// successive runs accumulate a perf trajectory across revisions that
/// `BENCH_*.json` (which is overwritten per run) cannot show.
pub fn append_history(bench: &str, metrics: &Value) {
    append_history_to(std::path::Path::new("BENCH_history.jsonl"), bench, metrics);
}

/// Path-parameterised variant of [`append_history`] (tests point it at a
/// temporary file). Best-effort: I/O failures are swallowed so a read-only
/// checkout never fails a benchmark run over its history log.
pub fn append_history_to(path: &std::path::Path, bench: &str, metrics: &Value) {
    let record = Value::Object(vec![
        ("ts".into(), Value::UInt(unix_seconds())),
        ("git_rev".into(), Value::Str(git_rev())),
        ("bench".into(), Value::Str(bench.to_string())),
        ("metrics".into(), metrics.clone()),
    ]);
    let Ok(line) = serde_json::to_string(&record) else { return };
    if let Ok(mut file) =
        std::fs::OpenOptions::new().create(true).append(true).open(path)
    {
        use std::io::Write as _;
        let _ = writeln!(file, "{line}");
    }
}

fn unix_seconds() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| u128::from(d.as_secs()))
        .unwrap_or(0)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders Table 1 rows as an aligned text table.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>10} {:>14} {:>12} {:>6} {:>8} {:>9}\n",
        "term", "Pterm", "LB", "E-steps LB", "d", "paths", "t (ms)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>10} {:>14} {:>12.4} {:>6} {:>8} {:>9}\n",
            r.term,
            r.pterm.map(|p| format!("{p:.4}")).unwrap_or_else(|| "?".into()),
            r.lower_bound,
            r.expected_steps_lb,
            r.depth,
            r.paths,
            r.time_ms
        ));
    }
    out
}

/// Renders Table 2 rows as an aligned text table.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<52} {:>9} {:>11} {:>9}\n",
        "term", "P_approx", "AST", "strategies", "t (ms)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:<52} {:>9} {:>11} {:>9}\n",
            r.term,
            r.papprox,
            if r.verified { "verified" } else { "no" },
            r.strategies,
            r.time_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_rows_are_sound() {
        let rows = table1(&scaled_depths(4));
        assert_eq!(rows.len(), 10);
        for r in &rows {
            if let Some(p) = r.pterm {
                assert!(
                    r.lower_bound_f64 <= p + 1e-9,
                    "{}: {} > {}",
                    r.term,
                    r.lower_bound_f64,
                    p
                );
            }
            assert!(r.lower_bound_f64 >= 0.0);
        }
        let rendered = render_table1(&rows);
        assert!(rendered.contains("geo"));
        assert!(rendered.contains("pedestrian"));
    }

    #[test]
    fn history_records_append_as_jsonl() {
        let path = std::env::temp_dir()
            .join(format!("BENCH_history_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_history_to(&path, "table1", &Value::Array(vec![]));
        append_history_to(
            &path,
            "table2",
            &Value::Object(vec![("rows".into(), Value::UInt(5))]),
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "appends, never overwrites: {text}");
        for line in &lines {
            let v: Value = serde_json::from_str(line).unwrap();
            for field in ["ts", "git_rev", "bench", "metrics"] {
                assert!(v.get(field).is_some(), "missing {field}: {line}");
            }
        }
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.get("bench").and_then(Value::as_str), Some("table2"));
        assert_eq!(
            second.get("metrics").unwrap().get("rows").and_then(Value::as_u64),
            Some(5)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn table2_rows_match_the_paper() {
        let rows = table2();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.verified), "{rows:?}");
        assert!(rows[0].papprox.contains("δ0"));
        assert!(rows[1].papprox.contains("δ2"));
        assert!(rows[2].papprox.contains("δ3"));
        let rendered = render_table2(&rows);
        assert!(rendered.contains("verified"));
        // Serialisable for the JSON report.
        let json = serde_json::to_string(&rows).unwrap();
        assert!(json.contains("papprox"));
    }
}
