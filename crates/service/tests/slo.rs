//! End-to-end latency SLO coverage: `deadline_ms` is a real bound on reply
//! time — for every benchmark in the paper's catalogue, a deadline-bounded
//! `lower` replies within the deadline plus a small fixed slack (one
//! measurement granule plus serialization), and resumed retries only ever
//! tighten the bound.

use probterm_core::spcf::catalog;
use probterm_service::{handle_line, Server, ServerConfig};
use serde::Value;
use std::time::Instant;

/// Fixed reply-latency slack on top of `deadline_ms`: covers the engine's
/// check granularity (one path step or one 64-box measurement slice), reply
/// serialization, and debug-build overhead. The point of the SLO is that the
/// overshoot is *bounded and small* — before incremental in-loop
/// measurement, a deadline-blind post-hoc volume pass could blow through the
/// deadline by arbitrary multiples of it.
const SLACK_MS: u128 = 900;

fn escape(program: &str) -> String {
    program.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Every catalogue benchmark replies within deadline + slack, with a
/// structured, sound answer (complete or checkpointed-partial).
#[test]
fn whole_catalogue_lower_replies_within_deadline_plus_slack() {
    let server = Server::new(ServerConfig { workers: 1, ..Default::default() });
    let deadline_ms: u128 = 80;
    let mut benchmarks = catalog::table1_benchmarks();
    benchmarks.extend(catalog::table2_benchmarks());
    assert!(benchmarks.len() >= 15, "the catalogue covers both tables");
    for bench in &benchmarks {
        let request = format!(
            r#"{{"op":"lower","program":"{}","depth":200,"deadline_ms":{deadline_ms}}}"#,
            escape(&bench.term.to_string())
        );
        let started = Instant::now();
        let reply = handle_line(server.state(), &request).expect("lower always replies");
        let elapsed = started.elapsed().as_millis();
        assert!(
            elapsed <= deadline_ms + SLACK_MS,
            "{}: replied in {elapsed} ms, over the {deadline_ms} ms deadline + {SLACK_MS} ms slack",
            bench.name
        );
        let v = serde_json::from_str(&reply).unwrap();
        let result = v.get("result").unwrap_or(&Value::Null);
        if v.get("ok").and_then(Value::as_bool) == Some(true) {
            // Sound bound in [0, 1], complete or an honest partial.
            let p = result.get("probability_f64").and_then(Value::as_f64).unwrap();
            assert!((0.0..=1.0 + 1e-12).contains(&p), "{}: bound {p}", bench.name);
            assert!(result.get("complete").and_then(Value::as_bool).is_some());
        } else {
            // The only structured failure a catalogue term may produce here
            // is an exhausted budget before the first measurement.
            let code = v
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str)
                .unwrap();
            assert_eq!(code, "budget_exceeded", "{}: {reply}", bench.name);
        }
    }
}

/// A resumed retry never loosens the cached partial bound, and its reply
/// says it resumed.
#[test]
fn resumed_retries_tighten_bounds_monotonically() {
    let server = Server::new(ServerConfig { workers: 1, ..Default::default() });
    let geo = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
    let first = handle_line(
        server.state(),
        &format!(r#"{{"op":"lower","program":"{geo}","depth":400,"deadline_ms":100}}"#),
    )
    .unwrap();
    let first_v = serde_json::from_str(&first).unwrap();
    let partial = first_v.get("result").unwrap();
    assert_eq!(partial.get("complete").and_then(Value::as_bool), Some(false));
    let p1 = partial.get("probability_f64").and_then(Value::as_f64).unwrap();

    let retry = handle_line(
        server.state(),
        &format!(r#"{{"op":"lower","program":"{geo}","depth":400,"deadline_ms":30000}}"#),
    )
    .unwrap();
    let retry_v = serde_json::from_str(&retry).unwrap();
    assert_eq!(retry_v.get("cache").and_then(Value::as_str), Some("miss"));
    let resumed = retry_v.get("result").unwrap();
    assert_eq!(resumed.get("resumed").and_then(Value::as_bool), Some(true), "{retry}");
    let p2 = resumed.get("probability_f64").and_then(Value::as_f64).unwrap();
    assert!(p2 >= p1, "resumed bound {p2} regressed below the partial {p1}");
    assert_eq!(server.state().stats().resumed, 1);
}
