//! End-to-end tests of the TCP transport: concurrent mixed request streams
//! answered with results identical to direct library calls, α-equivalent
//! resubmissions observable as cache hits, structured deadline errors that
//! leave workers alive, and graceful shutdown.

use probterm_core::spcf::{
    estimate_termination, parse_term, MonteCarloConfig, Strategy,
};
use probterm_core::{analyze_ast, analyze_lower_bound};
use probterm_service::{Server, ServerConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A blocking NDJSON client: send one line, read one line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream.set_nodelay(true).expect("set nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, writer: stream }
    }

    fn request(&mut self, line: &str) -> Value {
        let framed = format!("{line}\n");
        self.writer.write_all(framed.as_bytes()).expect("send request");
        self.writer.flush().expect("flush request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        serde_json::from_str(reply.trim_end()).expect("reply is valid JSON")
    }
}

fn result_of(reply: &Value) -> &Value {
    assert_eq!(
        reply.get("ok").and_then(Value::as_bool),
        Some(true),
        "expected success reply, got {reply:?}"
    );
    reply.get("result").expect("success replies carry a result")
}

fn error_code_of(reply: &Value) -> &str {
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));
    reply
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .expect("error replies carry a code")
}

const GEO: &str = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
const PRINTER_QUARTER: &str =
    "(fix phi x. if sample <= 1/4 then x else phi (phi (x + 1))) 1";
const PRINTER_FAIR: &str =
    "(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 1";

/// (a) Concurrent clients firing mixed request streams all get replies
/// identical to direct library calls.
#[test]
fn concurrent_mixed_requests_match_direct_library_calls() {
    let server = Server::new(ServerConfig { workers: 3, ..Default::default() });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let addr = running.addr;

    // Ground truth, computed directly against the libraries.
    let direct_estimate = estimate_termination(
        &parse_term(GEO).unwrap(),
        &MonteCarloConfig { runs: 300, max_steps: 500, seed: 11, strategy: Strategy::CallByValue },
    );
    let direct_lower = analyze_lower_bound(&parse_term(PRINTER_QUARTER).unwrap(), 35);
    let direct_verify = analyze_ast(&parse_term(PRINTER_FAIR).unwrap()).unwrap();

    let handles: Vec<_> = (0..4)
        .map(|client_index| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for round in 0..3 {
                    let id = client_index * 100 + round;
                    // Monte-Carlo simulation (seeded, call-by-value).
                    let reply = client.request(&format!(
                        r#"{{"id":{id},"op":"simulate","program":"{GEO}","runs":300,"steps":500,"seed":11,"strategy":"cbv"}}"#
                    ));
                    assert_eq!(reply.get("id").and_then(Value::as_u64), Some(id));
                    let result = result_of(&reply).clone();
                    // Interval-semantics lower bound.
                    let reply = client.request(&format!(
                        r#"{{"id":{},"op":"lower","program":"{PRINTER_QUARTER}","depth":35}}"#,
                        id + 50
                    ));
                    let lower = result_of(&reply).clone();
                    // AST verification.
                    let reply = client.request(&format!(
                        r#"{{"id":{},"op":"verify","program":"{PRINTER_FAIR}"}}"#,
                        id + 75
                    ));
                    let verify = result_of(&reply).clone();
                    // Hand the last round's payloads back for comparison
                    // (earlier rounds exercise the cache-hit path).
                    if round == 2 {
                        return (result, lower, verify);
                    }
                }
                unreachable!("loop always returns on the last round")
            })
        })
        .collect();

    for handle in handles {
        let (simulate, lower, verify) = handle.join().expect("client thread");
        assert_eq!(
            simulate.get("terminated").and_then(Value::as_u64),
            Some(direct_estimate.terminated as u64)
        );
        assert_eq!(
            simulate.get("probability").and_then(Value::as_f64),
            Some(direct_estimate.probability())
        );
        assert_eq!(
            simulate.get("mean_steps").and_then(Value::as_f64),
            Some(direct_estimate.mean_steps)
        );
        assert_eq!(
            lower.get("probability").and_then(Value::as_str),
            Some(direct_lower.probability.to_decimal_string(10).as_str())
        );
        assert_eq!(
            lower.get("paths").and_then(Value::as_u64),
            Some(direct_lower.paths as u64)
        );
        assert_eq!(
            verify.get("verified").and_then(Value::as_bool),
            Some(direct_verify.verified_ast)
        );
        assert_eq!(
            verify.get("papprox").and_then(Value::as_str),
            Some(direct_verify.papprox.to_string().as_str())
        );
    }

    let mut control = Client::connect(addr);
    let reply = control.request(r#"{"op":"shutdown"}"#);
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
    drop(control);
    running.join().expect("server exits cleanly after shutdown");
}

/// (b) An α-renamed resubmission of a `verify` request is a cache hit,
/// observable through the `stats` counters.
#[test]
fn alpha_renamed_verify_resubmission_is_a_cache_hit() {
    let server = Server::new(ServerConfig { workers: 2, ..Default::default() });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(running.addr);

    let before = result_of(&client.request(r#"{"op":"stats"}"#)).clone();
    assert_eq!(before.get("hits").and_then(Value::as_u64), Some(0));

    let original = client.request(&format!(
        r#"{{"id":1,"op":"verify","program":"{PRINTER_FAIR}"}}"#
    ));
    assert_eq!(original.get("cache").and_then(Value::as_str), Some("miss"));

    // Same program modulo bound-variable names (and irrelevant whitespace).
    let renamed =
        "(fix retry copies.  if sample <= 1/2 then copies else retry (retry (copies + 1))) 1";
    let resubmitted =
        client.request(&format!(r#"{{"id":2,"op":"verify","program":"{renamed}"}}"#));
    assert_eq!(resubmitted.get("cache").and_then(Value::as_str), Some("hit"));
    assert_eq!(result_of(&original), result_of(&resubmitted));

    let after = result_of(&client.request(r#"{"op":"stats"}"#)).clone();
    assert_eq!(after.get("hits").and_then(Value::as_u64), Some(1));
    assert_eq!(after.get("misses").and_then(Value::as_u64), Some(1));

    client.request(r#"{"op":"shutdown"}"#);
    drop(client);
    running.join().expect("clean shutdown");
}

/// (c) A request exceeding its deadline yields a structured
/// `budget_exceeded` error and the worker keeps serving on the same
/// connection.
#[test]
fn deadline_exceeded_requests_do_not_kill_workers() {
    let server = Server::new(ServerConfig { workers: 1, ..Default::default() });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(running.addr);

    let reply = client.request(
        r#"{"id":"slow","op":"simulate","program":"(fix phi x. phi x) 0","runs":400000,"steps":2500,"deadline_ms":40}"#,
    );
    assert_eq!(error_code_of(&reply), "budget_exceeded");
    assert_eq!(reply.get("id").and_then(Value::as_str), Some("slow"));
    let message = reply
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Value::as_str)
        .unwrap();
    assert!(message.contains("deadline"), "{message}");

    // The single worker survived and still answers.
    let reply = client.request(&format!(
        r#"{{"id":"next","op":"simulate","program":"{GEO}","runs":50,"steps":400,"seed":3}}"#
    ));
    let result = result_of(&reply);
    assert_eq!(result.get("runs").and_then(Value::as_u64), Some(50));
    let stats = result_of(&client.request(r#"{"op":"stats"}"#)).clone();
    assert_eq!(stats.get("inflight").and_then(Value::as_u64), Some(0));

    client.request(r#"{"op":"shutdown"}"#);
    drop(client);
    running.join().expect("clean shutdown");
}

/// (d) A deadline-bounded `lower` request whose exploration cannot finish
/// returns an `ok` reply carrying the sound partial bound (marked
/// `"complete": false`) instead of a bare `budget_exceeded`, the partial
/// entry is served to bounded retries from the cache, and the worker keeps
/// serving.
#[test]
fn deadline_bounded_lower_returns_partial_bounds_over_tcp() {
    let server = Server::new(ServerConfig { workers: 1, ..Default::default() });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(running.addr);

    // gr explores an exponentially branching tree: depth 400 cannot complete
    // within the deadline, but its earliest terminating paths are found in
    // microseconds.
    let gr = "(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0";
    let request = format!(
        r#"{{"id":"partial","op":"lower","program":"{gr}","depth":400,"deadline_ms":150}}"#
    );
    let reply = client.request(&request);
    let result = result_of(&reply);
    assert_eq!(
        result.get("complete").and_then(Value::as_bool),
        Some(false),
        "expected a partial reply, got {reply:?}"
    );
    let partial = result.get("probability_f64").and_then(Value::as_f64).unwrap();
    assert!(partial > 0.0, "partial bound must be nonzero");
    assert!(partial < 1.0, "partial bound must be sound");

    // A bounded retry is an instant cache hit on the partial bound.
    let retry = client.request(&request);
    assert_eq!(retry.get("cache").and_then(Value::as_str), Some("hit"));
    assert_eq!(result_of(&retry), result);

    // The worker survived and still serves complete results.
    let reply = client.request(&format!(
        r#"{{"id":"full","op":"lower","program":"{GEO}","depth":40}}"#
    ));
    let full = result_of(&reply);
    assert_eq!(full.get("complete").and_then(Value::as_bool), Some(true));
    assert!(full.get("probability_f64").and_then(Value::as_f64).unwrap() > 0.9);

    client.request(r#"{"op":"shutdown"}"#);
    drop(client);
    running.join().expect("clean shutdown");
}

/// Malformed lines get structured replies and never wedge the connection.
#[test]
fn malformed_traffic_gets_structured_errors() {
    let server = Server::new(ServerConfig { workers: 2, ..Default::default() });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(running.addr);

    let reply = client.request("this is not json");
    assert_eq!(error_code_of(&reply), "parse_error");
    let reply = client.request(r#"{"id":7,"op":"halt_and_catch_fire"}"#);
    assert_eq!(error_code_of(&reply), "bad_request");
    assert_eq!(reply.get("id").and_then(Value::as_u64), Some(7));
    let reply = client.request(r#"{"op":"lower","program":"fix phi x."}"#);
    assert_eq!(error_code_of(&reply), "parse_error");

    // The connection is still healthy.
    let reply = client.request(r#"{"op":"catalog"}"#);
    assert!(result_of(&reply).get("table1").is_some());

    client.request(r#"{"op":"shutdown"}"#);
    drop(client);
    running.join().expect("clean shutdown");
}
