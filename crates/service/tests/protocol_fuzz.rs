//! Seeded fuzzing of the NDJSON line parser through the full service
//! pipeline: arbitrary bytes, truncations of valid requests, and oversized
//! programs must all produce a structured error reply (or no reply, for
//! blank lines) — never a panic and never a silently dropped line.

use probterm_service::{handle_line, Server, ServerConfig};
use proptest::prelude::*;
use serde::Value;

fn server() -> Server {
    Server::new(ServerConfig { workers: 1, ..Default::default() })
}

/// The reply to `line`, asserting the structural protocol invariants that
/// must hold for *any* input: blank lines get no reply, everything else gets
/// exactly one single-line JSON reply with an `ok` field, and error replies
/// carry a non-empty machine-readable code.
fn check_structured(server: &Server, line: &str) {
    let reply = handle_line(server.state(), line);
    if line.trim().is_empty() {
        assert!(reply.is_none(), "blank lines must produce no reply");
        return;
    }
    let reply = reply.expect("non-blank lines always get a reply");
    assert!(!reply.contains('\n'), "replies are single lines: {reply:?}");
    let v = serde_json::from_str(&reply).expect("replies are valid JSON");
    let ok = v.get("ok").and_then(Value::as_bool).expect("replies carry ok");
    if !ok {
        let code = v
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .expect("error replies carry a code");
        assert!(!code.is_empty());
    }
}

const TEMPLATE: &str =
    r#"{"id":7,"op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0","depth":12,"deadline_ms":800}"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Arbitrary byte soup (lossily decoded) never panics the pipeline and
    /// always yields a structured reply.
    #[test]
    fn arbitrary_bytes_get_structured_replies(
        bytes in proptest::collection::vec(proptest::any::<u8>(), 0..160)
    ) {
        let s = server();
        let line = String::from_utf8_lossy(&bytes).into_owned();
        check_structured(&s, &line);
    }

    /// Every proper prefix of a valid request is malformed JSON and must
    /// come back as a structured `parse_error`, not a panic or a hang.
    #[test]
    fn truncated_requests_are_structured_parse_errors(cut in 1usize..126) {
        let s = server();
        let truncated: String = TEMPLATE.chars().take(cut).collect();
        if truncated.len() < TEMPLATE.len() {
            let reply = handle_line(s.state(), &truncated).expect("truncations get replies");
            let v = serde_json::from_str(&reply).unwrap();
            prop_assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
            let code = v
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str)
                .unwrap();
            prop_assert_eq!(code, "parse_error");
        }
    }

    /// Splicing arbitrary garbage into the middle of a valid request stays
    /// structured: the reply is parse_error, bad_request, or (if the line
    /// happens to survive as valid JSON) a normal reply.
    #[test]
    fn mutated_requests_stay_structured(
        at in 0usize..126,
        garbage in proptest::collection::vec(32u8..127, 1..8)
    ) {
        let s = server();
        let mut line = TEMPLATE.to_string();
        let at = at.min(line.len());
        line.insert_str(at, &String::from_utf8_lossy(&garbage));
        check_structured(&s, &line);
    }
}

/// An oversized program (beyond `max_program_bytes`) is rejected with a
/// structured `bad_request`, not an attempt to parse or run it.
#[test]
fn oversized_programs_are_rejected_structurally() {
    let s = server();
    let huge = "x".repeat(70 * 1024);
    let reply = handle_line(
        s.state(),
        &format!(r#"{{"id":1,"op":"lower","program":"{huge}"}}"#),
    )
    .unwrap();
    let v = serde_json::from_str(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        v.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("bad_request")
    );
}
