//! Chaos tests: the server stays available and structured under injected
//! engine panics, slowdowns and mid-reply connection drops, sheds load with
//! `overloaded` + `retry_after_ms` when the admission queue saturates, reaps
//! idle connections with a structured notice, and never corrupts the result
//! cache — post-chaos replies still match direct library calls exactly.

use probterm_core::analyze_lower_bound;
use probterm_core::spcf::parse_term;
use probterm_service::{InjectSpec, Server, ServerConfig};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking NDJSON client: send one line, read one line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream.set_nodelay(true).expect("set nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, writer: stream }
    }

    fn send(&mut self, line: &str) {
        let framed = format!("{line}\n");
        self.writer.write_all(framed.as_bytes()).expect("send request");
        self.writer.flush().expect("flush request");
    }

    fn read_reply(&mut self) -> Value {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        serde_json::from_str(reply.trim_end()).expect("reply is valid JSON")
    }

    fn request(&mut self, line: &str) -> Value {
        self.send(line);
        self.read_reply()
    }
}

fn is_ok(reply: &Value) -> bool {
    reply.get("ok").and_then(Value::as_bool) == Some(true)
}

fn error_code_of(reply: &Value) -> &str {
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false), "{reply:?}");
    reply
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .expect("error replies carry a code")
}

/// Distinct quickly-terminating programs: each is a fresh cache key, so each
/// request is one engine run and the injection schedule is predictable.
fn program(k: usize) -> String {
    format!("(fix phi x. if sample <= 1/2 then x else phi (x + {k})) 0")
}

const GEO: &str = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";

/// Panics and slowdowns hit exactly the scheduled engine runs; every client
/// gets a structured reply; the cache survives uncorrupted and post-chaos
/// results still match direct library calls exactly.
#[test]
fn injected_panics_and_slowdowns_leave_structured_replies_and_a_clean_cache() {
    let server = Server::new(ServerConfig {
        workers: 2,
        inject: Some(InjectSpec::parse("seed=5;panic=@3;slow=@5:30").unwrap()),
        ..Default::default()
    });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(running.addr);

    let mut failed = Vec::new();
    for k in 1..=12 {
        let reply = client.request(&format!(
            r#"{{"id":{k},"op":"lower","program":"{}","depth":25}}"#,
            program(k)
        ));
        assert_eq!(reply.get("id").and_then(Value::as_u64), Some(k as u64));
        if is_ok(&reply) {
            let p = reply
                .get("result")
                .and_then(|r| r.get("probability_f64"))
                .and_then(Value::as_f64)
                .expect("lower replies carry a bound");
            assert!(p > 0.9, "geometric chains terminate a.s., got {p}");
        } else {
            assert_eq!(error_code_of(&reply), "internal");
            failed.push(k);
        }
    }
    // panic=@3 over 12 lock-step engine runs: exactly runs 3, 6, 9, 12.
    assert_eq!(failed, vec![3, 6, 9, 12]);

    // Cache integrity after chaos: a surviving entry is a hit and matches the
    // direct library call exactly.
    let reply = client.request(&format!(
        r#"{{"id":100,"op":"lower","program":"{}","depth":25}}"#,
        program(1)
    ));
    assert_eq!(reply.get("cache").and_then(Value::as_str), Some("hit"));
    let direct = analyze_lower_bound(&parse_term(&program(1)).unwrap(), 25);
    let served = reply
        .get("result")
        .and_then(|r| r.get("probability"))
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    assert_eq!(served, direct.probability.to_decimal_string(10));

    // Fault accounting: 4 panics + slow runs 5 and 10.
    let stats = client.request(r#"{"id":101,"op":"stats"}"#);
    let robustness = stats
        .get("result")
        .and_then(|r| r.get("robustness"))
        .expect("stats carries robustness counters")
        .clone();
    assert_eq!(robustness.get("injected_faults").and_then(Value::as_u64), Some(6));

    client.send(r#"{"id":102,"op":"shutdown"}"#);
    let _ = client.read_reply();
    running.join().expect("clean shutdown after chaos");
}

/// A dropped reply truncates mid-line and hard-closes that connection only:
/// fresh connections keep working and the computed result was still cached.
#[test]
fn dropped_replies_close_one_connection_but_not_the_server() {
    let server = Server::new(ServerConfig {
        workers: 1,
        inject: Some(InjectSpec::parse("drop=@1").unwrap()),
        ..Default::default()
    });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");

    let mut victim = Client::connect(running.addr);
    victim.send(&format!(r#"{{"id":1,"op":"lower","program":"{GEO}","depth":20}}"#));
    // The injected drop writes half the reply, then hard-closes: the read
    // ends at EOF without a newline-terminated JSON line.
    let mut dangling = String::new();
    let n = victim.reader.read_to_string(&mut dangling).unwrap_or(0);
    assert!(
        n == 0 || serde_json::from_str(dangling.trim_end()).is_err(),
        "a dropped reply must not arrive whole: {dangling:?}"
    );

    // The server is still healthy: control ops are never injected, and the
    // dropped request's result was cached before the write — so the retry is
    // a hit, which draws no injection decision and arrives intact.
    let mut fresh = Client::connect(running.addr);
    let stats = fresh.request(r#"{"id":2,"op":"stats"}"#);
    assert!(is_ok(&stats));
    let retry =
        fresh.request(&format!(r#"{{"id":3,"op":"lower","program":"{GEO}","depth":20}}"#));
    assert!(is_ok(&retry), "{retry:?}");
    assert_eq!(retry.get("cache").and_then(Value::as_str), Some("hit"));

    fresh.send(r#"{"id":4,"op":"shutdown"}"#);
    let _ = fresh.read_reply();
    running.join().expect("clean shutdown");
}

/// With one worker pinned by a slow request and a queue depth of 1, the
/// second queued engine request is shed immediately with `overloaded` and a
/// positive `retry_after_ms`, while the admitted requests complete.
#[test]
fn saturated_admission_queue_sheds_with_retry_after() {
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..Default::default()
    });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");

    // Pin the single worker: a deadline-bounded run on a tree too deep to
    // finish keeps the engine busy for the whole deadline.
    let mut pinner = Client::connect(running.addr);
    pinner.send(&format!(
        r#"{{"id":1,"op":"lower","program":"{GEO}","depth":400,"deadline_ms":500}}"#
    ));
    std::thread::sleep(Duration::from_millis(100)); // let the worker pop it

    // Same connection, two quick engine requests back to back: the first is
    // admitted (queued = 1 = depth), the second must be shed by the reader.
    // The two differ in `runs` — an *identical* second request would be
    // coalesced onto the first's in-flight run instead of shed.
    let mut burst = Client::connect(running.addr);
    burst.send(r#"{"id":2,"op":"simulate","program":"sample","runs":10}"#);
    burst.send(r#"{"id":3,"op":"simulate","program":"sample","runs":11}"#);
    // The shed reply is written by the reader thread immediately, so it
    // arrives first; the admitted request replies once the worker frees up.
    let shed = burst.read_reply();
    assert_eq!(shed.get("id").and_then(Value::as_u64), Some(3));
    assert_eq!(error_code_of(&shed), "overloaded");
    let retry_after = shed
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(Value::as_u64)
        .expect("shed replies carry retry_after_ms");
    assert!(retry_after >= 1);
    let admitted = burst.read_reply();
    assert_eq!(admitted.get("id").and_then(Value::as_u64), Some(2));
    assert!(is_ok(&admitted), "{admitted:?}");

    // The pinned request still completes with its sound partial bound, and
    // control ops were never sheddable.
    let pinned = pinner.read_reply();
    assert!(is_ok(&pinned), "{pinned:?}");
    let stats = pinner.request(r#"{"id":4,"op":"stats"}"#);
    assert!(is_ok(&stats));
    let shed_count = stats
        .get("result")
        .and_then(|r| r.get("robustness"))
        .and_then(|r| r.get("shed"))
        .and_then(Value::as_u64);
    assert_eq!(shed_count, Some(1));

    pinner.send(r#"{"id":5,"op":"shutdown"}"#);
    let _ = pinner.read_reply();
    running.join().expect("clean shutdown");
}

/// A panic injected into a coalesced engine run errors the leader AND every
/// attached waiter — nobody hangs waiting on a run that died — and the
/// server stays healthy for control ops afterwards.
#[test]
fn a_panicked_coalesced_run_errors_every_waiter_without_hanging() {
    let server = Server::new(ServerConfig {
        workers: 1,
        // The single engine run sleeps 300 ms (time for the waiters to
        // attach), then panics.
        inject: Some(InjectSpec::parse("seed=1;slow=@1:300;panic=@1").unwrap()),
        ..Default::default()
    });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");

    let lower = format!(r#"{{"id":1,"op":"lower","program":"{GEO}","depth":30}}"#);
    let mut leader = Client::connect(running.addr);
    leader.send(&lower);
    std::thread::sleep(Duration::from_millis(100)); // leader is mid-sleep

    let mut waiters: Vec<Client> =
        (0..2).map(|_| Client::connect(running.addr)).collect();
    for waiter in &mut waiters {
        waiter.send(&lower);
    }

    // Every party gets a structured internal error; none of the reads hang.
    let leader_reply = leader.read_reply();
    assert_eq!(error_code_of(&leader_reply), "internal");
    for waiter in &mut waiters {
        let reply = waiter.read_reply();
        assert_eq!(error_code_of(&reply), "internal", "{reply:?}");
    }

    // The flight was cleaned up and the server still serves: control ops
    // never draw injection decisions.
    let stats = leader.request(r#"{"id":9,"op":"stats"}"#);
    assert!(is_ok(&stats));
    let coalesced = stats
        .get("result")
        .and_then(|r| r.get("coalesced_waiters"))
        .and_then(Value::as_u64);
    assert_eq!(coalesced, Some(2));

    leader.send(r#"{"id":10,"op":"shutdown"}"#);
    let _ = leader.read_reply();
    running.join().expect("clean shutdown after a coalesced panic");
}

/// An idle connection is closed after the configured timeout with one
/// structured `idle_timeout` line; active connections are unaffected.
#[test]
fn idle_connections_are_reaped_with_a_structured_notice() {
    let server = Server::new(ServerConfig {
        idle_timeout_ms: Some(150),
        ..Default::default()
    });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");

    let mut idle = Client::connect(running.addr);
    // Say nothing; the reaper should speak first.
    let notice = idle.read_reply();
    assert_eq!(error_code_of(&notice), "idle_timeout");
    // After the notice the stream is closed.
    let mut rest = String::new();
    assert_eq!(idle.reader.read_to_string(&mut rest).unwrap_or(0), 0);

    // A busy connection (requests well inside the timeout) never trips it.
    let mut busy = Client::connect(running.addr);
    for i in 0..3 {
        let reply = busy.request(&format!(r#"{{"id":{i},"op":"stats"}}"#));
        assert!(is_ok(&reply));
    }
    let stats = busy.request(r#"{"id":9,"op":"stats"}"#);
    let idle_closed = stats
        .get("result")
        .and_then(|r| r.get("robustness"))
        .and_then(|r| r.get("idle_closed"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(idle_closed >= 1);

    busy.send(r#"{"id":10,"op":"shutdown"}"#);
    let _ = busy.read_reply();
    running.join().expect("clean shutdown");
}
