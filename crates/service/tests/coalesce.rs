//! Single-flight coalescing and cache persistence, end to end over TCP:
//! identical concurrent cold requests share exactly one engine run, joiners
//! with divergent deadlines are reconciled soundly (poorer ones get the
//! anytime partial, richer ones upgrade the shared budget), a `--cache-path`
//! snapshot survives a restart, and the event loop holds hundreds of
//! concurrent connections on two workers.

use probterm_service::{InjectSpec, Server, ServerConfig, CACHE_SNAPSHOT_VERSION};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking NDJSON client: send one line, read one line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream.set_nodelay(true).expect("set nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, writer: stream }
    }

    fn send(&mut self, line: &str) {
        let framed = format!("{line}\n");
        self.writer.write_all(framed.as_bytes()).expect("send request");
        self.writer.flush().expect("flush request");
    }

    fn read_reply(&mut self) -> Value {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        serde_json::from_str(reply.trim_end()).expect("reply is valid JSON")
    }

    fn request(&mut self, line: &str) -> Value {
        self.send(line);
        self.read_reply()
    }
}

fn is_ok(reply: &Value) -> bool {
    reply.get("ok").and_then(Value::as_bool) == Some(true)
}

fn cache_tag(reply: &Value) -> &str {
    reply.get("cache").and_then(Value::as_str).expect("reply carries a cache tag")
}

fn stat_u64(stats: &Value, field: &str) -> u64 {
    stats
        .get("result")
        .and_then(|r| r.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats carries {field}: {stats:?}"))
}

const GEO: &str = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";

/// Eight concurrent identical cold `lower` requests: one engine run, eight
/// replies with identical results, seven accounted coalesced waiters. The
/// injected slow fault holds the leader's run open long enough that the
/// joiners demonstrably arrive while it is in flight — no timing luck.
#[test]
fn identical_cold_requests_share_exactly_one_engine_run() {
    let server = Server::new(ServerConfig {
        workers: 2,
        // Every engine run sleeps 250 ms before dispatch: a wide-open window
        // for the seven joiners to attach to the leader's flight.
        inject: Some(InjectSpec::parse("seed=7;slow=@1:250").unwrap()),
        ..Default::default()
    });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");

    let lower = format!(r#"{{"id":1,"op":"lower","program":"{GEO}","depth":40}}"#);
    let mut leader = Client::connect(running.addr);
    leader.send(&lower);
    std::thread::sleep(Duration::from_millis(80)); // leader is mid-sleep

    let mut joiners: Vec<Client> =
        (0..7).map(|_| Client::connect(running.addr)).collect();
    for joiner in &mut joiners {
        joiner.send(&lower);
    }

    let leader_reply = leader.read_reply();
    assert!(is_ok(&leader_reply), "{leader_reply:?}");
    assert_eq!(cache_tag(&leader_reply), "miss");
    let leader_result = leader_reply.get("result").expect("leader result").clone();
    for joiner in &mut joiners {
        let reply = joiner.read_reply();
        assert!(is_ok(&reply), "{reply:?}");
        assert_eq!(cache_tag(&reply), "coalesced");
        assert_eq!(reply.get("result"), Some(&leader_result), "fanned-out result differs");
    }

    let stats = leader.request(r#"{"id":99,"op":"stats"}"#);
    assert_eq!(stat_u64(&stats, "misses"), 1, "exactly one engine run");
    assert_eq!(stat_u64(&stats, "hits"), 0, "joiners never touched the cache");
    assert_eq!(stat_u64(&stats, "coalesced_waiters"), 7);
    assert_eq!(stat_u64(&stats, "coalesce_fanout_max"), 7);

    leader.send(r#"{"id":100,"op":"shutdown"}"#);
    let _ = leader.read_reply();
    running.join().expect("clean shutdown");
}

/// Divergent deadlines on one coalesced run: a joiner poorer than the leader
/// receives the sound anytime partial from the run's live progress, while a
/// joiner with no deadline upgrades the shared budget so the run — whose
/// leader deadline alone would have expired during the injected slowdown —
/// completes for everyone still attached.
#[test]
fn divergent_deadlines_are_reconciled_soundly() {
    let server = Server::new(ServerConfig {
        workers: 1,
        // The single engine run sleeps 400 ms before dispatch: longer than
        // the leader's own 200 ms deadline, so completion proves the
        // unbounded joiner upgraded the shared budget.
        inject: Some(InjectSpec::parse("seed=9;slow=@1:400").unwrap()),
        ..Default::default()
    });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");

    let mut leader = Client::connect(running.addr);
    leader.send(&format!(
        r#"{{"id":1,"op":"lower","program":"{GEO}","depth":60,"deadline_ms":200}}"#
    ));
    std::thread::sleep(Duration::from_millis(120)); // leader is mid-sleep

    // Joiner A is poorer than the run: its 100 ms expire while the leader is
    // still inside the injected sleep.
    let mut poorer = Client::connect(running.addr);
    poorer.send(&format!(
        r#"{{"id":2,"op":"lower","program":"{GEO}","depth":60,"deadline_ms":100}}"#
    ));
    // Joiner B is richer: no deadline at all, which lifts the shared budget
    // to unbounded the moment it registers.
    let mut richer = Client::connect(running.addr);
    richer.send(&format!(r#"{{"id":3,"op":"lower","program":"{GEO}","depth":60}}"#));

    let partial = poorer.read_reply();
    assert!(is_ok(&partial), "{partial:?}");
    assert_eq!(cache_tag(&partial), "coalesced");
    let result = partial.get("result").expect("partial result");
    assert_eq!(result.get("complete").and_then(Value::as_bool), Some(false));
    assert_eq!(
        result.get("partial_source").and_then(Value::as_str),
        Some("coalesced-progress"),
        "{partial:?}"
    );

    for (client, tag) in [(&mut leader, "miss"), (&mut richer, "coalesced")] {
        let reply = client.read_reply();
        assert!(is_ok(&reply), "{reply:?}");
        assert_eq!(cache_tag(&reply), tag);
        assert_eq!(
            reply.get("result").and_then(|r| r.get("complete")).and_then(Value::as_bool),
            Some(true),
            "the upgraded budget lets the run finish: {reply:?}"
        );
    }

    let stats = leader.request(r#"{"id":99,"op":"stats"}"#);
    assert_eq!(stat_u64(&stats, "misses"), 1);
    assert_eq!(stat_u64(&stats, "coalesced_waiters"), 2);

    leader.send(r#"{"id":100,"op":"shutdown"}"#);
    let _ = leader.read_reply();
    running.join().expect("clean shutdown");
}

/// A `--cache-path` snapshot round-trips a graceful restart: the reborn
/// server answers a previously-computed request as a cache hit without
/// rerunning the engine, and both sides account the persistence traffic.
#[test]
fn cache_snapshot_survives_a_graceful_restart() {
    let path = std::env::temp_dir().join(format!(
        "probterm-coalesce-restart-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let cache_path = path.to_str().expect("utf-8 temp path").to_string();
    let lower = format!(r#"{{"id":1,"op":"lower","program":"{GEO}","depth":35}}"#);

    let first = Server::new(ServerConfig {
        workers: 1,
        cache_path: Some(cache_path.clone()),
        ..Default::default()
    });
    let running = first.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(running.addr);
    let cold = client.request(&lower);
    assert!(is_ok(&cold), "{cold:?}");
    assert_eq!(cache_tag(&cold), "miss");
    let cold_result = cold.get("result").expect("cold result").clone();
    client.send(r#"{"id":2,"op":"shutdown"}"#);
    let _ = client.read_reply();
    running.join().expect("clean shutdown persists the snapshot");

    let snapshot = std::fs::read_to_string(&path).expect("snapshot written on drain");
    assert_eq!(snapshot.lines().next(), Some(CACHE_SNAPSHOT_VERSION));

    let reborn = Server::new(ServerConfig {
        workers: 1,
        cache_path: Some(cache_path),
        ..Default::default()
    });
    let running = reborn.spawn_tcp("127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(running.addr);
    let warm = client.request(&lower);
    assert!(is_ok(&warm), "{warm:?}");
    assert_eq!(cache_tag(&warm), "hit", "the reborn server serves from the snapshot");
    assert_eq!(warm.get("result"), Some(&cold_result));

    let stats = client.request(r#"{"id":3,"op":"stats"}"#);
    assert!(stat_u64(&stats, "cache_persist_loaded") >= 1, "{stats:?}");
    assert_eq!(stat_u64(&stats, "misses"), 0, "no engine run after the restart");

    client.send(r#"{"id":4,"op":"shutdown"}"#);
    let _ = client.read_reply();
    running.join().expect("clean shutdown");
    let _ = std::fs::remove_file(&path);
}

/// The readiness-polled event loop holds hundreds of concurrent connections
/// on two workers — no thread per connection — and every one of them gets
/// its reply.
#[test]
fn event_loop_sustains_hundreds_of_concurrent_connections() {
    let server = Server::new(ServerConfig { workers: 2, ..Default::default() });
    let running = server.spawn_tcp("127.0.0.1:0").expect("bind loopback");

    let mut clients: Vec<Client> =
        (0..260).map(|_| Client::connect(running.addr)).collect();
    // All connections are open simultaneously before anyone speaks.
    for (i, client) in clients.iter_mut().enumerate() {
        client.send(&format!(r#"{{"id":{i},"op":"stats"}}"#));
    }
    for (i, client) in clients.iter_mut().enumerate() {
        let reply = client.read_reply();
        assert!(is_ok(&reply), "connection {i}: {reply:?}");
        assert_eq!(reply.get("id").and_then(Value::as_u64), Some(i as u64));
    }

    clients[0].send(r#"{"id":999,"op":"shutdown"}"#);
    let _ = clients[0].read_reply();
    running.join().expect("clean shutdown");
}
