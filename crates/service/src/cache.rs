//! Bounded, content-addressed LRU cache for analysis results.
//!
//! Keys combine the α-invariant canonical hash of the program
//! ([`probterm_core::spcf::Term::canonical_key`]) with the analysis tag and a
//! rendered configuration string, so syntactically distinct but α-equivalent
//! resubmissions of the same request are cache hits. Values are the `result`
//! payloads of successful replies (error replies are never cached).
//!
//! Recency is tracked with a monotone tick per entry; eviction scans for the
//! minimum tick. That makes `insert` O(capacity) in the worst case, which is
//! fine for the bounded sizes the service uses (default 1024) — the entries
//! being displaced each cost an engine run that is orders of magnitude more
//! expensive than the scan.

use serde::Value;
use std::collections::HashMap;
use std::time::Instant;

/// The content address of one analysis result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// α-invariant canonical hash of the analysed term.
    pub term: u128,
    /// Analysis tag (the request op).
    pub analysis: &'static str,
    /// Rendered analysis configuration (depth, runs, seed, strategy, ...).
    pub config: String,
}

#[derive(Debug)]
struct Entry {
    value: Value,
    tick: u64,
    /// Approximate rendered size of the payload, in bytes (see
    /// [`approx_bytes`]).
    bytes: usize,
    /// When this entry was last inserted or served — the "last-hit" clock
    /// behind [`ResultCache::oldest_entry_ms`].
    last_hit: Instant,
}

/// Approximate rendered size of a payload in bytes: string/number lengths
/// plus structural punctuation, without actually rendering. Close enough for
/// capacity planning — the gauge is a statistic, not an accountant.
fn approx_bytes(value: &Value) -> usize {
    match value {
        Value::Null => 4,
        Value::Bool(b) => {
            if *b {
                4
            } else {
                5
            }
        }
        Value::Num(_) => 16,
        Value::UInt(u) => 1 + u.checked_ilog10().unwrap_or(0) as usize,
        Value::Int(_) => 16,
        Value::Str(s) => s.len() + 2,
        Value::Array(items) => {
            2 + items.iter().map(|v| approx_bytes(v) + 1).sum::<usize>()
        }
        Value::Object(fields) => {
            2 + fields
                .iter()
                .map(|(k, v)| k.len() + 4 + approx_bytes(v))
                .sum::<usize>()
        }
    }
}

/// A bounded LRU map from [`CacheKey`] to result payloads, with hit/miss
/// counters and byte accounting. Capacity 0 disables storage (every lookup
/// is a miss).
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Sum of the per-entry `bytes`, maintained incrementally across
    /// insert/overwrite/evict.
    bytes: usize,
}

impl ResultCache {
    /// Creates an empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(4096)),
            tick: 0,
            hits: 0,
            misses: 0,
            bytes: 0,
        }
    }

    /// Looks a result up, bumping its recency and the hit/miss counters.
    pub fn get(&mut self, key: &CacheKey) -> Option<Value> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.tick = self.tick;
                entry.last_hit = Instant::now();
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting the least-recently-used entry when full.
    pub fn put(&mut self, key: CacheKey, value: Value) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                if let Some(evicted) = self.map.remove(&oldest) {
                    self.bytes -= evicted.bytes;
                }
            }
        }
        let bytes = approx_bytes(&value);
        let entry = Entry { value, tick: self.tick, bytes, last_hit: Instant::now() };
        if let Some(displaced) = self.map.insert(key, entry) {
            self.bytes -= displaced.bytes;
        }
        self.bytes += bytes;
    }

    /// Looks a result up *without* touching recency or the hit/miss
    /// counters — for policy decisions (serve vs. recompute, overwrite vs.
    /// keep) that happen before the cache's answer is actually used.
    pub fn peek(&self, key: &CacheKey) -> Option<&Value> {
        self.map.get(key).map(|entry| &entry.value)
    }

    /// Records a lookup that found an entry but declined to serve it (the
    /// caller recomputes, so for the hit/miss counters it is a miss).
    pub fn record_declined(&mut self) {
        self.misses += 1;
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Approximate total bytes held by cached payloads.
    pub fn bytes(&self) -> u64 {
        self.bytes as u64
    }

    /// Milliseconds since the *least recently served* entry was last
    /// inserted or hit — `None` when the cache is empty. A growing value
    /// under steady load means the tail of the cache is dead weight.
    pub fn oldest_entry_ms(&self) -> Option<u64> {
        self.map
            .values()
            .map(|e| e.last_hit)
            .min()
            .map(|t| t.elapsed().as_millis() as u64)
    }

    /// Iterates over every cached `(key, payload)` pair in recency order
    /// (least recently used first), without touching counters or recency —
    /// the traversal behind the on-disk snapshot written at graceful drain.
    /// Recency order means a later truncated reload keeps the hottest
    /// entries.
    pub fn entries(&self) -> impl Iterator<Item = (&CacheKey, &Value)> {
        let mut rows: Vec<(&CacheKey, &Entry)> = self.map.iter().collect();
        rows.sort_by_key(|(_, e)| e.tick);
        rows.into_iter().map(|(k, e)| (k, &e.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(term: u128, config: &str) -> CacheKey {
        CacheKey { term, analysis: "lower", config: config.to_string() }
    }

    fn payload(n: u128) -> Value {
        Value::UInt(n)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache = ResultCache::new(4);
        assert_eq!(cache.get(&key(1, "d=40")), None);
        cache.put(key(1, "d=40"), payload(10));
        assert_eq!(cache.get(&key(1, "d=40")), Some(payload(10)));
        // Same term, different config: distinct entry.
        assert_eq!(cache.get(&key(1, "d=80")), None);
        // Same config, different analysis tag: distinct entry.
        let other = CacheKey { term: 1, analysis: "verify", config: "d=40".into() };
        assert_eq!(cache.get(&other), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let mut cache = ResultCache::new(2);
        cache.put(key(1, ""), payload(1));
        cache.put(key(2, ""), payload(2));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(&key(1, "")).is_some());
        cache.put(key(3, ""), payload(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, "")).is_some());
        assert!(cache.get(&key(2, "")).is_none(), "LRU entry must be gone");
        assert!(cache.get(&key(3, "")).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = ResultCache::new(2);
        cache.put(key(1, ""), payload(1));
        cache.put(key(2, ""), payload(2));
        cache.put(key(2, ""), payload(22));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(2, "")), Some(payload(22)));
        assert!(cache.get(&key(1, "")).is_some());
    }

    #[test]
    fn peek_does_not_disturb_counters_or_recency() {
        let mut cache = ResultCache::new(2);
        cache.put(key(1, ""), payload(1));
        cache.put(key(2, ""), payload(2));
        assert_eq!(cache.peek(&key(1, "")), Some(&payload(1)));
        assert_eq!(cache.peek(&key(3, "")), None);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        // A declined serve counts as a miss.
        cache.record_declined();
        assert_eq!(cache.misses(), 1);
        // `peek` must not refresh recency: 1 is still the LRU entry.
        cache.put(key(3, ""), payload(3));
        assert!(cache.peek(&key(1, "")).is_none());
        assert!(cache.peek(&key(2, "")).is_some());
    }

    #[test]
    fn byte_accounting_tracks_insert_overwrite_and_evict() {
        let mut cache = ResultCache::new(2);
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.oldest_entry_ms(), None);
        let small = Value::Str("x".into());
        let big = Value::Str("x".repeat(100));
        cache.put(key(1, ""), small.clone());
        let one = cache.bytes();
        assert!(one > 0);
        cache.put(key(2, ""), small.clone());
        assert_eq!(cache.bytes(), 2 * one);
        // Overwriting replaces the old entry's bytes, not adds to them.
        cache.put(key(2, ""), big.clone());
        let with_big = cache.bytes();
        assert!(with_big > 2 * one && with_big < one + 200);
        // Eviction releases the evicted entry's bytes (1 is the LRU entry).
        cache.put(key(3, ""), small);
        assert_eq!(cache.bytes(), with_big, "swap small for small");
        assert!(cache.peek(&key(1, "")).is_none());
        assert!(cache.oldest_entry_ms().is_some());
        // Estimates grow with payload size.
        assert!(approx_bytes(&big) > approx_bytes(&Value::Str("x".into())));
        assert!(
            approx_bytes(&Value::Object(vec![("k".into(), Value::UInt(12345))]))
                >= "{\"k\":12345}".len() - 2
        );
    }

    #[test]
    fn entries_iterate_in_recency_order_without_side_effects() {
        let mut cache = ResultCache::new(4);
        cache.put(key(1, ""), payload(1));
        cache.put(key(2, ""), payload(2));
        cache.put(key(3, ""), payload(3));
        // Touch 1 so it becomes the most recent entry.
        assert!(cache.get(&key(1, "")).is_some());
        let (hits, misses) = (cache.hits(), cache.misses());
        let order: Vec<u128> = cache.entries().map(|(k, _)| k.term).collect();
        assert_eq!(order, vec![2, 3, 1], "LRU first, most recent last");
        assert_eq!((cache.hits(), cache.misses()), (hits, misses));
        // Iteration must not refresh recency: 2 is still the LRU entry.
        cache.put(key(4, ""), payload(4));
        cache.put(key(5, ""), payload(5));
        assert!(cache.peek(&key(2, "")).is_none());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = ResultCache::new(0);
        cache.put(key(1, ""), payload(1));
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1, "")), None);
        assert_eq!(cache.misses(), 1);
    }
}
