//! The service wire protocol: newline-delimited JSON requests and replies.
//!
//! Every request is one JSON object on one line. The `op` field selects the
//! analysis; `id` (any JSON value) is echoed back verbatim so clients can
//! pipeline requests over a single connection and match replies out of order.
//!
//! ```text
//! {"id":1,"op":"lower","program":"(fix phi x. ...) 0","depth":60}
//! {"id":1,"ok":true,"op":"lower","cache":"miss","elapsed_ms":3,"result":{...}}
//! {"id":2,"ok":false,"error":{"code":"parse_error","message":"..."}}
//! ```
//!
//! Error replies are structured: `code` is machine-readable (see
//! [`ErrorCode`]), `message` is human-readable. A `simulate` or `verify`
//! request that runs past its `deadline_ms` budget yields `budget_exceeded`
//! — the worker that served it survives and picks up the next request.
//! `lower` and `analyze` requests are *anytime*: an expired deadline cancels
//! the engine mid-exploration and the reply is still `ok`, carrying the
//! sound partial lower bound computed so far with `"complete": false` in the
//! result. Partial results are cached like complete ones; a retry with a
//! meaningfully richer (or no) deadline recomputes and upgrades the entry.

use probterm_core::spcf::Strategy;
use serde::Value;

/// Machine-readable error categories of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line is not valid JSON, or the program does not parse.
    ParseError,
    /// The request is well-formed JSON but malformed as a request (unknown
    /// op, missing program, field of the wrong type, budget above the
    /// server's hard caps).
    BadRequest,
    /// The per-request deadline or step budget was exhausted.
    BudgetExceeded,
    /// The analysis does not apply to this program (e.g. the AST verifier on
    /// a non-fixpoint program, or `analyze` on an ill-typed term).
    NotApplicable,
    /// The engine panicked or otherwise failed; the worker survived.
    Internal,
    /// Admission control shed the request (queue over depth, or the deadline
    /// would expire before the predicted queue wait) or the server is
    /// draining. The error object carries `retry_after_ms` when a retry can
    /// succeed.
    Overloaded,
    /// The connection sat idle past the server's `--idle-timeout-ms` and is
    /// being closed; sent as a final structured line before the close.
    IdleTimeout,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::BudgetExceeded => "budget_exceeded",
            ErrorCode::NotApplicable => "not_applicable",
            ErrorCode::Internal => "internal",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::IdleTimeout => "idle_timeout",
        }
    }
}

/// A structured service error (the payload of an error reply).
#[derive(Debug, Clone)]
pub struct ServiceError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// For `overloaded` sheds: how long (in milliseconds) a client should
    /// wait before retrying — the predicted queue wait, never zero. Rendered
    /// as `retry_after_ms` inside the error object when present.
    pub retry_after_ms: Option<u64>,
}

impl ServiceError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ServiceError {
        ServiceError { code, message: message.into(), retry_after_ms: None }
    }

    /// Builder: attaches the shed-retry hint.
    #[must_use]
    pub fn with_retry_after(mut self, retry_after_ms: u64) -> ServiceError {
        self.retry_after_ms = Some(retry_after_ms.max(1));
        self
    }
}

/// The analysis (or control) operation requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Monte-Carlo termination estimation (seeded, hence cacheable).
    Simulate,
    /// Interval-semantics lower bound on `Pterm`.
    Lower,
    /// Provenance of the lower bound: per-path attribution, replayable
    /// witnesses and frontier summary, as the documented JSON artifact.
    Explain,
    /// Counting-based AST verification.
    Verify,
    /// The combined report (type + lower bound + AST + optional Monte-Carlo).
    Analyze,
    /// List the benchmark catalogue.
    Catalog,
    /// Cache and worker counters.
    Stats,
    /// Prometheus-style text exposition of the service metrics.
    Metrics,
    /// The in-flight request table: one row per engine run currently
    /// executing, with live progress from its [`ProgressCell`]
    /// (`probterm_telemetry::ProgressCell`).
    Inspect,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

impl Op {
    /// The wire spelling of the op (also the cache-key analysis tag).
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Simulate => "simulate",
            Op::Lower => "lower",
            Op::Explain => "explain",
            Op::Verify => "verify",
            Op::Analyze => "analyze",
            Op::Catalog => "catalog",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Inspect => "inspect",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parses the wire spelling back into an [`Op`] — the inverse of
    /// [`Op::as_str`]. Also used by the cache-snapshot loader to map the
    /// persisted analysis tag back onto the `&'static str` the cache keys
    /// intern.
    pub(crate) fn from_str(s: &str) -> Option<Op> {
        Some(match s {
            "simulate" => Op::Simulate,
            "lower" => Op::Lower,
            "explain" => Op::Explain,
            "verify" => Op::Verify,
            "analyze" => Op::Analyze,
            "catalog" => Op::Catalog,
            "stats" => Op::Stats,
            "metrics" => Op::Metrics,
            "inspect" => Op::Inspect,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }

    /// Whether the op runs an analysis engine (as opposed to serving
    /// metadata or control traffic).
    pub fn is_engine_op(self) -> bool {
        matches!(self, Op::Simulate | Op::Lower | Op::Explain | Op::Verify | Op::Analyze)
    }

    /// Every op, in wire order — the index into the per-op metrics table.
    pub const ALL: [Op; 10] = [
        Op::Simulate,
        Op::Lower,
        Op::Explain,
        Op::Verify,
        Op::Analyze,
        Op::Catalog,
        Op::Stats,
        Op::Metrics,
        Op::Inspect,
        Op::Shutdown,
    ];

    /// The op's position in [`Op::ALL`].
    pub fn index(self) -> usize {
        Op::ALL.iter().position(|&op| op == self).expect("every op is in ALL")
    }
}

/// A parsed request. Option fields default at dispatch time (the defaults
/// match the `probterm` CLI flags).
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed back verbatim in the reply.
    pub id: Option<Value>,
    /// The requested operation.
    pub op: Op,
    /// SPCF source of the program to analyse (engine ops only).
    pub program: Option<String>,
    /// Exploration depth (`lower`, `explain`, `analyze`).
    pub depth: Option<usize>,
    /// Limit the provenance artifact to the `K` largest path contributions
    /// (`explain` only; totals are unaffected).
    pub top: Option<usize>,
    /// Monte-Carlo run count (`simulate`, `analyze`).
    pub runs: Option<usize>,
    /// Step budget per Monte-Carlo run (`simulate`, `analyze`).
    pub steps: Option<usize>,
    /// RNG seed (`simulate`, `analyze`); fixed default keeps replies cacheable.
    pub seed: Option<u64>,
    /// Evaluation strategy for `simulate` (`"cbn"` default, or `"cbv"`).
    pub strategy: Strategy,
    /// Wall-clock budget for this request, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// When `true` on a `lower` request, the server emits periodic
    /// `{"progress": ...}` frames on the connection before the final reply.
    /// Frames carry the same `id`, are monotone (the bound only tightens),
    /// and are *not* trace records.
    pub stream: bool,
}

fn field_usize(object: &Value, key: &str) -> Result<Option<usize>, ServiceError> {
    match object.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|u| Some(u as usize))
            .ok_or_else(|| bad_field(key, "a non-negative integer")),
    }
}

fn field_u64(object: &Value, key: &str) -> Result<Option<u64>, ServiceError> {
    match object.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad_field(key, "a non-negative integer")),
    }
}

fn field_bool(object: &Value, key: &str) -> Result<bool, ServiceError> {
    match object.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(v) => v.as_bool().ok_or_else(|| bad_field(key, "a boolean")),
    }
}

fn bad_field(key: &str, expected: &str) -> ServiceError {
    ServiceError::new(ErrorCode::BadRequest, format!("field `{key}` must be {expected}"))
}

/// Parses one NDJSON request line.
///
/// # Errors
///
/// On failure returns the request `id` when one could be extracted (so the
/// error reply can still be correlated) together with the structured error.
pub fn parse_request(line: &str) -> Result<Request, (Option<Value>, ServiceError)> {
    let value = serde_json::from_str(line).map_err(|e| {
        (None, ServiceError::new(ErrorCode::ParseError, format!("invalid JSON: {e}")))
    })?;
    let id = value.get("id").cloned();
    let fail = |e: ServiceError| (id.clone(), e);

    if value.as_object().is_none() {
        return Err(fail(ServiceError::new(
            ErrorCode::BadRequest,
            "request must be a JSON object",
        )));
    }
    let op = match value.get("op").and_then(Value::as_str) {
        Some(name) => Op::from_str(name).ok_or_else(|| {
            fail(ServiceError::new(ErrorCode::BadRequest, format!("unknown op `{name}`")))
        })?,
        None => {
            return Err(fail(ServiceError::new(
                ErrorCode::BadRequest,
                "missing string field `op`",
            )))
        }
    };
    let program = match value.get("program") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| fail(bad_field("program", "a string")))?
                .to_string(),
        ),
    };
    if op.is_engine_op() && program.is_none() {
        return Err(fail(ServiceError::new(
            ErrorCode::BadRequest,
            format!("op `{}` requires a `program` field", op.as_str()),
        )));
    }
    let strategy = match value.get("strategy") {
        None | Some(Value::Null) => Strategy::CallByName,
        Some(v) => match v.as_str() {
            Some("cbn") | Some("call-by-name") => Strategy::CallByName,
            Some("cbv") | Some("call-by-value") => Strategy::CallByValue,
            _ => return Err(fail(bad_field("strategy", "\"cbn\" or \"cbv\""))),
        },
    };
    let depth = field_usize(&value, "depth").map_err(&fail)?;
    let top = field_usize(&value, "top").map_err(&fail)?;
    let runs = field_usize(&value, "runs").map_err(&fail)?;
    let steps = field_usize(&value, "steps").map_err(&fail)?;
    let seed = field_u64(&value, "seed").map_err(&fail)?;
    let deadline_ms = field_u64(&value, "deadline_ms").map_err(&fail)?;
    let stream = field_bool(&value, "stream").map_err(&fail)?;
    Ok(Request { id, op, program, depth, top, runs, steps, seed, strategy, deadline_ms, stream })
}

/// Builds a success reply line (without the trailing newline).
pub fn ok_reply(
    id: &Option<Value>,
    op: Op,
    cache: Option<&str>,
    elapsed_ms: u128,
    result: Value,
) -> String {
    let mut fields = vec![
        ("id".to_string(), id.clone().unwrap_or(Value::Null)),
        ("ok".to_string(), Value::Bool(true)),
        ("op".to_string(), Value::Str(op.as_str().to_string())),
    ];
    if let Some(cache) = cache {
        fields.push(("cache".to_string(), Value::Str(cache.to_string())));
    }
    fields.push(("elapsed_ms".to_string(), Value::UInt(elapsed_ms)));
    fields.push(("result".to_string(), result));
    render_line(Value::Object(fields))
}

/// Builds an error reply line (without the trailing newline).
pub fn error_reply(id: &Option<Value>, error: &ServiceError) -> String {
    let mut body = vec![
        ("code".to_string(), Value::Str(error.code.as_str().to_string())),
        ("message".to_string(), Value::Str(error.message.clone())),
    ];
    if let Some(retry_after_ms) = error.retry_after_ms {
        body.push(("retry_after_ms".to_string(), Value::UInt(u128::from(retry_after_ms))));
    }
    render_line(Value::Object(vec![
        ("id".to_string(), id.clone().unwrap_or(Value::Null)),
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Object(body)),
    ]))
}

/// Builds a streamed progress frame line (without the trailing newline):
/// `{"id":...,"progress":{...}}`. Frames carry the request's `id` so clients
/// multiplexing a connection can attribute them; they have no `ok` field, so
/// reply-scanning clients skip them naturally.
pub fn progress_frame(id: &Option<Value>, progress: Value) -> String {
    render_line(Value::Object(vec![
        ("id".to_string(), id.clone().unwrap_or(Value::Null)),
        ("progress".to_string(), progress),
    ]))
}

pub(crate) fn render_line(value: Value) -> String {
    struct Raw(Value);
    impl serde::Serialize for Raw {
        fn serialize(&self) -> Value {
            self.0.clone()
        }
    }
    // Compact rendering never contains literal newlines (they are escaped in
    // strings), so one reply is always exactly one line.
    serde_json::to_string(&Raw(value)).expect("rendering owned values cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_simulate_request() {
        let r = parse_request(
            r#"{"id":"a-7","op":"simulate","program":"sample","runs":100,"steps":50,"seed":9,"strategy":"cbv","deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(Value::Str("a-7".into())));
        assert_eq!(r.op, Op::Simulate);
        assert_eq!(r.program.as_deref(), Some("sample"));
        assert_eq!(r.runs, Some(100));
        assert_eq!(r.steps, Some(50));
        assert_eq!(r.seed, Some(9));
        assert_eq!(r.strategy, Strategy::CallByValue);
        assert_eq!(r.deadline_ms, Some(250));
    }

    #[test]
    fn control_ops_need_no_program() {
        for op in ["catalog", "stats", "metrics", "inspect", "shutdown"] {
            let r = parse_request(&format!(r#"{{"op":"{op}"}}"#)).unwrap();
            assert!(!r.op.is_engine_op());
            assert_eq!(r.id, None);
        }
    }

    #[test]
    fn stream_flag_parses_and_defaults_off() {
        let r = parse_request(r#"{"op":"lower","program":"0","stream":true}"#).unwrap();
        assert!(r.stream);
        let r = parse_request(r#"{"op":"lower","program":"0"}"#).unwrap();
        assert!(!r.stream);
        let (_, e) = parse_request(r#"{"op":"lower","program":"0","stream":"yes"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn bad_requests_keep_the_id_when_possible() {
        // Invalid JSON: no id recoverable.
        let (id, e) = parse_request("{nope").unwrap_err();
        assert_eq!(id, None);
        assert_eq!(e.code, ErrorCode::ParseError);
        // Valid JSON, bad op: id recovered.
        let (id, e) = parse_request(r#"{"id":3,"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(id, Some(Value::UInt(3)));
        assert_eq!(e.code, ErrorCode::BadRequest);
        // Engine op without a program.
        let (_, e) = parse_request(r#"{"op":"lower"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        // Wrong field type.
        let (_, e) = parse_request(r#"{"op":"lower","program":"0","depth":-3}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let (_, e) = parse_request(r#"{"op":"simulate","program":"0","strategy":"x"}"#)
            .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn replies_are_single_lines_and_reparse() {
        let line = ok_reply(
            &Some(Value::UInt(1)),
            Op::Lower,
            Some("miss"),
            12,
            Value::Object(vec![("probability".into(), Value::Str("0.5\nx".into()))]),
        );
        assert!(!line.contains('\n'));
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("miss"));
        let err = error_reply(
            &None,
            &ServiceError::new(ErrorCode::BudgetExceeded, "too slow"),
        );
        let v = serde_json::from_str(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").unwrap().get("code").and_then(Value::as_str),
            Some("budget_exceeded")
        );
        assert!(v.get("id").unwrap().is_null());
    }

    #[test]
    fn overloaded_errors_carry_retry_after_ms() {
        let err = error_reply(
            &Some(Value::UInt(9)),
            &ServiceError::new(ErrorCode::Overloaded, "admission queue full")
                .with_retry_after(120),
        );
        let v = serde_json::from_str(&err).unwrap();
        let error = v.get("error").unwrap();
        assert_eq!(error.get("code").and_then(Value::as_str), Some("overloaded"));
        assert_eq!(error.get("retry_after_ms").and_then(Value::as_u64), Some(120));
        // The hint is clamped away from zero: "retry immediately" defeats
        // the point of shedding.
        let zero = ServiceError::new(ErrorCode::Overloaded, "x").with_retry_after(0);
        assert_eq!(zero.retry_after_ms, Some(1));
        // Non-shed errors never render the field.
        let plain = error_reply(&None, &ServiceError::new(ErrorCode::Internal, "boom"));
        assert!(!plain.contains("retry_after_ms"));
    }
}
