//! The analysis server: shared state, request dispatch, a sharded worker
//! thread pool, and NDJSON serving over stdio and TCP.
//!
//! Architecture: a single **event-loop thread** owns every TCP connection —
//! the listener and all accepted sockets are nonblocking, and each poll
//! round accepts new connections, drains readable sockets into
//! per-connection buffers, frames complete lines and routes them (std-only:
//! no `libc` poll, just `set_nonblocking` plus adaptive spin/yield/park
//! between empty rounds). Routed lines land on **sharded queues** — the
//! shard is `canonical_key % nshards`, so identical work always goes to the
//! same shard — and `workers` pool threads pop their home shard first, then
//! work-steal from the others. Replies are written to the originating
//! stream under a per-stream mutex by the worker that produced them (writes
//! on the nonblocking socket retry `WouldBlock` with a bounded patience,
//! then hard-close). All analyses go through the content-addressed
//! [`ResultCache`](crate::cache::ResultCache), so α-equivalent resubmissions
//! are served without re-running an engine.
//!
//! Single-flight coalescing: when a routed engine request's
//! `(canonical_key, analysis, config)` is already being computed, the
//! reader registers a **waiter** on the in-flight run instead of enqueueing
//! a duplicate job; the finishing worker fans the reply (and any streamed
//! progress frames) out to every waiter. Deadlines diverge soundly: a
//! waiter whose budget expires mid-run is served the sound partial bound
//! accumulated so far (from the run's live progress cell), while a waiter
//! with a *richer* budget upgrades the run's shared deadline so the run
//! keeps going. The cache can also survive restarts: with
//! [`ServerConfig::cache_path`] set, a version-stamped length-prefixed
//! JSONL snapshot is loaded at boot and atomically rewritten on graceful
//! drain (see [`CACHE_SNAPSHOT_VERSION`]).
//!
//! Deadlines: `deadline_ms` is enforced cooperatively — between Monte-Carlo
//! chunks for `simulate`, and *inside* the symbolic engines for
//! `lower`/`verify`/`analyze` (the shared environment machine pauses at every
//! redex, so the exploration loops poll the deadline mid-run). A `simulate`
//! or `verify` request that exceeds its budget gets a structured
//! `budget_exceeded` error; the worker survives and picks up the next job.
//! A `lower` (or `analyze`) request instead returns the **sound partial
//! lower bound** accumulated when the deadline struck, marked
//! `"complete": false` — by Theorem 3.4 every terminated symbolic path
//! certifies its mass independently, so a truncated exploration only loses
//! bound mass. Partial results are cached under the same
//! `(canonical_key, analysis, config)` key: a retry whose budget is
//! comparable to the engine time the entry burned is an instant hit on the
//! partial bound, while a meaningfully richer (or unbounded) retry
//! **resumes** from the entry — partial `lower` payloads embed the
//! exploration frontier as a replayable checkpoint, so the retry replays
//! straight to the unexplored subtrees and only pays for new work — and
//! upgrades the entry. Partials never downgrade a complete entry or a
//! deeper partial.
//!
//! Overload protection: the transport readers run admission control before
//! enqueueing. When the shared queue is deeper than
//! [`ServerConfig::queue_depth`], or a request's `deadline_ms` would expire
//! before the predicted queue wait (queued jobs × the op's p95 engine time ÷
//! workers), the reader replies immediately with a structured `overloaded`
//! error carrying `retry_after_ms` instead of letting the request rot in the
//! queue. Control ops (`stats`, `metrics`, `shutdown`, `catalog`) are never
//! shed — they matter most under load. On shutdown the server drains
//! gracefully: the accept loop stops, in-flight engine runs observe the
//! draining flag through their budget checks and checkpoint to the cache,
//! and the workers exit once the queue is empty. A deterministic
//! fault-injection harness ([`crate::inject`], CLI `--inject`) can make
//! engine runs panic, stall, or drop their reply mid-line for chaos testing.

use crate::cache::{CacheKey, ResultCache};
use crate::inject::{InjectDecision, InjectSpec};
use crate::metrics::{ops_value, render_prometheus, PhaseTimes, ServiceMetrics};
use crate::protocol::{
    error_reply, ok_reply, parse_request, progress_frame, ErrorCode, Op, Request, ServiceError,
};
use probterm_telemetry::{Gauge, ProgressCell, ProgressSnapshot, SpanTimer, TraceSink};
use probterm_core::astver::{try_verify_ast, VerifyError};
use probterm_core::intervalsem::{
    try_explain, try_lower_bound_resumable, ExplainConfig, LowerBoundCheckpoint,
    LowerBoundConfig, LowerBoundResult, ReplaySeed,
};
use probterm_core::numerics::Rational;
use probterm_core::spcf::{
    catalog, parse_term, try_estimate_termination, MonteCarloConfig, Strategy, Term,
};
use probterm_core::{try_analyze_budgeted, AnalysisConfig};
use serde::Value;
use std::collections::HashMap;
use std::fs;
use std::io::{self, BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Server tuning knobs and hard per-request caps.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads popping the shared request queue.
    pub workers: usize,
    /// Capacity of the content-addressed result cache (0 disables it).
    pub cache_capacity: usize,
    /// Hard cap on the `depth` of `lower`/`analyze` requests.
    pub max_depth: usize,
    /// Hard cap on the `runs` of `simulate`/`analyze` requests.
    pub max_runs: usize,
    /// Hard cap on the per-run `steps` budget.
    pub max_steps: usize,
    /// Hard cap on the byte length of submitted programs.
    pub max_program_bytes: usize,
    /// Slow-request threshold in milliseconds: a request whose *engine-run
    /// phase* exceeds this writes one structured JSONL line to the slow log
    /// (stderr under `probterm serve --slow-ms N`). `None` disables it.
    pub slow_ms: Option<u64>,
    /// Admission-queue depth above which engine requests are shed with a
    /// structured `overloaded` reply (`0` disables admission control).
    pub queue_depth: usize,
    /// Per-connection idle read timeout: a TCP connection that stays silent
    /// this long gets a structured `idle_timeout` notice and is closed.
    /// `None` (the default) disables it.
    pub idle_timeout_ms: Option<u64>,
    /// Deterministic fault injection for chaos testing (`--inject`); `None`
    /// in production.
    pub inject: Option<InjectSpec>,
    /// Number of worker-queue shards; `0` (the default) means one shard per
    /// worker. Engine requests are routed to shard
    /// `canonical_key % shards`, so identical work lands on one shard.
    pub shards: usize,
    /// Path of the persistent cache snapshot: loaded at boot, atomically
    /// rewritten on graceful drain. `None` (the default) keeps the cache
    /// in-memory only.
    pub cache_path: Option<String>,
    /// Maximum concurrently open TCP connections; a connection over the
    /// limit gets a structured `overloaded` notice and is closed.
    pub max_conns: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            cache_capacity: 1024,
            max_depth: 400,
            max_runs: 1_000_000,
            max_steps: 1_000_000,
            max_program_bytes: 64 * 1024,
            slow_ms: None,
            queue_depth: 256,
            idle_timeout_ms: None,
            inject: None,
            shards: 0,
            cache_path: None,
            max_conns: 1024,
        }
    }
}

/// A point-in-time snapshot of the server counters (the `stats` reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Milliseconds since the server state was created, measured on the
    /// monotonic [`std::time::Instant`] clock (immune to wall-clock jumps).
    pub uptime_ms: u128,
    /// Total requests handled (including control ops and errors).
    pub served: u64,
    /// Result-cache lookups that found an entry.
    pub hits: u64,
    /// Result-cache lookups that found nothing.
    pub misses: u64,
    /// Engine requests currently being computed by workers.
    pub inflight: u64,
    /// Entries currently in the result cache.
    pub cache_entries: usize,
    /// Capacity of the result cache.
    pub cache_capacity: usize,
    /// Approximate bytes held by cached result payloads.
    pub cache_bytes: u64,
    /// Milliseconds since the least-recently-served cache entry was last
    /// inserted or hit; `None` when the cache is empty.
    pub oldest_entry_ms: Option<u64>,
    /// Number of worker threads.
    pub workers: usize,
    /// Requests shed by admission control with an `overloaded` reply.
    pub shed: u64,
    /// `lower` runs that resumed from a cached exploration checkpoint.
    pub resumed: u64,
    /// Partial `lower` replies that carried a resumable frontier checkpoint.
    pub checkpointed_frontiers: u64,
    /// Faults injected by the `--inject` harness.
    pub injected_faults: u64,
    /// Engine requests that finished while the server was draining.
    pub drained_in_flight: u64,
    /// Connections closed by the idle read timeout.
    pub idle_closed: u64,
    /// Requests coalesced onto an identical in-flight run instead of
    /// enqueueing their own engine job.
    pub coalesced_waiters: u64,
    /// Largest number of waiters one finishing run fanned its reply out to.
    pub coalesce_fanout_max: u64,
    /// Current depth of each worker-queue shard, in shard order.
    pub shard_depths: Vec<u64>,
    /// Entries loaded from the cache snapshot at boot.
    pub cache_persist_loaded: u64,
    /// Entries written to the cache snapshot on graceful drain.
    pub cache_persist_saved: u64,
    /// Snapshot lines ignored at load (version mismatch or corruption).
    pub cache_persist_rejected: u64,
}

/// Shared server state: configuration, result cache, counters, per-op
/// latency metrics and the optional per-request trace sink.
#[derive(Debug)]
pub struct ServerState {
    config: ServerConfig,
    cache: Mutex<ResultCache>,
    served: AtomicU64,
    inflight: AtomicU64,
    shutdown: AtomicBool,
    /// Set when the server stops accepting work and starts its graceful
    /// drain; engine budget checks observe it and checkpoint early.
    draining: AtomicBool,
    /// Jobs currently sitting in the shared queue (admission control input).
    queued: AtomicU64,
    /// Engine runs started, 1-based; the fault-injection schedule is a pure
    /// function of this counter.
    engine_runs: AtomicU64,
    shed: AtomicU64,
    resumed: AtomicU64,
    checkpointed_frontiers: AtomicU64,
    injected_faults: AtomicU64,
    drained_in_flight: AtomicU64,
    idle_closed: AtomicU64,
    started: Instant,
    metrics: ServiceMetrics,
    request_seq: AtomicU64,
    trace: Option<TraceSink>,
    slow: Option<TraceSink>,
    /// The in-flight request table behind the `inspect` op: one row per
    /// engine run currently executing, carrying its live [`ProgressCell`].
    inflight_table: Mutex<Vec<InflightRow>>,
    /// Token generator for [`InflightRow`] registration.
    inflight_seq: AtomicU64,
    /// Single-flight table: one entry per engine request currently being
    /// computed, keyed by its cache key. Readers that route an identical
    /// request register a [`Waiter`] here instead of enqueueing; the
    /// finishing worker removes the entry and fans the reply out.
    singleflight: Mutex<HashMap<CacheKey, FlightGroup>>,
    coalesced_waiters: AtomicU64,
    /// High-water mark of waiters any single coalesced run fanned out to.
    coalesce_fanout_max: Gauge,
    /// Live depth of each worker-queue shard (diagnostic gauges; the
    /// admission-control input stays the global `queued` counter).
    shard_depths: Vec<Gauge>,
    /// Round-robin cursor for sharding non-engine (control/malformed) lines.
    rr_shard: AtomicU64,
    cache_persist_loaded: AtomicU64,
    cache_persist_saved: AtomicU64,
    cache_persist_rejected: AtomicU64,
    /// Syntactic memo from raw program source to its α-invariant canonical
    /// key. The transport readers key every engine request (for shard
    /// routing, coalescing and the inline hit path), and hot traffic
    /// resubmits byte-identical sources — parsing is a pure function, so
    /// one parse per distinct spelling suffices. Bounded by
    /// [`KEY_MEMO_CAPACITY`]; cleared wholesale when full.
    key_memo: Mutex<HashMap<String, u128>>,
}

/// Entry cap for [`ServerState::key_memo`]; at the protocol's 64 KiB
/// program cap this bounds the memo at a few tens of MiB worst case, and in
/// practice hot workloads cycle a handful of spellings.
const KEY_MEMO_CAPACITY: usize = 1024;

/// One row of the in-flight request table (the `inspect` op's unit).
#[derive(Debug)]
struct InflightRow {
    token: u64,
    id: Option<Value>,
    op: Op,
    started: Instant,
    /// The request's current phase (`"parse"`, `"cache"`, `"engine"`),
    /// updated in place as the run advances.
    phase: &'static str,
    progress: Arc<ProgressCell>,
}

/// Removes its row from the in-flight table on drop, so every exit path of
/// an engine run — cache hit, validation error, panic unwound by
/// `catch_unwind`'s caller — deregisters exactly once.
struct InflightGuard<'a> {
    state: &'a ServerState,
    token: u64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut table) = self.state.inflight_table.lock() {
            table.retain(|row| row.token != self.token);
        }
    }
}

impl ServerState {
    fn new(
        config: ServerConfig,
        trace: Option<TraceSink>,
        slow: Option<TraceSink>,
    ) -> ServerState {
        let shard_count = if config.shards == 0 {
            config.workers.max(1)
        } else {
            config.shards
        };
        ServerState {
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            shard_depths: (0..shard_count).map(|_| Gauge::new()).collect(),
            config,
            served: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            queued: AtomicU64::new(0),
            engine_runs: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            checkpointed_frontiers: AtomicU64::new(0),
            injected_faults: AtomicU64::new(0),
            drained_in_flight: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            started: Instant::now(),
            metrics: ServiceMetrics::new(),
            request_seq: AtomicU64::new(0),
            trace,
            slow,
            inflight_table: Mutex::new(Vec::new()),
            inflight_seq: AtomicU64::new(0),
            singleflight: Mutex::new(HashMap::new()),
            coalesced_waiters: AtomicU64::new(0),
            coalesce_fanout_max: Gauge::new(),
            rr_shard: AtomicU64::new(0),
            cache_persist_loaded: AtomicU64::new(0),
            cache_persist_saved: AtomicU64::new(0),
            cache_persist_rejected: AtomicU64::new(0),
            key_memo: Mutex::new(HashMap::new()),
        }
    }

    /// The canonical key of `source`, via [`ServerState::key_memo`]:
    /// byte-identical resubmissions skip the parse entirely. `None` when
    /// the program does not parse (the worker renders the structured
    /// error); parse failures are never memoized.
    fn memoized_term_key(&self, source: &str) -> Option<u128> {
        if let Ok(memo) = self.key_memo.lock() {
            if let Some(key) = memo.get(source) {
                return Some(*key);
            }
        }
        let term = parse_term(source).ok()?;
        let key = term.canonical_key();
        if let Ok(mut memo) = self.key_memo.lock() {
            if memo.len() >= KEY_MEMO_CAPACITY {
                memo.clear();
            }
            memo.insert(source.to_string(), key);
        }
        Some(key)
    }

    /// Number of worker-queue shards ([`ServerConfig::shards`], defaulted to
    /// one per worker).
    fn shard_count(&self) -> usize {
        self.shard_depths.len()
    }

    /// Round-robin shard for lines with no canonical key to route by
    /// (control ops, malformed lines, oversized programs).
    fn next_shard(&self) -> usize {
        (self.rr_shard.fetch_add(1, Ordering::Relaxed) % self.shard_count() as u64) as usize
    }

    /// Registers an engine run in the in-flight table; the returned guard
    /// deregisters it on drop.
    fn inflight_register(
        &self,
        id: Option<Value>,
        op: Op,
        progress: Arc<ProgressCell>,
    ) -> InflightGuard<'_> {
        let token = self.inflight_seq.fetch_add(1, Ordering::SeqCst) + 1;
        if let Ok(mut table) = self.inflight_table.lock() {
            table.push(InflightRow {
                token,
                id,
                op,
                started: Instant::now(),
                phase: "parse",
                progress,
            });
        }
        InflightGuard { state: self, token }
    }

    /// Advances a registered run's phase label.
    fn inflight_phase(&self, guard: &InflightGuard<'_>, phase: &'static str) {
        if let Ok(mut table) = self.inflight_table.lock() {
            if let Some(row) = table.iter_mut().find(|row| row.token == guard.token) {
                row.phase = phase;
            }
        }
    }

    /// `true` once a `shutdown` request has been processed.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The per-op request counters and latency histograms.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Snapshots every counter the `stats` op reports.
    pub fn stats(&self) -> StatsSnapshot {
        let cache = self.cache.lock().expect("cache lock");
        StatsSnapshot {
            uptime_ms: self.started.elapsed().as_millis(),
            served: self.served.load(Ordering::SeqCst),
            hits: cache.hits(),
            misses: cache.misses(),
            inflight: self.inflight.load(Ordering::SeqCst),
            cache_entries: cache.len(),
            cache_capacity: cache.capacity(),
            cache_bytes: cache.bytes(),
            oldest_entry_ms: cache.oldest_entry_ms(),
            workers: self.config.workers,
            shed: self.shed.load(Ordering::SeqCst),
            resumed: self.resumed.load(Ordering::SeqCst),
            checkpointed_frontiers: self.checkpointed_frontiers.load(Ordering::SeqCst),
            injected_faults: self.injected_faults.load(Ordering::SeqCst),
            drained_in_flight: self.drained_in_flight.load(Ordering::SeqCst),
            idle_closed: self.idle_closed.load(Ordering::SeqCst),
            coalesced_waiters: self.coalesced_waiters.load(Ordering::Relaxed),
            coalesce_fanout_max: self.coalesce_fanout_max.get(),
            shard_depths: self.shard_depths.iter().map(Gauge::get).collect(),
            cache_persist_loaded: self.cache_persist_loaded.load(Ordering::Relaxed),
            cache_persist_saved: self.cache_persist_saved.load(Ordering::Relaxed),
            cache_persist_rejected: self.cache_persist_rejected.load(Ordering::Relaxed),
        }
    }

    /// Loads the persistent cache snapshot named by
    /// [`ServerConfig::cache_path`], if any. A missing file is a fresh boot;
    /// a version-mismatched header or corrupt line is ignored (counted in
    /// `cache_persist_rejected`) — content addressing makes the snapshot
    /// safe to rebuild from scratch at the next drain.
    fn load_cache_snapshot(&self) {
        let Some(path) = &self.config.cache_path else { return };
        let Ok(text) = fs::read_to_string(path) else { return };
        let mut lines = text.lines();
        if lines.next() != Some(CACHE_SNAPSHOT_VERSION) {
            self.cache_persist_rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let (mut loaded, mut rejected) = (0u64, 0u64);
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for line in lines.filter(|l| !l.is_empty()) {
                match parse_snapshot_line(line) {
                    Some((key, payload)) => {
                        cache.put(key, payload);
                        loaded += 1;
                    }
                    None => rejected += 1,
                }
            }
        }
        self.cache_persist_loaded.fetch_add(loaded, Ordering::Relaxed);
        self.cache_persist_rejected.fetch_add(rejected, Ordering::Relaxed);
    }

    /// Writes the cache snapshot to [`ServerConfig::cache_path`] atomically
    /// (temp file + rename), least-recently-used entries first so a later
    /// truncated reload keeps the hottest ones. Returns the number of
    /// entries written (0 when no path is configured).
    fn persist_cache_snapshot(&self) -> io::Result<usize> {
        let Some(path) = &self.config.cache_path else { return Ok(0) };
        let mut body = String::from(CACHE_SNAPSHOT_VERSION);
        body.push('\n');
        let count = {
            use std::fmt::Write as _;
            let cache = self.cache.lock().expect("cache lock");
            let mut count = 0;
            for (key, payload) in cache.entries() {
                let line = render_snapshot_line(key, payload);
                let _ = writeln!(body, "{} {line}", line.len());
                count += 1;
            }
            count
        };
        let tmp = format!("{path}.tmp");
        fs::write(&tmp, body.as_bytes())?;
        fs::rename(&tmp, path)?;
        self.cache_persist_saved.fetch_add(count as u64, Ordering::Relaxed);
        Ok(count)
    }
}

/// Version stamp on the first line of a cache snapshot file. Bump it when
/// the entry schema changes: a snapshot with any other header is ignored
/// wholesale (counted once in `cache_persist_rejected`) and rebuilt at the
/// next graceful drain.
pub const CACHE_SNAPSHOT_VERSION: &str = "probterm-cache-v1";

/// Renders one snapshot entry as compact JSON (the part after the length
/// prefix): the term key as 32 hex digits, the analysis tag, the config
/// string and the cached payload.
fn render_snapshot_line(key: &CacheKey, payload: &Value) -> String {
    crate::protocol::render_line(Value::Object(vec![
        ("term".into(), Value::Str(format!("{:032x}", key.term))),
        ("analysis".into(), Value::Str(key.analysis.to_string())),
        ("config".into(), Value::Str(key.config.clone())),
        ("payload".into(), payload.clone()),
    ]))
}

/// Parses one `<len> <json>` snapshot line back into a cache entry. `None`
/// for anything that fails the length check, does not parse, or names an
/// unknown analysis — the loader counts it and moves on.
fn parse_snapshot_line(line: &str) -> Option<(CacheKey, Value)> {
    let (len, json) = line.split_once(' ')?;
    if len.parse::<usize>().ok()? != json.len() {
        return None;
    }
    let entry: Value = serde_json::from_str(json).ok()?;
    let term = u128::from_str_radix(entry.get("term")?.as_str()?, 16).ok()?;
    // Map the persisted tag back onto the `&'static str` the cache interns.
    let analysis = Op::from_str(entry.get("analysis")?.as_str()?)
        .filter(|op| op.is_engine_op())?
        .as_str();
    let config = entry.get("config")?.as_str()?.to_string();
    let payload = entry.get("payload")?.clone();
    Some((CacheKey { term, analysis, config }, payload))
}

/// A cooperative wall-clock budget for one request.
#[derive(Debug, Clone, Copy)]
struct Deadline {
    started: Instant,
    limit: Option<Duration>,
}

impl Deadline {
    /// A budget whose clock started `spent_us` ago. The deadline is a
    /// client-facing latency promise measured from admission, not from run
    /// start: time a job spends queued behind other work spends its budget,
    /// so an admitted request is answered within roughly its own deadline
    /// of enqueue — with the sound anytime partial computed in whatever
    /// budget the wait left over. Without this, a full queue wait plus a
    /// fresh full run stacks to ~2x the promised latency.
    fn already_spent(deadline_ms: Option<u64>, spent_us: u64) -> Deadline {
        let now = Instant::now();
        Deadline {
            started: now
                .checked_sub(Duration::from_micros(spent_us))
                .unwrap_or(now),
            limit: deadline_ms.map(Duration::from_millis),
        }
    }
}

/// The interruption signal threaded into one engine run: the request's own
/// deadline plus the server-wide draining flag, so a graceful shutdown
/// checkpoints in-flight anytime analyses instead of waiting them out.
///
/// A coalesced run additionally carries its flight's shared limit cell: the
/// number of milliseconds (measured from the leader's admission) the run may
/// burn, monotonically *raised* by joining waiters with richer deadlines
/// (`u64::MAX` encodes "unbounded"). The effective deadline is always the
/// cell when present, so a late joiner without a deadline turns a bounded
/// run into an unbounded one mid-flight.
#[derive(Clone, Copy)]
struct RunBudget<'a> {
    deadline: Deadline,
    draining: &'a AtomicBool,
    flight_limit: Option<&'a AtomicU64>,
}

impl RunBudget<'_> {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The limit currently in force: the flight's shared (upgradeable) cell
    /// when this is a coalesced run, the request's own deadline otherwise.
    fn effective_limit(&self) -> Option<Duration> {
        match self.flight_limit {
            Some(cell) => {
                let ms = cell.load(Ordering::Relaxed);
                (ms != u64::MAX).then(|| Duration::from_millis(ms))
            }
            None => self.deadline.limit,
        }
    }

    fn deadline_exceeded(&self) -> bool {
        self.effective_limit()
            .is_some_and(|limit| self.deadline.started.elapsed() > limit)
    }

    fn exceeded(&self) -> bool {
        self.deadline_exceeded() || self.draining()
    }

    fn budget_error(&self, phase: &str) -> ServiceError {
        ServiceError::new(
            ErrorCode::BudgetExceeded,
            format!(
                "deadline of {} ms exceeded {phase} ({} ms elapsed)",
                self.effective_limit().map(|l| l.as_millis()).unwrap_or(0),
                self.deadline.started.elapsed().as_millis()
            ),
        )
    }

    fn error(&self, phase: &str) -> ServiceError {
        if self.deadline_exceeded() {
            self.budget_error(phase)
        } else {
            ServiceError::new(
                ErrorCode::Overloaded,
                format!("server is draining; interrupted {phase}"),
            )
        }
    }

    fn check(&self, phase: &str) -> Result<(), ServiceError> {
        if self.exceeded() {
            Err(self.error(phase))
        } else {
            Ok(())
        }
    }

    /// The post-engine deadline check: unlike [`RunBudget::check`] it
    /// ignores the draining flag — a result that finished during a drain is
    /// still a result.
    fn final_deadline_check(&self, phase: &str) -> Result<(), ServiceError> {
        if self.deadline_exceeded() {
            Err(self.budget_error(phase))
        } else {
            Ok(())
        }
    }
}

// -------------------------------------------------------------- coalescing

/// One request coalesced onto an identical in-flight run: everything needed
/// to synthesize its reply when the leader finishes (or its own deadline
/// expires first).
struct Waiter {
    id: Option<Value>,
    out: SharedWriter,
    deadline_ms: Option<u64>,
    stream: bool,
    registered: Instant,
}

impl std::fmt::Debug for Waiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waiter")
            .field("id", &self.id)
            .field("deadline_ms", &self.deadline_ms)
            .field("stream", &self.stream)
            .field("registered", &self.registered)
            .finish_non_exhaustive()
    }
}

/// The singleflight-table entry of one in-flight engine run.
#[derive(Debug)]
struct FlightGroup {
    /// The run's shared, joiner-upgradeable limit (ms from the leader's
    /// start; `u64::MAX` = unbounded) — the cell a coalesced
    /// [`RunBudget`] consults.
    limit_ms: Arc<AtomicU64>,
    waiters: Vec<Waiter>,
}

/// The leader's handle on its singleflight entry, carried inside the
/// [`Job`]: the worker that runs the job threads `limit_ms` into the
/// engine's budget and fans the result out to the entry's waiters.
struct FlightLease {
    key: CacheKey,
    limit_ms: Arc<AtomicU64>,
}

/// Writes one reply line (newline appended, single write) to a transport.
fn write_reply_line(out: &SharedWriter, line: &str) {
    if let Ok(mut out) = out.lock() {
        let mut line = line.to_string();
        line.push('\n');
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

/// Synthesizes and writes one waiter's reply, with its own served/metrics/
/// trace bookkeeping (`coalesced: true` in the trace record; cache tag
/// `"coalesced"` on success — the waiter consumed neither a cache lookup
/// nor an engine run).
fn reply_waiter(
    state: &ServerState,
    op: Op,
    canonical_key: u128,
    waiter: &Waiter,
    outcome: &Result<Value, ServiceError>,
) {
    state.served.fetch_add(1, Ordering::SeqCst);
    let seq = state.request_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let elapsed = waiter.registered.elapsed();
    let (line, ok, outcome_str, tag) = match outcome {
        Ok(value) => (
            ok_reply(&waiter.id, op, Some("coalesced"), elapsed.as_millis(), value.clone()),
            true,
            "ok",
            Some("coalesced"),
        ),
        Err(e) => (error_reply(&waiter.id, e), false, e.code.as_str(), None),
    };
    let phases = PhaseTimes {
        total_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        ..Default::default()
    };
    state.metrics.record(op, &phases, ok);
    emit_trace(
        state,
        seq,
        &waiter.id,
        Some(op),
        Some(canonical_key),
        &phases,
        outcome_str,
        tag,
        true,
    );
    write_reply_line(&waiter.out, &line);
}

/// Removes a finished run's singleflight entry and fans its outcome out to
/// every waiter still registered. Runs on *every* leader exit path — cache
/// hit, validation error, deadline error, caught engine panic — so no
/// waiter can be left hanging.
fn fanout_flight(
    state: &ServerState,
    flight: &FlightLease,
    op: Op,
    outcome: &Result<Value, ServiceError>,
) {
    let waiters = {
        let mut flights = match state.singleflight.lock() {
            Ok(flights) => flights,
            Err(_) => return,
        };
        match flights.remove(&flight.key) {
            Some(group) => group.waiters,
            None => return,
        }
    };
    if waiters.is_empty() {
        return;
    }
    state.coalesce_fanout_max.ratchet(waiters.len() as u64);
    for waiter in &waiters {
        reply_waiter(state, op, flight.key.term, waiter, outcome);
    }
}

/// `true` when a cached/computed payload is a deadline-truncated partial
/// result (`"complete": false`) rather than a finished analysis.
fn payload_is_partial(payload: &Value) -> bool {
    payload.get("complete").and_then(Value::as_bool) == Some(false)
}

/// Engine time a payload records having burned — the yardstick for whether a
/// cached partial result is worth serving to a given budget.
fn payload_engine_ms(payload: &Value) -> u128 {
    payload
        .get("engine_ms")
        .and_then(Value::as_u64)
        .map(u128::from)
        .unwrap_or(0)
}

/// A cached partial is served to a deadline-bounded retry only when the
/// retry's budget is within this factor of the engine time the entry already
/// burned — a meaningfully richer budget recomputes (and upgrades the entry)
/// instead of being handed a bound it had ample time to improve.
const PARTIAL_SERVE_BUDGET_FACTOR: u128 = 2;

/// Frontier-size cap on serialized checkpoints: a partial result with more
/// paused paths than this is cached without one (a retry recomputes from
/// scratch) — the entry stays bounded instead of ballooning the cache.
const CHECKPOINT_MAX_FRONTIER: usize = 4096;

/// Serializes a lower-bound checkpoint into the partial payload, so a richer
/// retry can resume the exploration instead of recomputing it. Empty
/// frontiers carry no resumable work and oversized ones are dropped (see
/// [`CHECKPOINT_MAX_FRONTIER`]).
fn checkpoint_value(checkpoint: &LowerBoundCheckpoint) -> Option<Value> {
    if checkpoint.frontier.is_empty() || checkpoint.frontier.len() > CHECKPOINT_MAX_FRONTIER {
        return None;
    }
    Some(Value::Object(vec![
        ("probability".into(), Value::Str(checkpoint.probability.to_string())),
        ("expected_steps".into(), Value::Str(checkpoint.expected_steps.to_string())),
        ("paths".into(), Value::UInt(checkpoint.paths as u128)),
        ("stuck".into(), Value::UInt(checkpoint.stuck_paths as u128)),
        (
            "frontier".into(),
            Value::Array(
                checkpoint.frontier.iter().map(|seed| Value::Str(seed.render())).collect(),
            ),
        ),
    ]))
}

/// Recovers a resumable checkpoint from a cached partial `lower` payload.
/// Returns `None` for complete entries, entries cached before checkpoints
/// existed, and anything malformed — the caller then recomputes from
/// scratch, which is always sound.
fn checkpoint_from_payload(payload: &Value) -> Option<LowerBoundCheckpoint> {
    if !payload_is_partial(payload) {
        return None;
    }
    let checkpoint = payload.get("checkpoint")?;
    let probability = Rational::parse(checkpoint.get("probability")?.as_str()?)?;
    let expected_steps = Rational::parse(checkpoint.get("expected_steps")?.as_str()?)?;
    let paths = usize::try_from(checkpoint.get("paths")?.as_u64()?).ok()?;
    let stuck_paths = usize::try_from(checkpoint.get("stuck")?.as_u64()?).ok()?;
    let frontier = checkpoint
        .get("frontier")?
        .as_array()?
        .iter()
        .map(|seed| seed.as_str().and_then(ReplaySeed::parse))
        .collect::<Option<Vec<ReplaySeed>>>()?;
    if frontier.is_empty() {
        return None;
    }
    Some(LowerBoundCheckpoint { probability, expected_steps, paths, stuck_paths, frontier })
}

// ------------------------------------------------------------------ dispatch

/// What processing one line produced (pool-internal).
struct LineOutcome {
    reply: Option<String>,
    shutdown: bool,
    /// Injected fault: write only half the reply, then hard-close the
    /// connection.
    drop_reply: bool,
}

/// A sink for streamed progress frames: called with one frame line (no
/// trailing newline) the moment it is produced, mid-engine-run. Interior
/// mutability is the caller's business (the engine loop only has `&`).
type FrameSink<'a> = &'a (dyn Fn(&str) + 'a);

/// Handles one NDJSON request line; returns the reply line (without trailing
/// newline), or `None` for blank input lines.
///
/// This is the full service pipeline minus the transport, usable directly by
/// tests and in-process embedders. A `shutdown` request sets the state's
/// shutdown flag as a side effect. Streamed progress frames are dropped
/// (there is no transport to carry them); use [`handle_line_frames`] to
/// capture them.
pub fn handle_line(state: &ServerState, line: &str) -> Option<String> {
    let outcome = process_line(state, line, 0, None, None);
    if outcome.shutdown {
        state.shutdown.store(true, Ordering::SeqCst);
    }
    outcome.reply
}

/// Like [`handle_line`], but delivers streamed `{"progress": ...}` frames to
/// `frames` as they are produced — the transportless counterpart of what a
/// TCP client of a `"stream": true` request sees on the wire.
pub fn handle_line_frames(
    state: &ServerState,
    line: &str,
    frames: &dyn Fn(&str),
) -> Option<String> {
    let outcome = process_line(state, line, 0, Some(frames), None);
    if outcome.shutdown {
        state.shutdown.store(true, Ordering::SeqCst);
    }
    outcome.reply
}

/// Emits one per-request trace record when the state carries a sink.
///
/// Schema (one JSON object per line, field order fixed): `seq` (server-wide
/// request number), `id` (echoed request id), `op` (`"invalid"` for
/// unparseable lines), `canonical_key` (first 16 hex digits of the term's
/// α-invariant hash; `null` off the engine path), the four phase timings and
/// `total_us` in microseconds, `outcome` (`"ok"` or the error code) and
/// `cache` (`"hit"`/`"miss"`/`"coalesced"`/`null`). Replies fanned out to
/// coalesced waiters additionally carry `"coalesced": true`.
#[allow(clippy::too_many_arguments)]
fn emit_trace(
    state: &ServerState,
    seq: u64,
    id: &Option<Value>,
    op: Option<Op>,
    canonical_key: Option<u128>,
    phases: &PhaseTimes,
    outcome: &str,
    cache: Option<&'static str>,
    coalesced: bool,
) {
    let Some(sink) = &state.trace else { return };
    let mut record = vec![
        ("seq".into(), Value::UInt(u128::from(seq))),
        ("id".into(), id.clone().unwrap_or(Value::Null)),
        (
            "op".into(),
            Value::Str(op.map_or("invalid", Op::as_str).to_string()),
        ),
        (
            "canonical_key".into(),
            canonical_key
                .map_or(Value::Null, |k| Value::Str(format!("{k:032x}")[..16].to_string())),
        ),
        ("queue_us".into(), Value::UInt(u128::from(phases.queue_us))),
        ("cache_us".into(), Value::UInt(u128::from(phases.cache_us))),
        ("engine_us".into(), Value::UInt(u128::from(phases.engine_us))),
        ("serialize_us".into(), Value::UInt(u128::from(phases.serialize_us))),
        ("total_us".into(), Value::UInt(u128::from(phases.total_us))),
        ("outcome".into(), Value::Str(outcome.to_string())),
        ("cache".into(), cache.map_or(Value::Null, |c| Value::Str(c.to_string()))),
    ];
    if coalesced {
        record.push(("coalesced".into(), Value::Bool(true)));
    }
    sink.emit(record);
}

/// Writes one structured slow-request line when a request's *engine-run*
/// phase exceeded the configured [`ServerConfig::slow_ms`] threshold.
///
/// Schema (one JSON object per line): `slow_ms` (the threshold), `seq`,
/// `op`, `canonical_key` (first 16 hex digits of the α-invariant term hash)
/// and the full phase breakdown in microseconds. Cache hits and control ops
/// never trip it — their engine phase is zero.
fn emit_slow(
    state: &ServerState,
    seq: u64,
    op: Op,
    canonical_key: Option<u128>,
    phases: &PhaseTimes,
) {
    let (Some(threshold_ms), Some(sink)) = (state.config.slow_ms, &state.slow) else {
        return;
    };
    if u128::from(phases.engine_us) <= u128::from(threshold_ms) * 1_000 {
        return;
    }
    sink.emit(vec![
        ("slow_ms".into(), Value::UInt(u128::from(threshold_ms))),
        ("seq".into(), Value::UInt(u128::from(seq))),
        ("op".into(), Value::Str(op.as_str().to_string())),
        (
            "canonical_key".into(),
            canonical_key
                .map_or(Value::Null, |k| Value::Str(format!("{k:032x}")[..16].to_string())),
        ),
        ("queue_us".into(), Value::UInt(u128::from(phases.queue_us))),
        ("cache_us".into(), Value::UInt(u128::from(phases.cache_us))),
        ("engine_us".into(), Value::UInt(u128::from(phases.engine_us))),
        ("serialize_us".into(), Value::UInt(u128::from(phases.serialize_us))),
        ("total_us".into(), Value::UInt(u128::from(phases.total_us))),
    ]);
}

fn process_line(
    state: &ServerState,
    line: &str,
    queue_us: u64,
    frames: Option<FrameSink>,
    flight: Option<&FlightLease>,
) -> LineOutcome {
    if line.trim().is_empty() {
        return LineOutcome { reply: None, shutdown: false, drop_reply: false };
    }
    state.served.fetch_add(1, Ordering::SeqCst);
    let seq = state.request_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let timer = SpanTimer::start();
    let mut phases = PhaseTimes { queue_us, ..Default::default() };
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((id, e)) => {
            let serialize = SpanTimer::start();
            let reply = error_reply(&id, &e);
            phases.serialize_us = serialize.elapsed_us();
            phases.total_us = queue_us.saturating_add(timer.elapsed_us());
            // Unparseable lines have no op to attribute latency to; they are
            // traced but kept out of the per-op histograms. A flight lease on
            // an unparseable line cannot happen (the reader parsed it to
            // build the key), but if it ever did, its waiters must not hang.
            if let Some(flight) = flight {
                fanout_flight(state, flight, Op::Lower, &Err(e.clone()));
            }
            emit_trace(state, seq, &id, None, None, &phases, e.code.as_str(), None, false);
            return LineOutcome { reply: Some(reply), shutdown: false, drop_reply: false };
        }
    };
    let id = request.id.clone();
    let op = request.op;
    let started = Instant::now();
    let shutdown = op == Op::Shutdown;
    let mut canonical_key = None;
    let mut drop_reply = false;
    let dispatched = dispatch(
        state,
        &request,
        &mut phases,
        &mut canonical_key,
        &mut drop_reply,
        frames,
        flight,
    );
    // Fan the outcome out to every coalesced waiter the moment the leader's
    // run is decided — on success *and* on every error path (validation,
    // deadline, caught engine panic), so no waiter can hang.
    if let Some(flight) = flight {
        let outcome = match &dispatched {
            Ok((value, _)) => Ok(value.clone()),
            Err(e) => Err(e.clone()),
        };
        fanout_flight(state, flight, op, &outcome);
    }
    let (ok, cache_tag, outcome) = match &dispatched {
        Ok((_, tag)) => (true, *tag, "ok"),
        Err(e) => (false, None, e.code.as_str()),
    };
    let serialize = SpanTimer::start();
    let reply = match dispatched {
        Ok((result, cache_tag)) => {
            ok_reply(&id, op, cache_tag, started.elapsed().as_millis(), result)
        }
        Err(e) => error_reply(&id, &e),
    };
    phases.serialize_us = serialize.elapsed_us();
    phases.total_us = queue_us.saturating_add(timer.elapsed_us());
    state.metrics.record(op, &phases, ok);
    emit_trace(state, seq, &id, Some(op), canonical_key, &phases, outcome, cache_tag, false);
    emit_slow(state, seq, op, canonical_key, &phases);
    LineOutcome { reply: Some(reply), shutdown, drop_reply }
}

type DispatchResult = Result<(Value, Option<&'static str>), ServiceError>;

fn dispatch(
    state: &ServerState,
    request: &Request,
    phases: &mut PhaseTimes,
    canonical_key: &mut Option<u128>,
    drop_reply: &mut bool,
    frames: Option<FrameSink>,
    flight: Option<&FlightLease>,
) -> DispatchResult {
    match request.op {
        Op::Catalog => Ok((catalog_payload(), None)),
        Op::Stats => Ok((stats_payload(state), None)),
        Op::Metrics => Ok((metrics_payload(state), None)),
        Op::Inspect => Ok((inspect_payload(state), None)),
        Op::Shutdown => Ok((Value::Object(vec![]), None)),
        Op::Simulate | Op::Lower | Op::Explain | Op::Verify | Op::Analyze => {
            engine_op(state, request, phases, canonical_key, drop_reply, frames, flight)
        }
    }
}

/// CLI-parity engine parameter defaults, shared by the worker and the
/// coalescing reader so the two can never derive different cache keys for
/// the same request.
struct EngineParams {
    depth: usize,
    runs: usize,
    steps: usize,
    seed: u64,
}

fn engine_params(request: &Request) -> EngineParams {
    EngineParams {
        depth: request.depth.unwrap_or(120),
        runs: request
            .runs
            .unwrap_or(if request.op == Op::Analyze { 0 } else { 10_000 }),
        steps: request.steps.unwrap_or(20_000),
        seed: request.seed.unwrap_or(2021),
    }
}

/// The content address of an engine request — the key the cache, the
/// singleflight table, and shard routing all agree on.
fn request_cache_key(request: &Request, term_key: u128) -> CacheKey {
    let EngineParams { depth, runs, steps, seed } = engine_params(request);
    CacheKey {
        term: term_key,
        analysis: request.op.as_str(),
        config: match request.op {
            Op::Simulate => format!(
                "runs={runs};steps={steps};seed={seed};strategy={}",
                strategy_str(request.strategy)
            ),
            Op::Lower => format!("depth={depth}"),
            Op::Explain => format!(
                "depth={depth};top={}",
                request.top.map_or_else(|| "all".to_string(), |t| t.to_string())
            ),
            Op::Verify => String::new(),
            Op::Analyze => format!("depth={depth};runs={runs};steps={steps};seed={seed}"),
            _ => unreachable!("cache keys exist only for engine ops"),
        },
    }
}

fn engine_op(
    state: &ServerState,
    request: &Request,
    phases: &mut PhaseTimes,
    canonical_key: &mut Option<u128>,
    drop_reply: &mut bool,
    frames: Option<FrameSink>,
    flight: Option<&FlightLease>,
) -> DispatchResult {
    let config = &state.config;
    // Register in the in-flight table up front, with a fresh progress cell
    // the lower-bound engine will publish into; the guard deregisters on
    // every exit path.
    let progress = Arc::new(ProgressCell::new());
    let inflight_guard =
        state.inflight_register(request.id.clone(), request.op, Arc::clone(&progress));
    let source = request.program.as_deref().expect("validated by parse_request");
    if source.len() > config.max_program_bytes {
        return Err(ServiceError::new(
            ErrorCode::BadRequest,
            format!(
                "program of {} bytes exceeds the {}-byte cap",
                source.len(),
                config.max_program_bytes
            ),
        ));
    }
    let term = parse_term(source)
        .map_err(|e| ServiceError::new(ErrorCode::ParseError, format!("parse error: {e}")))?;

    // CLI-parity defaults, then hard caps. `analyze` defaults its
    // Monte-Carlo cross-check off, like `probterm analyze` does.
    let EngineParams { depth, runs, steps, seed } = engine_params(request);
    let cap = |what: &str, value: usize, max: usize| -> Result<(), ServiceError> {
        if value > max {
            Err(ServiceError::new(
                ErrorCode::BadRequest,
                format!("{what} {value} exceeds the server cap {max}"),
            ))
        } else {
            Ok(())
        }
    };
    cap("depth", depth, config.max_depth)?;
    cap("runs", runs, config.max_runs)?;
    cap("steps", steps, config.max_steps)?;

    let term_key = term.canonical_key();
    *canonical_key = Some(term_key);
    let cache_key = request_cache_key(request, term_key);
    // Complete entries are always served. Partial (deadline-truncated)
    // entries are served only to retries whose budget is comparable to what
    // the entry already burned — the caller gets the monotone bound computed
    // so far instantly. A meaningfully richer (or unbounded) budget bypasses
    // the entry instead — counted as a miss, since nothing was served — and
    // when the entry embeds a resumable checkpoint, the recomputation
    // *resumes* from the cached frontier, so the already-measured paths are
    // never re-explored.
    let mut resume: Option<(LowerBoundCheckpoint, u128)> = None;
    {
        enum Lookup {
            Absent,
            Serve,
            Decline,
        }
        state.inflight_phase(&inflight_guard, "cache");
        let cache_timer = SpanTimer::start();
        let mut cache = state.cache.lock().expect("cache lock");
        let decision = match cache.peek(&cache_key) {
            None => Lookup::Absent,
            Some(cached) if !payload_is_partial(cached) => Lookup::Serve,
            Some(cached) => match request.deadline_ms {
                Some(budget)
                    if u128::from(budget)
                        <= PARTIAL_SERVE_BUDGET_FACTOR * payload_engine_ms(cached).max(1) =>
                {
                    Lookup::Serve
                }
                _ => Lookup::Decline,
            },
        };
        match decision {
            Lookup::Serve => {
                let cached = cache.get(&cache_key).expect("peeked entry is present");
                phases.cache_us = cache_timer.elapsed_us();
                return Ok((cached, Some("hit")));
            }
            // Register the miss through the normal lookup path.
            Lookup::Absent => {
                let _ = cache.get(&cache_key);
            }
            Lookup::Decline => {
                if request.op == Op::Lower {
                    resume = cache.peek(&cache_key).and_then(|cached| {
                        let checkpoint = checkpoint_from_payload(cached)?;
                        Some((checkpoint, payload_engine_ms(cached)))
                    });
                }
                cache.record_declined();
            }
        }
        drop(cache);
        phases.cache_us = cache_timer.elapsed_us();
    }

    // Fault injection draws its decision from the engine-run counter, so the
    // schedule is a pure function of request order over cache misses.
    let inject = state.config.inject.as_ref().map_or_else(InjectDecision::default, |spec| {
        let run = state.engine_runs.fetch_add(1, Ordering::SeqCst) + 1;
        let decision = spec.decide(run);
        let faults = decision.fault_count();
        if faults > 0 {
            state.injected_faults.fetch_add(faults, Ordering::SeqCst);
        }
        decision
    });
    *drop_reply = inject.drop_reply;
    if resume.is_some() {
        state.resumed.fetch_add(1, Ordering::SeqCst);
    }

    let deadline = Deadline::already_spent(request.deadline_ms, phases.queue_us);
    let budget = RunBudget {
        deadline,
        draining: &state.draining,
        flight_limit: flight.map(|f| f.limit_ms.as_ref()),
    };
    // A stream handle exists when the leader asked for progress frames *or*
    // the run is coalesced: the same cooperative tick that renders the
    // leader's frames re-renders them for every streaming waiter and serves
    // deadline-expired waiters their sound partial bound mid-run.
    let stream = (request.op == Op::Lower
        && (flight.is_some() || (request.stream && frames.is_some())))
    .then(|| StreamHandle {
        emit: if request.stream { frames } else { None },
        id: &request.id,
        progress: &progress,
        started: Instant::now(),
        last: None.into(),
        fanout: flight.map(|flight| FrameFanout {
            state,
            flight,
            op: request.op,
            depth,
        }),
    });
    state.inflight_phase(&inflight_guard, "engine");
    let engine_timer = SpanTimer::start();
    state.inflight.fetch_add(1, Ordering::SeqCst);
    let computed = catch_unwind(AssertUnwindSafe(|| {
        if let Some(ms) = inject.slow_ms {
            thread::sleep(Duration::from_millis(ms));
        }
        if inject.panic {
            panic!("injected fault: engine panic");
        }
        match request.op {
            Op::Simulate => {
                simulate_payload(&term, runs, steps, seed, request.strategy, &budget)
            }
            Op::Lower => {
                lower_payload(&term, depth, &budget, resume.as_ref(), &progress, stream.as_ref())
            }
            Op::Explain => explain_payload(&term, source, depth, request.top, &budget),
            Op::Verify => verify_payload(&term, &budget),
            Op::Analyze => analyze_payload(&term, depth, runs, steps, seed, &budget),
            _ => unreachable!("engine_op is only called for engine ops"),
        }
    }));
    state.inflight.fetch_sub(1, Ordering::SeqCst);
    phases.engine_us = engine_timer.elapsed_us();
    if budget.draining() {
        state.drained_in_flight.fetch_add(1, Ordering::SeqCst);
    }
    let payload = computed
        .map_err(|panic| {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "engine panicked".to_string());
            ServiceError::new(ErrorCode::Internal, format!("engine failure: {message}"))
        })
        .and_then(|r| r)?;
    if payload.get("checkpoint").is_some() {
        state.checkpointed_frontiers.fetch_add(1, Ordering::SeqCst);
    }
    // Cache before the final deadline check: a result that finished late is
    // still a result, and caching it makes an identical retry an instant hit
    // instead of a doomed recomputation. The re-check happens under the lock
    // at write time: a partial result must never *downgrade* an entry —
    // concurrently, another worker may have stored the complete answer, or a
    // partial that burned more engine time, since our lookup above.
    let partial = payload_is_partial(&payload);
    {
        let mut cache = state.cache.lock().expect("cache lock");
        let keep_existing = partial
            && cache.peek(&cache_key).is_some_and(|existing| {
                !payload_is_partial(existing)
                    || payload_engine_ms(existing) >= payload_engine_ms(&payload)
            });
        if !keep_existing {
            cache.put(cache_key, payload.clone());
        }
    }
    // Partial payloads *are* the deadline-truncated answer — they must not be
    // demoted to a bare `budget_exceeded` by the final check. The check goes
    // through the budget, not the raw deadline, so a flight limit a joiner
    // upgraded mid-run is honoured here too.
    if !partial {
        budget.final_deadline_check("after the engine completed")?;
    }
    Ok((payload, Some("miss")))
}

fn strategy_str(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::CallByName => "cbn",
        Strategy::CallByValue => "cbv",
    }
}

/// Monte-Carlo estimation via the library estimator, with cooperative
/// deadline checks between chunks of runs.
///
/// This is [`probterm_core::spcf::try_estimate_termination`] — the very loop
/// behind [`probterm_core::spcf::estimate_termination`] — so the reply
/// carries exactly the numbers the library call produces.
fn simulate_payload(
    term: &Term,
    runs: usize,
    max_steps: usize,
    seed: u64,
    strategy: Strategy,
    budget: &RunBudget,
) -> Result<Value, ServiceError> {
    const CHUNK: usize = 32;
    let config = MonteCarloConfig { runs, max_steps, seed, strategy };
    let estimate = try_estimate_termination(term, &config, |i| {
        if i % CHUNK == 0 {
            budget.check(&format!("after {i}/{runs} Monte-Carlo runs"))
        } else {
            Ok(())
        }
    })?;
    Ok(Value::Object(vec![
        ("runs".into(), Value::UInt(estimate.runs as u128)),
        ("terminated".into(), Value::UInt(estimate.terminated as u128)),
        ("stuck".into(), Value::UInt(estimate.stuck as u128)),
        ("out_of_fuel".into(), Value::UInt(estimate.out_of_fuel as u128)),
        ("probability".into(), Value::Num(estimate.probability())),
        ("confidence_99".into(), Value::Num(estimate.confidence_99())),
        ("mean_steps".into(), Value::Num(estimate.mean_steps)),
        ("mean_samples".into(), Value::Num(estimate.mean_samples)),
        ("steps".into(), Value::UInt(max_steps as u128)),
        ("seed".into(), Value::UInt(seed as u128)),
        ("strategy".into(), Value::Str(strategy_str(strategy).into())),
    ]))
}

/// Interruptible, *resumable* lower-bound computation. The budget (deadline
/// or drain) is polled inside the symbolic exploration — which now measures
/// each path's volume the moment it terminates, so the accumulated bound is
/// monotone and interruptible at every step, never a deadline-blind post-hoc
/// pass. An expired budget yields the sound partial bound so far, marked
/// `"complete": false`, together with a replayable `checkpoint` of the
/// exploration frontier; a retry with a richer budget passes the cached
/// checkpoint back in and resumes where the truncated run stopped.
/// How often a `"stream": true` `lower` run emits a progress frame. Small
/// enough that a deadline-bounded run still produces several frames; large
/// enough that frames never dominate a fast run's wire traffic.
const STREAM_FRAME_INTERVAL: Duration = Duration::from_millis(20);

/// The mid-run progress emitter of a streamed or coalesced `lower` request:
/// polled from the engine's cooperative check, it renders a
/// `{"progress": ...}` frame from the run's [`ProgressCell`] at most once
/// per [`STREAM_FRAME_INTERVAL`]. The seqlock snapshot and the fixed-point
/// bound ratchet make every emitted frame internally consistent and the
/// frame sequence monotone. For a coalesced run the same tick fans the frame
/// out to every streaming waiter (re-rendered under the waiter's own id) and
/// serves waiters whose own deadline expired the sound partial bound
/// accumulated so far.
struct StreamHandle<'a> {
    /// The leader's own frame sink — `None` when the leader did not ask to
    /// stream but the handle exists for its coalesced waiters.
    emit: Option<FrameSink<'a>>,
    id: &'a Option<Value>,
    progress: &'a ProgressCell,
    started: Instant,
    last: std::cell::Cell<Option<Instant>>,
    fanout: Option<FrameFanout<'a>>,
}

/// The waiter-facing half of a coalesced run's progress tick.
struct FrameFanout<'a> {
    state: &'a ServerState,
    flight: &'a FlightLease,
    op: Op,
    depth: usize,
}

impl StreamHandle<'_> {
    fn maybe_emit(&self) {
        let now = Instant::now();
        if self
            .last
            .get()
            .is_some_and(|last| now.duration_since(last) < STREAM_FRAME_INTERVAL)
        {
            return;
        }
        self.last.set(Some(now));
        let snap = self.progress.snapshot();
        let elapsed_ms = self.started.elapsed().as_millis();
        if let Some(emit) = &self.emit {
            let frame = progress_frame(self.id, progress_value(&snap, elapsed_ms));
            (emit)(&frame);
        }
        if let Some(fanout) = &self.fanout {
            fanout.tick(&snap, elapsed_ms);
        }
    }
}

impl FrameFanout<'_> {
    /// One coalesced progress tick: re-render the frame for every streaming
    /// waiter, and peel off waiters whose own (shorter) deadline has expired,
    /// serving each the sound partial bound so far. Rendering and writes
    /// happen outside the singleflight lock.
    fn tick(&self, snap: &ProgressSnapshot, elapsed_ms: u128) {
        let (streamers, expired) = {
            let Ok(mut flights) = self.state.singleflight.lock() else { return };
            let Some(group) = flights.get_mut(&self.flight.key) else { return };
            let mut expired = Vec::new();
            let mut i = 0;
            while i < group.waiters.len() {
                let waiter = &group.waiters[i];
                let done = waiter.deadline_ms.is_some_and(|ms| {
                    waiter.registered.elapsed().as_millis() >= u128::from(ms)
                });
                if done {
                    expired.push(group.waiters.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            let streamers: Vec<(Option<Value>, SharedWriter)> = group
                .waiters
                .iter()
                .filter(|w| w.stream)
                .map(|w| (w.id.clone(), Arc::clone(&w.out)))
                .collect();
            (streamers, expired)
        };
        for (id, out) in &streamers {
            let frame = progress_frame(id, progress_value(snap, elapsed_ms));
            write_reply_line(out, &frame);
        }
        if expired.is_empty() {
            return;
        }
        let partial = Ok(progress_partial_value(snap, self.depth, elapsed_ms));
        for waiter in &expired {
            reply_waiter(self.state, self.op, self.flight.key.term, waiter, &partial);
        }
    }
}

/// The sound partial lower bound served to a coalesced waiter whose own
/// deadline expired mid-run: the monotone bound the shared run has
/// accumulated so far, marked incomplete and attributed to the coalesced
/// run's live progress (there is no checkpoint — the run itself continues).
fn progress_partial_value(snap: &ProgressSnapshot, depth: usize, elapsed_ms: u128) -> Value {
    Value::Object(vec![
        ("probability".into(), Value::Str(format!("{:.10}", snap.bound()))),
        ("probability_f64".into(), Value::Num(snap.bound())),
        ("paths".into(), Value::UInt(u128::from(snap.paths_terminated))),
        ("unexplored_paths".into(), Value::UInt(u128::from(snap.frontier))),
        ("depth".into(), Value::UInt(depth as u128)),
        ("complete".into(), Value::Bool(false)),
        ("partial_source".into(), Value::Str("coalesced-progress".into())),
        ("engine_ms".into(), Value::UInt(elapsed_ms)),
    ])
}

/// Renders one progress snapshot as the shared frame/`inspect` payload.
fn progress_value(snap: &ProgressSnapshot, elapsed_ms: u128) -> Value {
    Value::Object(vec![
        ("steps".into(), Value::UInt(u128::from(snap.steps))),
        ("paths".into(), Value::UInt(u128::from(snap.paths_terminated))),
        ("frontier".into(), Value::UInt(u128::from(snap.frontier))),
        ("max_depth".into(), Value::UInt(u128::from(snap.max_depth))),
        ("bound".into(), Value::Num(snap.bound())),
        ("bound_scaled".into(), Value::UInt(u128::from(snap.bound_scaled))),
        ("elapsed_ms".into(), Value::UInt(elapsed_ms)),
    ])
}

/// The `inspect` op: the in-flight request table, one row per engine run
/// currently executing, each with a live seqlock snapshot of its progress.
/// Never cached, never shed (it is a control op) — the whole point is to see
/// the server *right now*.
fn inspect_payload(state: &ServerState) -> Value {
    let rows = match state.inflight_table.lock() {
        Ok(table) => table
            .iter()
            .map(|row| {
                Value::Object(vec![
                    ("id".into(), row.id.clone().unwrap_or(Value::Null)),
                    ("op".into(), Value::Str(row.op.as_str().to_string())),
                    ("age_ms".into(), Value::UInt(row.started.elapsed().as_millis())),
                    ("phase".into(), Value::Str(row.phase.to_string())),
                    (
                        "progress".into(),
                        progress_value(
                            &row.progress.snapshot(),
                            row.started.elapsed().as_millis(),
                        ),
                    ),
                ])
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    Value::Object(vec![
        ("count".into(), Value::UInt(rows.len() as u128)),
        ("inflight".into(), Value::Array(rows)),
    ])
}

fn lower_payload(
    term: &Term,
    depth: usize,
    budget: &RunBudget,
    resume: Option<&(LowerBoundCheckpoint, u128)>,
    progress: &Arc<ProgressCell>,
    stream: Option<&StreamHandle>,
) -> Result<Value, ServiceError> {
    budget.check("before the lower-bound engine started")?;
    let config = LowerBoundConfig::default()
        .with_depth(depth)
        .with_progress(Arc::clone(progress));
    let mut check = |_work: usize| {
        if let Some(stream) = stream {
            stream.maybe_emit();
        }
        budget.check("during symbolic exploration")
    };
    let (result, checkpoint, _interruption) =
        try_lower_bound_resumable(term, &config, resume.map(|(c, _)| c), &mut check);
    Ok(lower_result_value(&result, depth, &checkpoint, resume))
}

fn lower_result_value(
    result: &LowerBoundResult,
    depth: usize,
    checkpoint: &LowerBoundCheckpoint,
    resume: Option<&(LowerBoundCheckpoint, u128)>,
) -> Value {
    // Cumulative engine time across the resume chain: the cache's yardstick
    // for "is this entry worth serving" must count the work the bound
    // embodies, not just this run's slice.
    let prior_ms = resume.map_or(0, |(_, ms)| *ms);
    let mut fields = vec![
        ("probability".into(), Value::Str(result.probability.to_decimal_string(10))),
        ("probability_f64".into(), Value::Num(result.probability.to_f64())),
        ("expected_steps_lb".into(), Value::Num(result.expected_steps.to_f64())),
        ("paths".into(), Value::UInt(result.paths as u128)),
        ("unexplored_paths".into(), Value::UInt(result.unexplored_paths as u128)),
        ("stuck_paths".into(), Value::UInt(result.stuck_paths as u128)),
        ("depth".into(), Value::UInt(depth as u128)),
        ("complete".into(), Value::Bool(!result.interrupted)),
        ("engine_ms".into(), Value::UInt(prior_ms + result.elapsed.as_millis())),
    ];
    if resume.is_some() {
        fields.push(("resumed".into(), Value::Bool(true)));
    }
    if result.interrupted {
        if let Some(value) = checkpoint_value(checkpoint) {
            fields.push(("checkpoint".into(), value));
        }
    }
    Value::Object(fields)
}

/// Interruptible provenance computation: the same symbolic engine as
/// `lower`, but the reply is the full explainability artifact — per-path
/// volume attribution with replayable witnesses, frontier summary and the
/// documented `probterm-explain-v1` schema. Deadline handling mirrors
/// `lower`: an expired budget yields the sound partial artifact (marked
/// `"complete": false`) rather than a bare `budget_exceeded`.
fn explain_payload(
    term: &Term,
    source: &str,
    depth: usize,
    top: Option<usize>,
    budget: &RunBudget,
) -> Result<Value, ServiceError> {
    budget.check("before the explain engine started")?;
    let config = ExplainConfig::default()
        .with_lower(LowerBoundConfig::default().with_depth(depth));
    let mut check = |_work: usize| budget.check("during symbolic exploration");
    let (provenance, _interruption) = try_explain(term, &config, &mut check);
    let engine_ms = provenance.result.elapsed.as_millis();
    let Value::Object(mut fields) =
        probterm_explain::render_json(&provenance, source, depth, top)
    else {
        unreachable!("render_json returns an object");
    };
    // `engine_ms` is the cache's partial-entry yardstick (the artifact's own
    // `elapsed_ms` is part of the documented schema and stays untouched).
    fields.push(("engine_ms".into(), Value::UInt(engine_ms)));
    Ok(Value::Object(fields))
}

/// Interruptible AST verification: the deadline is polled inside tree
/// construction and between Environment strategies. Verification has no
/// sound partial answer (a truncated strategy enumeration proves nothing),
/// so an expired budget is still a structured `budget_exceeded` — but it now
/// fires *mid-engine* instead of only before/after it.
fn verify_payload(term: &Term, budget: &RunBudget) -> Result<Value, ServiceError> {
    budget.check("before the AST verifier started")?;
    let mut check = || if budget.exceeded() { Err(()) } else { Ok(()) };
    let v = try_verify_ast(term, &mut check).map_err(|e| match e {
        VerifyError::Interrupted => budget.error("inside the AST verifier"),
        other => ServiceError::new(ErrorCode::NotApplicable, other.to_string()),
    })?;
    Ok(Value::Object(vec![
        ("verified".into(), Value::Bool(v.verified_ast)),
        ("papprox".into(), Value::Str(v.papprox.to_string())),
        ("strategies".into(), Value::UInt(v.strategies as u128)),
        ("env_nodes".into(), Value::UInt(v.env_nodes as u128)),
        ("sample_variables".into(), Value::UInt(v.sample_variables as u128)),
        ("rank".into(), Value::UInt(v.rank as u128)),
        ("corollary_5_13".into(), Value::Bool(v.verified_by_corollary_5_13)),
        ("engine_ms".into(), Value::UInt(v.elapsed.as_millis())),
    ]))
}

/// The combined report. The pipeline itself lives in
/// [`probterm_core::try_analyze_budgeted`] (shared with the CLI's `analyze`);
/// the service merely threads the deadline in as the budget check and
/// serializes the result. When the deadline strikes, the lower bound
/// degrades to its sound partial value and the remaining stages (AST
/// verification, Monte-Carlo cross-check) are skipped with an explanation,
/// all under `"complete": false`.
fn analyze_payload(
    term: &Term,
    depth: usize,
    runs: usize,
    steps: usize,
    seed: u64,
    budget: &RunBudget,
) -> Result<Value, ServiceError> {
    budget.check("before the combined analysis started")?;
    let engine_started = Instant::now();
    let config = AnalysisConfig {
        lower_bound_depth: depth,
        monte_carlo_runs: runs,
        monte_carlo_steps: steps,
        seed,
        profile: false,
    };
    let mut check = || if budget.exceeded() { Err(()) } else { Ok(()) };
    let analysis = try_analyze_budgeted(term, &config, &mut check)
        .map_err(|e| ServiceError::new(ErrorCode::NotApplicable, e.to_string()))?;
    let engine_ms = engine_started.elapsed().as_millis();
    let report = &analysis.report;

    let monte_carlo = match &report.monte_carlo {
        None => Value::Null,
        Some(mc) => Value::Object(vec![
            ("runs".into(), Value::UInt(mc.runs as u128)),
            ("terminated".into(), Value::UInt(mc.terminated as u128)),
            ("probability".into(), Value::Num(mc.probability())),
            ("confidence_99".into(), Value::Num(mc.confidence_99())),
            ("mean_steps".into(), Value::Num(mc.mean_steps)),
        ]),
    };
    Ok(Value::Object(vec![
        ("type".into(), Value::Str(report.simple_type.to_string())),
        (
            "lower".into(),
            Value::Object(vec![
                (
                    "probability".into(),
                    Value::Str(report.lower_bound.probability.to_decimal_string(10)),
                ),
                (
                    "probability_f64".into(),
                    Value::Num(report.lower_bound.probability.to_f64()),
                ),
                ("paths".into(), Value::UInt(report.lower_bound.paths as u128)),
                ("depth".into(), Value::UInt(depth as u128)),
            ]),
        ),
        (
            "ast_verified".into(),
            match report.ast_verified {
                Some(b) => Value::Bool(b),
                None => Value::Null,
            },
        ),
        (
            "papprox".into(),
            match &report.papprox {
                Some(p) => Value::Str(p.to_string()),
                None => Value::Null,
            },
        ),
        (
            "ast_skipped".into(),
            match &report.ast_skipped {
                Some(reason) => Value::Str(reason.clone()),
                None => Value::Null,
            },
        ),
        ("monte_carlo".into(), monte_carlo),
        ("complete".into(), Value::Bool(analysis.complete)),
        ("engine_ms".into(), Value::UInt(engine_ms)),
    ]))
}

fn catalog_payload() -> Value {
    fn rows(benchmarks: &[catalog::Benchmark]) -> Value {
        Value::Array(
            benchmarks
                .iter()
                .map(|b| {
                    Value::Object(vec![
                        ("name".into(), Value::Str(b.name.clone())),
                        ("description".into(), Value::Str(b.description.clone())),
                        ("program".into(), Value::Str(b.term.to_string())),
                        (
                            "pterm".into(),
                            b.expected_pterm.map_or(Value::Null, Value::Num),
                        ),
                        (
                            "ast".into(),
                            b.expected_ast.map_or(Value::Null, Value::Bool),
                        ),
                    ])
                })
                .collect(),
        )
    }
    Value::Object(vec![
        ("table1".into(), rows(&catalog::table1_benchmarks())),
        ("table2".into(), rows(&catalog::table2_benchmarks())),
    ])
}

fn stats_payload(state: &ServerState) -> Value {
    let stats = state.stats();
    Value::Object(vec![
        ("uptime_ms".into(), Value::UInt(stats.uptime_ms)),
        ("served".into(), Value::UInt(stats.served as u128)),
        ("hits".into(), Value::UInt(stats.hits as u128)),
        ("misses".into(), Value::UInt(stats.misses as u128)),
        ("inflight".into(), Value::UInt(stats.inflight as u128)),
        ("cache_entries".into(), Value::UInt(stats.cache_entries as u128)),
        ("cache_capacity".into(), Value::UInt(stats.cache_capacity as u128)),
        ("cache_bytes".into(), Value::UInt(u128::from(stats.cache_bytes))),
        (
            "oldest_entry_ms".into(),
            stats.oldest_entry_ms.map_or(Value::Null, |ms| Value::UInt(u128::from(ms))),
        ),
        ("workers".into(), Value::UInt(stats.workers as u128)),
        // Transport counters: single-flight coalescing, per-shard queue
        // depths and cache-snapshot persistence.
        ("coalesced_waiters".into(), Value::UInt(u128::from(stats.coalesced_waiters))),
        ("coalesce_fanout_max".into(), Value::UInt(u128::from(stats.coalesce_fanout_max))),
        (
            "shard_depths".into(),
            Value::Array(
                stats.shard_depths.iter().map(|d| Value::UInt(u128::from(*d))).collect(),
            ),
        ),
        ("cache_persist_loaded".into(), Value::UInt(u128::from(stats.cache_persist_loaded))),
        ("cache_persist_saved".into(), Value::UInt(u128::from(stats.cache_persist_saved))),
        (
            "cache_persist_rejected".into(),
            Value::UInt(u128::from(stats.cache_persist_rejected)),
        ),
        // Robustness counters: load shedding, resumable anytime engines,
        // fault injection, graceful drain and idle-connection reaping.
        (
            "robustness".into(),
            Value::Object(vec![
                ("shed".into(), Value::UInt(u128::from(stats.shed))),
                ("resumed".into(), Value::UInt(u128::from(stats.resumed))),
                (
                    "checkpointed_frontiers".into(),
                    Value::UInt(u128::from(stats.checkpointed_frontiers)),
                ),
                ("injected_faults".into(), Value::UInt(u128::from(stats.injected_faults))),
                (
                    "drained_in_flight".into(),
                    Value::UInt(u128::from(stats.drained_in_flight)),
                ),
                ("idle_closed".into(), Value::UInt(u128::from(stats.idle_closed))),
            ]),
        ),
        // Per-op latency metrics: requests/errors plus p50/p95/p99/max/mean
        // (µs) for the end-to-end latency and each phase. Ops with zero
        // requests are omitted.
        ("ops".into(), ops_value(&state.metrics.snapshot())),
    ])
}

/// The `metrics` op: the Prometheus text exposition wrapped in JSON (the
/// wire protocol is NDJSON; scrape adapters unwrap the `text` field).
fn metrics_payload(state: &ServerState) -> Value {
    let text = render_prometheus(&state.metrics.snapshot(), &state.stats());
    Value::Object(vec![
        ("format".into(), Value::Str("prometheus-text-0.0.4".into())),
        ("text".into(), Value::Str(text)),
    ])
}

// ---------------------------------------------------------------- transport

/// A reply sink: a writer that can additionally hard-close its transport.
/// `abort` backs the `--inject` mid-reply connection drop and the idle
/// timeout; the default is a no-op (stdio has nothing to close).
trait ReplySink: Write + Send {
    /// Hard-closes the underlying transport, if there is one.
    fn abort(&mut self) {}
}

impl ReplySink for io::Stdout {}

impl ReplySink for io::Sink {}

impl ReplySink for std::net::TcpStream {
    fn abort(&mut self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

type SharedWriter = Arc<Mutex<Box<dyn ReplySink>>>;

/// The reply side of one event-loop connection: a *nonblocking*
/// `TcpStream` adapted to the workers' blocking-style writes. Short
/// `WouldBlock` stalls (a full socket buffer) are absorbed with bounded
/// sleeping retries; a client that stays unwritable for ~2 s gets a
/// `TimedOut` error instead of wedging a worker thread forever.
struct NbWriter {
    stream: TcpStream,
}

impl Write for NbWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let patience = Instant::now();
        loop {
            match self.stream.write(buf) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if patience.elapsed() > Duration::from_secs(2) {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "client stalled; reply write timed out",
                        ));
                    }
                    thread::sleep(Duration::from_micros(200));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl ReplySink for NbWriter {
    fn abort(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Refuses a connection over [`ServerConfig::max_conns`]: one structured
/// `overloaded` error line (best effort), then the socket is dropped. The
/// refusal counts as a shed — the connection carried work the server
/// declined.
fn refuse_conn(state: &ServerState, mut stream: TcpStream, max_conns: usize) {
    state.shed.fetch_add(1, Ordering::SeqCst);
    let error = ServiceError::new(
        ErrorCode::Overloaded,
        format!("connection limit of {max_conns} reached; retry shortly"),
    )
    .with_retry_after(100);
    let mut line = error_reply(&None, &error);
    line.push('\n');
    let _ = stream.set_nonblocking(false);
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

struct Job {
    line: String,
    out: SharedWriter,
    /// When the reader enqueued the job; the worker's pop time minus this is
    /// the request's queue-wait phase.
    enqueued: Instant,
    /// The shard queue the job went onto — engine ops hash their canonical
    /// key, everything else round-robins.
    shard: usize,
    /// The singleflight lease when this job leads a coalesced engine run.
    flight: Option<FlightLease>,
}

/// Admission control, run by transport readers on parsed engine-op requests
/// *before* enqueueing. Returns the shed reply to write immediately
/// (bypassing the queue), or `None` to admit. A request is shed when the
/// queues already hold [`ServerConfig::queue_depth`] jobs, or when its
/// `deadline_ms` would expire before the predicted queue wait (queued jobs ×
/// the op's p95 engine time ÷ workers, from the live latency histograms).
/// Only engine ops are ever submitted here: control ops must stay responsive
/// under load — that is when `stats` matters most — and malformed lines get
/// their structured parse error from a worker.
fn admission_reply(state: &ServerState, request: &Request) -> Option<String> {
    let depth = state.config.queue_depth;
    if depth == 0 {
        return None;
    }
    // Relaxed: `queued` is a monotone-in/monotone-out gauge feeding a
    // heuristic. Admission never *admits unsoundly* on a stale read — a
    // request slipping past a momentarily low value merely queues one job
    // deeper, and a stale-high value sheds one request early. Nothing
    // orders against this load.
    let queued = state.queued.load(Ordering::Relaxed);
    if queued == 0 {
        // Empty queues admit unconditionally — skip the p95 histogram
        // snapshot allocation on the fast path.
        return None;
    }
    let workers = state.config.workers.max(1) as u64;
    let p95_us = state.metrics.op(request.op).engine.snapshot().p95();
    // Cold-start pessimism: before any engine-latency history exists for
    // this op, a deadline-bearing request is assumed to burn its whole
    // deadline — deadline-bounded anytime runs on deep trees do exactly
    // that. Warm or cold, the currently-running jobs count toward the
    // backlog: a request admitted behind one queued and one running job
    // waits out both before its own run starts, so a deadline promise has
    // to price the full stack, not just the queue.
    let backlog = queued.saturating_add(state.inflight.load(Ordering::Relaxed));
    let est_us = if p95_us == 0 {
        request.deadline_ms.unwrap_or(0).saturating_mul(1000)
    } else {
        p95_us
    };
    let predicted_wait_ms = backlog.saturating_mul(est_us) / workers / 1000;
    let over_depth = queued >= depth as u64;
    let doomed = request.deadline_ms.is_some_and(|d| est_us > 0 && predicted_wait_ms > d);
    if !over_depth && !doomed {
        return None;
    }
    let message = if over_depth {
        format!("admission queue is full ({queued} queued, depth {depth}); request shed")
    } else {
        format!(
            "deadline of {} ms would expire before the predicted queue wait of \
             {predicted_wait_ms} ms; request shed",
            request.deadline_ms.unwrap_or(0)
        )
    };
    let error = ServiceError::new(ErrorCode::Overloaded, message)
        .with_retry_after(predicted_wait_ms.max(1));
    state.shed.fetch_add(1, Ordering::SeqCst);
    state.served.fetch_add(1, Ordering::SeqCst);
    let seq = state.request_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let reply = error_reply(&request.id, &error);
    let phases = PhaseTimes::default();
    state.metrics.record(request.op, &phases, false);
    emit_trace(
        state,
        seq,
        &request.id,
        Some(request.op),
        None,
        &phases,
        error.code.as_str(),
        None,
        false,
    );
    Some(reply)
}

/// Serves a read-only control op (`catalog`, `stats`, `metrics`,
/// `inspect`) straight from the transport reader. These are cheap state
/// snapshots, and answering them inline keeps them responsive when every
/// worker is pinned under engine load — exactly when `stats` matters most.
/// `shutdown` stays on the pool: its reply-then-flag ordering anchors the
/// graceful drain. Engine ops (and unparseable lines) return `None`.
fn serve_inline_control(state: &ServerState, request: &Request) -> Option<String> {
    let timer = SpanTimer::start();
    let payload = match request.op {
        Op::Catalog => catalog_payload(),
        Op::Stats => stats_payload(state),
        Op::Metrics => metrics_payload(state),
        Op::Inspect => inspect_payload(state),
        _ => return None,
    };
    state.served.fetch_add(1, Ordering::SeqCst);
    let seq = state.request_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let mut phases = PhaseTimes::default();
    let serialize = SpanTimer::start();
    let reply = ok_reply(&request.id, request.op, None, 0, payload);
    phases.serialize_us = serialize.elapsed_us();
    phases.total_us = timer.elapsed_us();
    state.metrics.record(request.op, &phases, true);
    emit_trace(state, seq, &request.id, Some(request.op), None, &phases, "ok", None, false);
    Some(reply)
}

/// Serves a *complete* cached entry straight from the transport reader.
/// [`route_line`] has already paid for the request parse and the canonical
/// key, so a warm hit needs no queue slot, no worker handoff and no second
/// parse — on a lock-step client that removes two scheduler round-trips per
/// request. Returns `None` for misses, partial (deadline-truncated) entries
/// and over-cap requests, which all fall through to a worker: `engine_op`
/// owns miss/decline accounting, resume semantics and error rendering. An
/// inline hit is served too fast to be observable via `inspect`, so it
/// skips the in-flight registry.
fn serve_inline_hit(state: &ServerState, request: &Request, key: &CacheKey) -> Option<String> {
    let EngineParams { depth, runs, steps, .. } = engine_params(request);
    let config = &state.config;
    // `verify` keys omit depth/runs/steps, so an over-cap request can share
    // a key with a legally cached entry — it must still get its cap error
    // from the worker, never the cached value.
    if depth > config.max_depth || runs > config.max_runs || steps > config.max_steps {
        return None;
    }
    let timer = SpanTimer::start();
    let cached = {
        let mut cache = state.cache.lock().expect("cache lock");
        match cache.peek(key) {
            Some(entry) if !payload_is_partial(entry) => {
                cache.get(key).expect("peeked entry is present")
            }
            _ => return None,
        }
    };
    state.served.fetch_add(1, Ordering::SeqCst);
    let seq = state.request_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let mut phases = PhaseTimes { cache_us: timer.elapsed_us(), ..Default::default() };
    let serialize = SpanTimer::start();
    let reply = ok_reply(&request.id, request.op, Some("hit"), 0, cached);
    phases.serialize_us = serialize.elapsed_us();
    phases.total_us = timer.elapsed_us();
    state.metrics.record(request.op, &phases, true);
    emit_trace(
        state,
        seq,
        &request.id,
        Some(request.op),
        Some(key.term),
        &phases,
        "ok",
        Some("hit"),
        false,
    );
    emit_slow(state, seq, request.op, Some(key.term), &phases);
    Some(reply)
}

/// Where a routed line goes.
enum Routed {
    /// Write this reply immediately (admission shed); nothing is enqueued.
    Reply(String),
    /// Enqueue the line on `shard`, carrying a singleflight lease when the
    /// request leads a new coalesced engine run.
    Enqueue { shard: usize, flight: Option<FlightLease> },
    /// The request joined an identical in-flight run as a waiter; the
    /// finishing leader will reply. Nothing to enqueue.
    Coalesced,
}

/// Routes one raw request line: coalesce onto an identical in-flight engine
/// run, shed at admission, or enqueue on a shard. Engine ops shard by
/// canonical key so identical work lands behind its leader; control ops and
/// anything that fails early validation (those get their structured error
/// from a worker) round-robin across shards.
///
/// The coalesce check runs *before* admission control: a joiner consumes no
/// queue slot and no engine run, so an identical request must never be shed
/// — under a flood of one hot term, admission sees exactly one queued job.
fn route_line(state: &ServerState, line: &str, out: &SharedWriter) -> Routed {
    let fallback = || Routed::Enqueue { shard: state.next_shard(), flight: None };
    let Ok(request) = parse_request(line) else { return fallback() };
    if let Some(reply) = serve_inline_control(state, &request) {
        return Routed::Reply(reply);
    }
    if !request.op.is_engine_op() {
        return fallback();
    }
    let Some(source) = request.program.as_deref() else { return fallback() };
    if source.len() > state.config.max_program_bytes {
        return fallback();
    }
    let Some(term_key) = state.memoized_term_key(source) else { return fallback() };
    let key = request_cache_key(&request, term_key);
    // Warm hits are answered right here on the transport thread; everything
    // else pays the queue.
    if let Some(reply) = serve_inline_hit(state, &request, &key) {
        return Routed::Reply(reply);
    }
    let shard = (key.term % state.shard_count() as u128) as usize;
    let join = |group: &mut FlightGroup| {
        group
            .limit_ms
            .fetch_max(request.deadline_ms.unwrap_or(u64::MAX), Ordering::Relaxed);
        group.waiters.push(Waiter {
            id: request.id.clone(),
            out: Arc::clone(out),
            deadline_ms: request.deadline_ms,
            stream: request.stream,
            registered: Instant::now(),
        });
        state.coalesced_waiters.fetch_add(1, Ordering::Relaxed);
    };
    {
        let mut flights = state.singleflight.lock().expect("singleflight lock");
        if let Some(group) = flights.get_mut(&key) {
            join(group);
            return Routed::Coalesced;
        }
    }
    // Not in flight: normal admission, outside the singleflight lock (the
    // shed path renders, traces and records metrics).
    if let Some(reply) = admission_reply(state, &request) {
        return Routed::Reply(reply);
    }
    let limit_ms = Arc::new(AtomicU64::new(request.deadline_ms.unwrap_or(u64::MAX)));
    let mut flights = state.singleflight.lock().expect("singleflight lock");
    match flights.entry(key.clone()) {
        std::collections::hash_map::Entry::Occupied(mut entry) => {
            // Another reader became the leader between our two lock holds.
            join(entry.get_mut());
            Routed::Coalesced
        }
        std::collections::hash_map::Entry::Vacant(entry) => {
            entry.insert(FlightGroup { limit_ms: Arc::clone(&limit_ms), waiters: Vec::new() });
            Routed::Enqueue { shard, flight: Some(FlightLease { key, limit_ms }) }
        }
    }
}

/// Structured close of a connection that hit the idle read timeout: one
/// `idle_timeout` error line, then a hard shutdown of the stream.
fn idle_close(state: &ServerState, out: &SharedWriter) {
    state.idle_closed.fetch_add(1, Ordering::SeqCst);
    let ms = state.config.idle_timeout_ms.unwrap_or(0);
    let mut notice = error_reply(
        &None,
        &ServiceError::new(
            ErrorCode::IdleTimeout,
            format!("connection idle for more than {ms} ms; closing"),
        ),
    );
    notice.push('\n');
    if let Ok(mut out) = out.lock() {
        let _ = out.write_all(notice.as_bytes());
        let _ = out.flush();
        out.abort();
    }
}

/// Enqueues one admitted line on its shard queue, keeping the queued-jobs
/// gauge (the admission-control input) and the shard-depth gauge in sync.
/// Returns `false` when the pool is gone.
fn enqueue_job(
    state: &ServerState,
    senders: &[mpsc::Sender<Job>],
    shard: usize,
    line: String,
    out: &SharedWriter,
    flight: Option<FlightLease>,
) -> bool {
    // Relaxed: both gauges feed heuristics (admission, stats), not an
    // ordering-sensitive protocol — see `admission_reply`.
    state.queued.fetch_add(1, Ordering::Relaxed);
    state.shard_depths[shard].add(1);
    let job = Job { line, out: Arc::clone(out), enqueued: Instant::now(), shard, flight };
    if let Err(mpsc::SendError(job)) = senders[shard].send(job) {
        state.queued.fetch_sub(1, Ordering::Relaxed);
        state.shard_depths[shard].sub(1);
        // The pool is gone (drain): retire the would-be leader's
        // singleflight entry so it cannot absorb further joiners.
        if let Some(flight) = &job.flight {
            if let Ok(mut flights) = state.singleflight.lock() {
                flights.remove(&flight.key);
            }
        }
        return false;
    }
    true
}

fn spawn_workers(
    state: &Arc<ServerState>,
    count: usize,
) -> (Vec<mpsc::Sender<Job>>, Vec<thread::JoinHandle<()>>) {
    let shards = state.shard_count();
    let mut senders = Vec::with_capacity(shards);
    let mut shard_queues = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (sender, receiver) = mpsc::channel::<Job>();
        senders.push(sender);
        shard_queues.push(Arc::new(Mutex::new(receiver)));
    }
    let shard_queues = Arc::new(shard_queues);
    let handles = (0..count.max(1))
        .map(|i| {
            let state = Arc::clone(state);
            let queues = Arc::clone(&shard_queues);
            thread::Builder::new()
                .name(format!("probterm-worker-{i}"))
                .spawn(move || {
                    let shards = queues.len();
                    let home = i % shards;
                    // Set once the home shard's channel disconnects (senders
                    // are dropped only after `draining` is visible): one
                    // final sweep over the sibling shards, then exit.
                    let mut home_closed = false;
                    loop {
                        // Pop the home shard first, then steal from siblings
                        // in order. Identical work hashes onto one shard, so
                        // home affinity keeps a hot term's retries behind
                        // their leader while idle workers still drain busy
                        // shards. The scan uses `try_lock`: a contended
                        // receiver is already being popped (or parked on) by
                        // its home worker, and blocking behind a sibling's
                        // park would convoy the whole pool.
                        let mut stolen = None;
                        for k in 0..shards {
                            let shard = (home + k) % shards;
                            if let Ok(guard) = queues[shard].try_lock() {
                                if let Ok(job) = guard.try_recv() {
                                    stolen = Some(job);
                                    break;
                                }
                            }
                        }
                        let job = match stolen {
                            Some(job) => job,
                            None if home_closed => break,
                            None => {
                                // Park on the home shard immediately — no
                                // spin phase: a home-shard job wakes the
                                // channel's condvar directly (a handoff that
                                // stays cheap even on one core, where
                                // spinning would only steal cycles from the
                                // threads producing the work), while the
                                // short timeout bounds steal latency for
                                // jobs on sibling shards and lets the
                                // graceful drain end the loop even while
                                // readers hold sender clones. The lock is
                                // held only for the pop, never the job.
                                let polled = match queues[home].lock() {
                                    Ok(guard) => {
                                        guard.recv_timeout(Duration::from_millis(1))
                                    }
                                    Err(_) => break,
                                };
                                match polled {
                                    Ok(job) => job,
                                    Err(mpsc::RecvTimeoutError::Timeout) => {
                                        if state.draining.load(Ordering::SeqCst) {
                                            // Draining and every shard stayed
                                            // empty for a full poll: all
                                            // queued requests are finished
                                            // (or checkpointed) — exit.
                                            break;
                                        }
                                        continue;
                                    }
                                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                                        home_closed = true;
                                        continue;
                                    }
                                }
                            }
                        };
                        state.queued.fetch_sub(1, Ordering::Relaxed);
                        state.shard_depths[job.shard].sub(1);
                        let queue_us = u64::try_from(job.enqueued.elapsed().as_micros())
                            .unwrap_or(u64::MAX);
                        // Streamed progress frames go straight to the
                        // originating connection, each under its own lock
                        // acquisition so replies to interleaved requests on
                        // the same connection are never blocked for a whole
                        // run.
                        let frame_out = Arc::clone(&job.out);
                        let emit_frame = move |frame: &str| {
                            if let Ok(mut out) = frame_out.lock() {
                                let _ = out.write_all(frame.as_bytes());
                                let _ = out.write_all(b"\n");
                                let _ = out.flush();
                            }
                        };
                        let outcome = process_line(
                            &state,
                            &job.line,
                            queue_us,
                            Some(&emit_frame),
                            job.flight.as_ref(),
                        );
                        if let Some(mut reply) = outcome.reply {
                            reply.push('\n');
                            if let Ok(mut out) = job.out.lock() {
                                if outcome.drop_reply {
                                    // Injected fault: half the bytes, then a
                                    // hard close mid-line.
                                    let half = reply.len() / 2;
                                    let _ = out.write_all(&reply.as_bytes()[..half]);
                                    let _ = out.flush();
                                    out.abort();
                                } else {
                                    // One write per reply: two small writes
                                    // would interact with Nagle + delayed
                                    // ACKs and cost ~10 ms per lock-step
                                    // request on TCP.
                                    let _ = out.write_all(reply.as_bytes());
                                    let _ = out.flush();
                                }
                            }
                        }
                        // The flag is set only after the reply is flushed,
                        // so a `shutdown` reply is on the wire before the
                        // accept loop can exit.
                        if outcome.shutdown {
                            state.shutdown.store(true, Ordering::SeqCst);
                        }
                    }
                })
                .expect("spawn worker thread")
        })
        .collect();
    (senders, handles)
}

/// The analysis server. Cheap to clone; clones share state (and cache).
#[derive(Debug, Clone)]
pub struct Server {
    state: Arc<ServerState>,
}

/// A server accepting TCP connections on a background thread.
#[derive(Debug)]
pub struct RunningServer {
    /// The actual bound address (useful with a `:0` request).
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    handle: thread::JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The shared server state (for counters in tests and benchmarks).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Waits for the accept loop to exit (i.e. for a `shutdown` request).
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors.
    pub fn join(self) -> io::Result<()> {
        self.handle.join().unwrap_or_else(|_| {
            Err(io::Error::other("server thread panicked"))
        })
    }
}

impl Server {
    /// Creates a server with the given configuration.
    pub fn new(config: ServerConfig) -> Server {
        Server::with_trace(config, None)
    }

    /// Creates a server that additionally streams one JSONL trace record per
    /// request into `trace` (see [`handle_line`] for the record schema —
    /// `probterm serve --trace <path|->` is the CLI spelling). When the
    /// config sets [`ServerConfig::slow_ms`], slow-request lines go to
    /// stderr.
    pub fn with_trace(config: ServerConfig, trace: Option<TraceSink>) -> Server {
        let slow = config.slow_ms.map(|_| TraceSink::to_stderr());
        Server::with_sinks(config, trace, slow)
    }

    /// Like [`Server::with_trace`], but with an explicit slow-request sink —
    /// tests capture the slow log in memory instead of on stderr. The sink
    /// is only consulted when [`ServerConfig::slow_ms`] is set.
    pub fn with_sinks(
        config: ServerConfig,
        trace: Option<TraceSink>,
        slow: Option<TraceSink>,
    ) -> Server {
        let state = Arc::new(ServerState::new(config, trace, slow));
        // Warm boot: preload the persisted snapshot, if one is configured.
        state.load_cache_snapshot();
        Server { state }
    }

    /// Writes the result cache to [`ServerConfig::cache_path`] (atomic
    /// temp-file + rename; no-op returning 0 without a path). The serve
    /// loops call this at graceful drain; exposed for tests and embedders.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-file write/rename errors.
    pub fn persist_cache(&self) -> io::Result<usize> {
        self.state.persist_cache_snapshot()
    }

    /// The shared state (counters, shutdown flag).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Processes one request line in the calling thread (no pool).
    pub fn handle_line(&self, line: &str) -> Option<String> {
        handle_line(&self.state, line)
    }

    /// Serves newline-delimited JSON over stdin/stdout until EOF or a
    /// `shutdown` request, dispatching to the worker pool. Replies may
    /// interleave out of request order; clients correlate by `id`.
    ///
    /// # Errors
    ///
    /// Propagates stdin read errors.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let (senders, workers) = spawn_workers(&self.state, self.state.config.workers);
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
        // Read stdin on a helper thread: a blocked `read_line` cannot be
        // interrupted portably, so the serving loop polls the shutdown flag
        // between received lines instead. After a `shutdown` request the
        // reader thread may stay parked in its final read; it is detached and
        // dies with the process, which exits as soon as this returns.
        let (line_sender, line_receiver) = mpsc::channel::<io::Result<String>>();
        thread::Builder::new()
            .name("probterm-stdin".into())
            .spawn(move || {
                for line in io::stdin().lock().lines() {
                    let failed = line.is_err();
                    if line_sender.send(line).is_err() || failed {
                        break;
                    }
                }
            })
            .expect("spawn stdin reader thread");
        let mut read_error = None;
        while !self.state.shutdown_requested() {
            match line_receiver.recv_timeout(Duration::from_millis(25)) {
                Ok(Ok(line)) => match route_line(&self.state, &line, &out) {
                    Routed::Reply(reply) => write_reply_line(&out, &reply),
                    Routed::Coalesced => {}
                    Routed::Enqueue { shard, flight } => {
                        if !enqueue_job(&self.state, &senders, shard, line, &out, flight) {
                            break;
                        }
                    }
                },
                Ok(Err(e)) => {
                    read_error = Some(e);
                    break;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Graceful drain: stop accepting input (done — the loop exited), let
        // the workers finish or checkpoint everything queued, then snapshot
        // the cache for the next boot and leave.
        self.state.draining.store(true, Ordering::SeqCst);
        drop(senders);
        for worker in workers {
            let _ = worker.join();
        }
        self.state.persist_cache_snapshot()?;
        match read_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Serves newline-delimited JSON over TCP until a `shutdown` request,
    /// with a single readiness-polled nonblocking event loop owning *all*
    /// connection reads — no thread per connection, so thousands of open
    /// sockets cost per-connection buffers, not stacks.
    ///
    /// Each poll round accepts pending connections (refusing over
    /// [`ServerConfig::max_conns`] with a structured `overloaded` line),
    /// drains every readable socket into its per-connection buffer, frames
    /// complete lines and routes them (coalesce / shed / enqueue on a
    /// shard), and reaps idle connections. Replies go out on the same
    /// connection the request came in on, possibly out of request order.
    /// The loop spins with `yield_now` while traffic flows, polls at the
    /// platform's nanosleep floor through short gaps, and backs off to 1 ms
    /// sleeps after ~20 ms of silence so long engine runs keep the core — a
    /// std-only readiness poll with no OS selector.
    ///
    /// After shutdown the loop stops and the server drains gracefully:
    /// workers finish (or checkpoint, via the draining flag the engine
    /// budget checks observe) everything already queued before the pool is
    /// torn down, then the cache snapshot is persisted; lines a
    /// still-connected client sends *after* the drain completes are not
    /// processed.
    ///
    /// # Errors
    ///
    /// Propagates accept errors (other than transient would-block/
    /// interrupted) and snapshot-persist errors.
    pub fn serve_listener(&self, listener: TcpListener) -> io::Result<()> {
        struct Conn {
            stream: TcpStream,
            out: SharedWriter,
            buf: Vec<u8>,
            last_activity: Instant,
            closed: bool,
        }
        listener.set_nonblocking(true)?;
        let (senders, workers) = spawn_workers(&self.state, self.state.config.workers);
        let max_conns = self.state.config.max_conns.max(1);
        let idle_limit = self.state.config.idle_timeout_ms.map(Duration::from_millis);
        let mut conns: Vec<Conn> = Vec::new();
        let mut idle_rounds: u32 = 0;
        let mut fatal: Option<io::Error> = None;
        let mut chunk = [0u8; 4096];
        while !self.state.shutdown_requested() && fatal.is_none() {
            let mut progressed = false;
            // Accept burst: take everything pending, then move on.
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        progressed = true;
                        if conns.len() >= max_conns {
                            refuse_conn(&self.state, stream, max_conns);
                            continue;
                        }
                        // The accepted socket may or may not inherit the
                        // listener's O_NONBLOCK; make it explicit.
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let Ok(writer) = stream.try_clone() else { continue };
                        let out: SharedWriter =
                            Arc::new(Mutex::new(Box::new(NbWriter { stream: writer })));
                        conns.push(Conn {
                            stream,
                            out,
                            buf: Vec::new(),
                            last_activity: Instant::now(),
                            closed: false,
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        fatal = Some(e);
                        break;
                    }
                }
            }
            // Read burst: drain every readable connection, frame and route
            // complete lines.
            for conn in &mut conns {
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            conn.closed = true;
                            break;
                        }
                        Ok(n) => {
                            progressed = true;
                            conn.last_activity = Instant::now();
                            conn.buf.extend_from_slice(&chunk[..n]);
                            if n < chunk.len() {
                                // Short read: the socket buffer is drained,
                                // so the next read would only report
                                // would-block — skip that syscall. Anything
                                // arriving in the gap is picked up next
                                // round like any other readiness poll.
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.closed = true;
                            break;
                        }
                    }
                }
                while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
                    let raw: Vec<u8> = conn.buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&raw[..pos])
                        .trim_end_matches('\r')
                        .to_string();
                    match route_line(&self.state, &line, &conn.out) {
                        Routed::Reply(reply) => write_reply_line(&conn.out, &reply),
                        Routed::Coalesced => {}
                        Routed::Enqueue { shard, flight } => {
                            if !enqueue_job(
                                &self.state,
                                &senders,
                                shard,
                                line,
                                &conn.out,
                                flight,
                            ) {
                                conn.closed = true;
                            }
                        }
                    }
                }
                if !conn.closed {
                    if let Some(limit) = idle_limit {
                        if conn.last_activity.elapsed().as_millis() >= limit.as_millis() {
                            // Idle read timeout: a structured close instead
                            // of a silent hangup.
                            idle_close(&self.state, &conn.out);
                            conn.closed = true;
                        }
                    }
                }
            }
            conns.retain(|conn| !conn.closed);
            // Adaptive pacing. A handful of yields first: right after a
            // reply burst the clients are runnable and turn the next request
            // around within microseconds, and `yield_now` donates the core
            // to them without paying the platform's sleep floor (~80 µs of
            // timer slack per nanosleep here). The window is deliberately
            // small — long yield spins on a loaded single core burn whole
            // timeslices the workers need. Past it, park in escalating
            // sleeps: a genuinely idle loop converges to millisecond polls.
            if progressed {
                idle_rounds = 0;
            } else {
                idle_rounds = idle_rounds.saturating_add(1);
                if idle_rounds < 64 {
                    thread::yield_now();
                } else if idle_rounds < 320 {
                    // The nominal duration is a fiction: a 1 µs nanosleep
                    // lands at the platform's timer-slack floor (~80 µs
                    // here), which is the real point — deschedule so the
                    // clients run, for the shortest interval the OS sells.
                    // This tier covers ~20 ms of silence; past that the
                    // socket is genuinely quiet (a long engine run is in
                    // flight, or nobody is talking) and the wakeups would
                    // only steal cycles from the worker, so fall through
                    // to millisecond polls.
                    thread::sleep(Duration::from_micros(1));
                } else {
                    thread::sleep(Duration::from_millis(1));
                }
            }
        }
        // Graceful drain: the event loop has stopped; workers finish or
        // checkpoint what is queued and in flight, the pool exits, and the
        // cache snapshot is written for the next boot.
        self.state.draining.store(true, Ordering::SeqCst);
        drop(senders);
        for worker in workers {
            let _ = worker.join();
        }
        self.state.persist_cache_snapshot()?;
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Binds `addr` and serves it on a background thread; returns the bound
    /// address (pass port `:0` to let the OS pick) and a join handle.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_tcp(&self, addr: impl ToSocketAddrs) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let server = self.clone();
        let handle = thread::Builder::new()
            .name("probterm-accept".into())
            .spawn(move || server.serve_listener(listener))?;
        Ok(RunningServer { addr: bound, state: Arc::clone(&self.state), handle })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServerConfig { workers: 1, ..Default::default() })
    }

    fn result_of(reply: &str) -> Value {
        let v = serde_json::from_str(reply).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{reply}");
        v.get("result").unwrap().clone()
    }

    fn error_code_of(reply: &str) -> String {
        let v = serde_json::from_str(reply).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{reply}");
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    }

    #[test]
    fn blank_lines_produce_no_reply() {
        let s = server();
        assert_eq!(s.handle_line(""), None);
        assert_eq!(s.handle_line("   \t"), None);
    }

    #[test]
    fn simulate_matches_the_library_estimator() {
        use probterm_core::spcf::{estimate_termination, MonteCarloConfig};
        let s = server();
        let src = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
        let reply = s
            .handle_line(&format!(
                r#"{{"id":1,"op":"simulate","program":"{src}","runs":200,"steps":400,"seed":7}}"#
            ))
            .unwrap();
        let result = result_of(&reply);
        let direct = estimate_termination(
            &parse_term(src).unwrap(),
            &MonteCarloConfig {
                runs: 200,
                max_steps: 400,
                seed: 7,
                strategy: Strategy::CallByName,
            },
        );
        assert_eq!(
            result.get("terminated").and_then(Value::as_u64),
            Some(direct.terminated as u64)
        );
        assert_eq!(
            result.get("probability").and_then(Value::as_f64),
            Some(direct.probability())
        );
        assert_eq!(
            result.get("mean_steps").and_then(Value::as_f64),
            Some(direct.mean_steps)
        );
    }

    #[test]
    fn alpha_equivalent_resubmission_hits_the_cache() {
        let s = server();
        let a = r#"{"op":"lower","program":"(fix phi x. if sample <= 1/4 then x else phi (phi (x + 1))) 1","depth":30}"#;
        let b = r#"{"op":"lower","program":"(fix loop n. if sample <= 1/4 then n else loop (loop (n + 1))) 1","depth":30}"#;
        let first = s.handle_line(a).unwrap();
        let second = s.handle_line(b).unwrap();
        let v1 = serde_json::from_str(&first).unwrap();
        let v2 = serde_json::from_str(&second).unwrap();
        assert_eq!(v1.get("cache").and_then(Value::as_str), Some("miss"));
        assert_eq!(v2.get("cache").and_then(Value::as_str), Some("hit"));
        assert_eq!(v1.get("result"), v2.get("result"));
        let stats = s.state().stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        // A different depth is a different cache entry.
        let c = s
            .handle_line(
                r#"{"op":"lower","program":"(fix phi x. if sample <= 1/4 then x else phi (phi (x + 1))) 1","depth":31}"#,
            )
            .unwrap();
        let v3 = serde_json::from_str(&c).unwrap();
        assert_eq!(v3.get("cache").and_then(Value::as_str), Some("miss"));
    }

    #[test]
    fn deadline_exceeded_is_structured_and_worker_survives() {
        let s = server();
        let reply = s
            .handle_line(
                r#"{"id":9,"op":"simulate","program":"(fix phi x. phi x) 0","runs":500000,"steps":3000,"deadline_ms":30}"#,
            )
            .unwrap();
        assert_eq!(error_code_of(&reply), "budget_exceeded");
        // The same state keeps serving.
        let next = s.handle_line(r#"{"op":"stats"}"#).unwrap();
        let stats = result_of(&next);
        assert_eq!(stats.get("inflight").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn deadline_bounded_lower_returns_a_partial_sound_bound() {
        let s = server();
        // gr explores an exponential branching tree: depth 400 cannot finish
        // within the deadline, but the first terminating paths are found in
        // microseconds, so the partial bound is nonzero.
        let gr = "(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0";
        let request = format!(
            r#"{{"id":1,"op":"lower","program":"{gr}","depth":400,"deadline_ms":120}}"#
        );
        let reply = s.handle_line(&request).unwrap();
        let result = result_of(&reply);
        assert_eq!(
            result.get("complete").and_then(Value::as_bool),
            Some(false),
            "a deadline-cut lower request must be marked incomplete: {reply}"
        );
        let p = result.get("probability_f64").and_then(Value::as_f64).unwrap();
        assert!(p > 0.0, "partial bound must be nonzero, got {p}");
        assert!(p < 1.0, "partial bound must be sound, got {p}");
        assert!(result.get("paths").and_then(Value::as_u64).unwrap() >= 1);
        // A deadline-bounded retry is an instant hit on the partial entry.
        let retry = s.handle_line(&request).unwrap();
        let v = serde_json::from_str(&retry).unwrap();
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("hit"));
    }

    #[test]
    fn partial_cache_entries_upgrade_on_richer_retries() {
        use crate::cache::CacheKey;
        let s = server();
        let geo = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
        let key = CacheKey {
            term: parse_term(geo).unwrap().canonical_key(),
            analysis: "lower",
            config: "depth=30".into(),
        };
        // Seed the cache with a (synthetic) partial entry that burned 500 ms.
        let partial = Value::Object(vec![
            ("probability_f64".into(), Value::Num(0.25)),
            ("complete".into(), Value::Bool(false)),
            ("engine_ms".into(), Value::UInt(500)),
        ]);
        s.state().cache.lock().unwrap().put(key.clone(), partial.clone());
        // A retry whose budget is comparable to what the entry burned is
        // served the partial as an instant hit.
        let bounded = s
            .handle_line(&format!(
                r#"{{"op":"lower","program":"{geo}","depth":30,"deadline_ms":800}}"#
            ))
            .unwrap();
        let v = serde_json::from_str(&bounded).unwrap();
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("hit"));
        assert_eq!(v.get("result"), Some(&partial));
        // A *much* richer budget declines the stale partial, recomputes, and
        // upgrades the entry (counted as a miss: nothing was served).
        let richer = s
            .handle_line(&format!(
                r#"{{"op":"lower","program":"{geo}","depth":30,"deadline_ms":60000}}"#
            ))
            .unwrap();
        let v = serde_json::from_str(&richer).unwrap();
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("miss"));
        let result = v.get("result").unwrap();
        assert_eq!(result.get("complete").and_then(Value::as_bool), Some(true));
        assert!(result.get("probability_f64").and_then(Value::as_f64).unwrap() > 0.9);
        // The upgraded entry now serves every retry, bounded or not.
        {
            let cache = s.state().cache.lock().unwrap();
            let upgraded = cache.peek(&key).unwrap();
            assert_eq!(upgraded.get("complete").and_then(Value::as_bool), Some(true));
        }
        let unbounded = s
            .handle_line(&format!(r#"{{"op":"lower","program":"{geo}","depth":30}}"#))
            .unwrap();
        let v = serde_json::from_str(&unbounded).unwrap();
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("hit"));
        // Counters: seeded-partial decline + recompute = 1 declined miss,
        // then 2 served hits (the bounded partial hit and the final hit).
        let stats = s.state().stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn partial_lower_checkpoints_and_a_richer_retry_resumes() {
        let s = server();
        // geo's path tree is a single chain, so its frontier stays tiny, but
        // its path volumes are high-dimensional polytopes: depth 400 cannot
        // finish in 120 ms, so the first run truncates with a checkpoint.
        let geo = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
        let reply = s
            .handle_line(&format!(
                r#"{{"op":"lower","program":"{geo}","depth":400,"deadline_ms":120}}"#
            ))
            .unwrap();
        let partial = result_of(&reply);
        assert_eq!(
            partial.get("complete").and_then(Value::as_bool),
            Some(false),
            "{reply}"
        );
        let checkpoint = partial.get("checkpoint").expect("partial carries a checkpoint");
        let frontier = checkpoint.get("frontier").and_then(Value::as_array).unwrap();
        assert!(!frontier.is_empty());
        for seed in frontier {
            assert!(
                ReplaySeed::parse(seed.as_str().unwrap()).is_some(),
                "frontier entries must round-trip as replay seeds: {seed:?}"
            );
        }
        let p1 = partial.get("probability_f64").and_then(Value::as_f64).unwrap();
        let ms1 = partial.get("engine_ms").and_then(Value::as_u64).unwrap();
        // A meaningfully richer budget declines the cached partial and
        // *resumes* from its checkpoint instead of recomputing: the reply
        // says so and the bound is monotone.
        let reply = s
            .handle_line(&format!(
                r#"{{"op":"lower","program":"{geo}","depth":400,"deadline_ms":60000}}"#
            ))
            .unwrap();
        let resumed = result_of(&reply);
        assert_eq!(resumed.get("resumed").and_then(Value::as_bool), Some(true), "{reply}");
        let p2 = resumed.get("probability_f64").and_then(Value::as_f64).unwrap();
        assert!(p2 >= p1, "resumed bound {p2} must not regress below the partial {p1}");
        // engine_ms is cumulative across the resume chain — the cache
        // yardstick must reflect the work the bound embodies.
        assert!(resumed.get("engine_ms").and_then(Value::as_u64).unwrap() >= ms1);
        let stats = s.state().stats();
        assert_eq!(stats.resumed, 1);
        assert!(stats.checkpointed_frontiers >= 1);
    }

    #[test]
    fn admission_sheds_engine_ops_when_overloaded() {
        let s = Server::new(ServerConfig { workers: 1, queue_depth: 2, ..Default::default() });
        let state = s.state();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(io::sink())));
        let lower = r#"{"id":9,"op":"lower","program":"sample","depth":10}"#;
        let parsed = parse_request(lower).expect("parseable");
        // Empty queue with no deadline: admitted without consulting p95.
        assert!(admission_reply(state, &parsed).is_none());
        // Queue at depth: shed with a structured overloaded reply.
        state.queued.store(2, Ordering::SeqCst);
        let reply = admission_reply(state, &parsed).expect("over-depth engine op is shed");
        assert_eq!(error_code_of(&reply), "overloaded");
        let v: Value = serde_json::from_str(&reply).unwrap();
        let retry = v
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Value::as_u64)
            .unwrap();
        assert!(retry >= 1);
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(9), "shed echoes the id");
        // The router sheds through the same path...
        assert!(matches!(route_line(state, lower, &out), Routed::Reply(_)));
        // ...but never sheds control ops or unparseable lines — control
        // ops are answered inline by the reader even at full queue depth,
        // and unparseable lines route to a worker for the structured error.
        match route_line(state, r#"{"op":"stats"}"#, &out) {
            Routed::Reply(reply) => {
                assert!(reply.contains(r#""ok":true"#), "{reply}");
            }
            _ => panic!("stats is answered inline, never shed"),
        }
        assert!(matches!(
            route_line(state, "not json", &out),
            Routed::Enqueue { flight: None, .. }
        ));
        // Deadline-doomed shedding: with a recorded 1 s p95 engine time and
        // one queued job, a 10 ms deadline cannot survive the predicted wait.
        state.queued.store(1, Ordering::SeqCst);
        let phases = PhaseTimes { engine_us: 1_000_000, total_us: 1_000_000, ..Default::default() };
        state.metrics.record(Op::Lower, &phases, true);
        let doomed = r#"{"op":"lower","program":"sample","depth":10,"deadline_ms":10}"#;
        let doomed = parse_request(doomed).expect("parseable");
        let reply = admission_reply(state, &doomed).expect("doomed deadline is shed");
        assert_eq!(error_code_of(&reply), "overloaded");
        // Shed requests are counted, and the stats payload mirrors them.
        // Served is 4: the three sheds plus the inline stats answer above.
        assert_eq!(state.stats().shed, 3);
        assert_eq!(state.stats().served, 4);
        let robustness = stats_payload(state);
        let shed = robustness
            .get("robustness")
            .and_then(|r| r.get("shed"))
            .and_then(Value::as_u64);
        assert_eq!(shed, Some(3));
        // An identical request already in flight is *coalesced*, not shed,
        // even at full queue depth: joiners consume no queue slot.
        state.queued.store(0, Ordering::SeqCst);
        let routed = route_line(state, lower, &out);
        assert!(
            matches!(routed, Routed::Enqueue { flight: Some(_), .. }),
            "first engine op leads a flight"
        );
        state.queued.store(2, Ordering::SeqCst);
        assert!(matches!(route_line(state, lower, &out), Routed::Coalesced));
        assert_eq!(state.stats().coalesced_waiters, 1);
        assert_eq!(state.stats().shed, 3, "the joiner was not shed");
        // queue_depth 0 disables admission control entirely.
        let off = Server::new(ServerConfig { queue_depth: 0, ..Default::default() });
        off.state().queued.store(1000, Ordering::SeqCst);
        assert!(admission_reply(off.state(), &parsed).is_none());
    }

    #[test]
    fn injected_engine_panics_are_structured_and_counted() {
        let s = Server::new(ServerConfig {
            inject: Some(InjectSpec::parse("panic=@2").unwrap()),
            ..Default::default()
        });
        let lower = r#"{"op":"lower","program":"sample","depth":5}"#;
        let first = s.handle_line(lower).unwrap();
        let _ = result_of(&first); // engine run 1: no fault
        let second = s
            .handle_line(r#"{"op":"lower","program":"sample + 0","depth":5}"#)
            .unwrap();
        assert_eq!(error_code_of(&second), "internal", "{second}");
        assert!(second.contains("injected fault"), "{second}");
        // The worker survives and the cache is intact: the first program is
        // still a hit (cache hits never draw injection decisions).
        let again = s.handle_line(lower).unwrap();
        let v: Value = serde_json::from_str(&again).unwrap();
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("hit"));
        assert_eq!(s.state().stats().injected_faults, 1);
    }

    #[test]
    fn deadline_cancels_inside_the_ast_verifier() {
        let s = server();
        // A deadline that has already passed when the verifier starts polling
        // must produce budget_exceeded (there is no sound partial proof), and
        // the error message must point inside the engine.
        let reply = s
            .handle_line(
                r#"{"op":"verify","program":"(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 1","deadline_ms":0}"#,
            )
            .unwrap();
        assert_eq!(error_code_of(&reply), "budget_exceeded");
    }

    #[test]
    fn analyze_reports_partial_results_under_deadline() {
        let s = server();
        let gr = "(fix phi x. if sample <= 1/2 then x else phi (phi (phi x))) 0";
        let reply = s
            .handle_line(&format!(
                r#"{{"op":"analyze","program":"{gr}","depth":400,"deadline_ms":120}}"#
            ))
            .unwrap();
        let result = result_of(&reply);
        assert_eq!(result.get("complete").and_then(Value::as_bool), Some(false));
        let lower = result.get("lower").unwrap();
        assert!(lower.get("probability_f64").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(result.get("ast_skipped").and_then(Value::as_str).is_some());
    }

    #[test]
    fn verify_not_applicable_and_parse_errors() {
        let s = server();
        let reply = s
            .handle_line(r#"{"op":"verify","program":"if sample <= 1/2 then 0 else 1"}"#)
            .unwrap();
        assert_eq!(error_code_of(&reply), "not_applicable");
        let reply = s.handle_line(r#"{"op":"lower","program":"((("}"#).unwrap();
        assert_eq!(error_code_of(&reply), "parse_error");
        let reply = s.handle_line("{not json").unwrap();
        assert_eq!(error_code_of(&reply), "parse_error");
        let reply = s
            .handle_line(r#"{"op":"lower","program":"0","depth":100000}"#)
            .unwrap();
        assert_eq!(error_code_of(&reply), "bad_request");
    }

    #[test]
    fn stats_reports_per_op_percentiles_and_phase_breakdowns() {
        let s = server();
        let geo = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
        // Scripted batch: one lower miss, two hits on the same entry, and one
        // verify that fails with not_applicable.
        for _ in 0..3 {
            let reply = s
                .handle_line(&format!(r#"{{"op":"lower","program":"{geo}","depth":25}}"#))
                .unwrap();
            result_of(&reply);
        }
        let reply = s
            .handle_line(r#"{"op":"verify","program":"if sample <= 1/2 then 0 else 1"}"#)
            .unwrap();
        assert_eq!(error_code_of(&reply), "not_applicable");

        let stats = result_of(&s.handle_line(r#"{"op":"stats"}"#).unwrap());
        let ops = stats.get("ops").unwrap();
        let lower = ops.get("lower").unwrap();
        assert_eq!(lower.get("requests").and_then(Value::as_u64), Some(3));
        assert_eq!(lower.get("errors").and_then(Value::as_u64), Some(0));
        let total = lower.get("total_us").unwrap();
        let p50 = total.get("p50").and_then(Value::as_u64).unwrap();
        let p99 = total.get("p99").and_then(Value::as_u64).unwrap();
        let max = total.get("max").and_then(Value::as_u64).unwrap();
        assert!(p50 <= p99 && p99 <= max, "p50={p50} p99={p99} max={max}");
        let phases = lower.get("phases_us").unwrap();
        for phase in ["queue", "cache", "engine", "serialize"] {
            let h = phases.get(phase).unwrap_or_else(|| panic!("missing phase {phase}"));
            assert!(h.get("p95").and_then(Value::as_u64).is_some(), "{phase} has no p95");
        }
        // The slowest lower request ran an engine; its engine phase dominates
        // the cache-hit replays, so the engine p99 must be nonzero.
        assert!(phases.get("engine").unwrap().get("p99").and_then(Value::as_u64).unwrap() > 0);
        let verify = ops.get("verify").unwrap();
        assert_eq!(verify.get("requests").and_then(Value::as_u64), Some(1));
        assert_eq!(verify.get("errors").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn metrics_op_renders_prometheus_text() {
        let s = server();
        let reply = s
            .handle_line(r#"{"op":"simulate","program":"sample","runs":20}"#)
            .unwrap();
        result_of(&reply);
        let result = result_of(&s.handle_line(r#"{"op":"metrics"}"#).unwrap());
        assert_eq!(
            result.get("format").and_then(Value::as_str),
            Some("prometheus-text-0.0.4")
        );
        let text = result.get("text").and_then(Value::as_str).unwrap();
        assert!(text.contains("probterm_requests_total{op=\"simulate\"} 1\n"));
        assert!(text.contains("# TYPE probterm_request_duration_microseconds summary"));
        assert!(text.contains("probterm_cache_misses_total 1\n"));
    }

    /// A `Write + Send` target collecting trace bytes for inspection.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn trace_sink_gets_one_parseable_record_per_request() {
        let buf = SharedBuf::default();
        let s = Server::with_trace(
            ServerConfig { workers: 1, ..Default::default() },
            Some(TraceSink::new(Box::new(buf.clone()))),
        );
        let geo = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
        let lower = format!(r#"{{"id":7,"op":"lower","program":"{geo}","depth":25}}"#);
        s.handle_line(&lower).unwrap();
        s.handle_line(&lower).unwrap();
        s.handle_line("{not json").unwrap();
        s.handle_line(r#"{"op":"stats"}"#).unwrap();

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let records: Vec<Value> =
            text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(records.len(), 4, "one record per request: {text}");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.get("seq").and_then(Value::as_u64), Some(i as u64 + 1));
            for field in ["queue_us", "cache_us", "engine_us", "serialize_us", "total_us"] {
                assert!(r.get(field).and_then(Value::as_u64).is_some(), "missing {field}");
            }
        }
        let (first, second, bad, stats) =
            (&records[0], &records[1], &records[2], &records[3]);
        assert_eq!(first.get("op").and_then(Value::as_str), Some("lower"));
        assert_eq!(first.get("cache").and_then(Value::as_str), Some("miss"));
        assert_eq!(first.get("outcome").and_then(Value::as_str), Some("ok"));
        assert_eq!(first.get("id").and_then(Value::as_u64), Some(7));
        let key = first.get("canonical_key").and_then(Value::as_str).unwrap();
        assert_eq!(key.len(), 16);
        assert!(key.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(second.get("cache").and_then(Value::as_str), Some("hit"));
        assert_eq!(second.get("canonical_key").and_then(Value::as_str), Some(key));
        assert_eq!(bad.get("op").and_then(Value::as_str), Some("invalid"));
        assert_eq!(bad.get("outcome").and_then(Value::as_str), Some("parse_error"));
        assert!(bad.get("canonical_key").unwrap().is_null());
        assert_eq!(stats.get("op").and_then(Value::as_str), Some("stats"));
        assert!(stats.get("cache").unwrap().is_null());
    }

    #[test]
    fn explain_attributes_path_volumes_and_caches() {
        use probterm_core::numerics::Rational;
        let s = server();
        let geo = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
        let request = format!(r#"{{"op":"explain","program":"{geo}","depth":40,"top":3}}"#);
        let reply = s.handle_line(&request).unwrap();
        let result = result_of(&reply);
        assert_eq!(
            result.get("schema").and_then(Value::as_str),
            Some("probterm-explain-v1")
        );
        // No deadline: the run itself is complete even though the geometric
        // exploration frontier never empties.
        assert_eq!(result.get("complete").and_then(Value::as_bool), Some(true));
        let frontier = result.get("frontier").unwrap();
        assert_eq!(
            frontier.get("exploration_complete").and_then(Value::as_bool),
            Some(false)
        );
        assert!(frontier.get("paused").and_then(Value::as_u64).unwrap() >= 1);
        // `top` caps the shown paths without changing the totals.
        let total = result.get("paths_total").and_then(Value::as_u64).unwrap();
        let shown = result.get("paths_shown").and_then(Value::as_u64).unwrap();
        assert!(total > 3, "geometric at depth 40 has many paths, got {total}");
        assert_eq!(shown, 3);
        // Every shown path carries a witness that replayed concretely.
        for path in result.get("paths").and_then(Value::as_array).unwrap() {
            let witness = path.get("witness").unwrap();
            assert_eq!(witness.get("replayed").and_then(Value::as_bool), Some(true));
        }
        // `engine_ms` (the partial-cache yardstick) rides on the artifact.
        assert!(result.get("engine_ms").and_then(Value::as_u64).is_some());
        // Identical resubmission is a cache hit; a different `top` is a
        // different entry.
        let again = s.handle_line(&request).unwrap();
        let v = serde_json::from_str(&again).unwrap();
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("hit"));
        let full_request = format!(r#"{{"op":"explain","program":"{geo}","depth":40}}"#);
        let full = s.handle_line(&full_request).unwrap();
        let v = serde_json::from_str(&full).unwrap();
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("miss"));
        // The untruncated artifact's per-path volumes sum *exactly* to the
        // reported lower bound (rational equality, not float tolerance).
        let result = v.get("result").unwrap();
        let mut sum = Rational::zero();
        for path in result.get("paths").and_then(Value::as_array).unwrap() {
            let volume = path.get("volume").and_then(Value::as_str).unwrap();
            sum = &sum + &Rational::parse(volume).unwrap();
        }
        let probability = result.get("probability").and_then(Value::as_str).unwrap();
        assert_eq!(sum, Rational::parse(probability).unwrap());
    }

    #[test]
    fn slow_requests_emit_one_structured_line() {
        let buf = SharedBuf::default();
        let s = Server::with_sinks(
            ServerConfig { workers: 1, slow_ms: Some(0), ..Default::default() },
            None,
            Some(TraceSink::new(Box::new(buf.clone()))),
        );
        let geo = "(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0";
        let lower = format!(r#"{{"op":"lower","program":"{geo}","depth":25}}"#);
        // One engine run (any engine time beats the 0 ms threshold), one
        // cache hit and one control op — only the engine run is slow-logged.
        s.handle_line(&lower).unwrap();
        s.handle_line(&lower).unwrap();
        s.handle_line(r#"{"op":"stats"}"#).unwrap();

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let records: Vec<Value> =
            text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(records.len(), 1, "only the engine run is slow: {text}");
        let r = &records[0];
        assert_eq!(r.get("slow_ms").and_then(Value::as_u64), Some(0));
        assert_eq!(r.get("op").and_then(Value::as_str), Some("lower"));
        let key = r.get("canonical_key").and_then(Value::as_str).unwrap();
        assert_eq!(key.len(), 16);
        assert!(key.chars().all(|c| c.is_ascii_hexdigit()));
        for field in ["queue_us", "cache_us", "engine_us", "serialize_us", "total_us"] {
            assert!(r.get(field).and_then(Value::as_u64).is_some(), "missing {field}");
        }
        assert!(r.get("engine_us").and_then(Value::as_u64).unwrap() > 0);
    }

    #[test]
    fn catalog_stats_and_shutdown() {
        let s = server();
        let catalog_reply = result_of(&s.handle_line(r#"{"op":"catalog"}"#).unwrap());
        assert_eq!(
            catalog_reply.get("table1").and_then(Value::as_array).map(<[Value]>::len),
            Some(10)
        );
        assert_eq!(
            catalog_reply.get("table2").and_then(Value::as_array).map(<[Value]>::len),
            Some(5)
        );
        assert!(!s.state().shutdown_requested());
        let reply = s.handle_line(r#"{"id":"bye","op":"shutdown"}"#).unwrap();
        let v = serde_json::from_str(&reply).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert!(s.state().shutdown_requested());
    }

    #[test]
    fn stats_report_cache_bytes_and_entry_age() {
        let s = server();
        let before = result_of(&s.handle_line(r#"{"op":"stats"}"#).unwrap());
        assert_eq!(before.get("cache_bytes").and_then(Value::as_u64), Some(0));
        assert!(before.get("oldest_entry_ms").unwrap().is_null());
        s.handle_line(r#"{"op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0","depth":20}"#)
            .unwrap();
        let after = result_of(&s.handle_line(r#"{"op":"stats"}"#).unwrap());
        assert!(after.get("cache_bytes").and_then(Value::as_u64).unwrap() > 0);
        assert!(after.get("oldest_entry_ms").and_then(Value::as_u64).is_some());
    }

    #[test]
    fn inspect_reports_inflight_engine_runs_with_live_bounds() {
        // The first engine run sleeps 200 ms (injected slow fault) before a
        // genuinely long exploration, so the poller below reliably observes
        // it mid-flight: first in the engine phase, then with a nonzero
        // monotone bound once paths start terminating.
        let s = Server::new(ServerConfig {
            workers: 1,
            inject: Some(InjectSpec::parse("slow=@1:200").unwrap()),
            ..Default::default()
        });
        let bg = {
            let s = s.clone();
            thread::spawn(move || {
                s.handle_line(
                    r#"{"id":"slow-1","op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0","depth":400}"#,
                )
            })
        };
        let give_up = Instant::now() + Duration::from_secs(60);
        let mut saw_engine_phase = false;
        let mut saw_bound = false;
        let mut last_steps = 0u64;
        while Instant::now() < give_up && !(saw_engine_phase && saw_bound) {
            let result = result_of(&s.handle_line(r#"{"op":"inspect"}"#).unwrap());
            for row in result.get("inflight").unwrap().as_array().unwrap() {
                if row.get("op").and_then(Value::as_str) != Some("lower") {
                    continue;
                }
                assert_eq!(row.get("id").and_then(Value::as_str), Some("slow-1"));
                assert!(row.get("age_ms").and_then(Value::as_u64).is_some());
                if row.get("phase").and_then(Value::as_str) != Some("engine") {
                    continue;
                }
                saw_engine_phase = true;
                let p = row.get("progress").unwrap();
                let steps = p.get("steps").and_then(Value::as_u64).unwrap();
                assert!(steps >= last_steps, "in-flight steps went backwards");
                last_steps = steps;
                if p.get("bound").and_then(Value::as_f64).unwrap() > 0.0 {
                    assert!(steps > 0, "a nonzero bound implies exploration work");
                    assert!(p.get("paths").and_then(Value::as_u64).unwrap() > 0);
                    saw_bound = true;
                }
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_engine_phase, "never observed the lower run in the engine phase");
        assert!(saw_bound, "never observed a nonzero in-flight bound");
        let reply = bg.join().unwrap().unwrap();
        let _ = result_of(&reply);
        // Once the run completes its row is gone.
        let result = result_of(&s.handle_line(r#"{"op":"inspect"}"#).unwrap());
        assert_eq!(result.get("count").and_then(Value::as_u64), Some(0));
        assert_eq!(result.get("inflight").and_then(Value::as_array).map(<[Value]>::len), Some(0));
    }

    #[test]
    fn streamed_lower_emits_monotone_progress_frames() {
        let s = server();
        let frames = std::cell::RefCell::new(Vec::<Value>::new());
        let sink = |frame: &str| {
            frames.borrow_mut().push(serde_json::from_str(frame).unwrap());
        };
        let reply = handle_line_frames(
            s.state(),
            r#"{"id":77,"op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0","depth":400,"stream":true}"#,
            &sink,
        )
        .unwrap();
        let result = result_of(&reply);
        assert_eq!(result.get("complete").and_then(Value::as_bool), Some(true));
        let frames = frames.into_inner();
        assert!(
            frames.len() >= 2,
            "a depth-400 run must emit several progress frames, got {}",
            frames.len()
        );
        let mut prev_steps = 0u64;
        let mut prev_bound = 0u64;
        for f in &frames {
            assert_eq!(f.get("id").and_then(Value::as_u64), Some(77), "frames carry the id");
            assert!(f.get("ok").is_none(), "frames are not replies");
            let p = f.get("progress").unwrap();
            let steps = p.get("steps").and_then(Value::as_u64).unwrap();
            let bound = p.get("bound_scaled").and_then(Value::as_u64).unwrap();
            assert!(steps >= prev_steps, "streamed steps regressed");
            assert!(bound >= prev_bound, "streamed bound regressed: frames must be monotone");
            prev_steps = steps;
            prev_bound = bound;
        }
        assert!(prev_steps > 0, "the final frame shows exploration work");
        assert!(prev_bound > 0, "the final frame shows accumulated mass");
        let first = frames.first().unwrap().get("progress").unwrap();
        assert!(
            prev_steps > first.get("steps").and_then(Value::as_u64).unwrap(),
            "steps must strictly increase across the run"
        );
        // Without "stream": true the same request emits no frames.
        let quiet = std::cell::RefCell::new(0usize);
        let count_sink = |_: &str| *quiet.borrow_mut() += 1;
        let reply = handle_line_frames(
            s.state(),
            r#"{"id":78,"op":"lower","program":"(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0","depth":400}"#,
            &count_sink,
        )
        .unwrap();
        let _ = result_of(&reply);
        assert_eq!(*quiet.borrow(), 0, "non-streamed requests are frame-silent");
    }
}
