//! `probterm-service` — a concurrent analysis server for the `probterm`
//! workspace.
//!
//! The service exposes every exact engine of the Beutner–Ong reproduction
//! (Monte-Carlo simulation, interval-semantics lower bounds, counting-based
//! AST verification, and the combined report) behind one long-lived,
//! batching, caching front end:
//!
//! * **wire protocol** ([`protocol`]): newline-delimited JSON over stdio or
//!   `std::net` TCP, with structured machine-readable error replies,
//! * **event-driven transport** ([`server`]): one nonblocking
//!   readiness-polled loop owns every connection's reads and writes (no
//!   thread per connection), framing lines into **sharded worker queues**
//!   routed by the program's canonical hash, with work stealing so one slow
//!   verification cannot monopolise a shard,
//! * **single-flight coalescing** ([`server`]): identical in-flight engine
//!   requests attach as waiters to the first run instead of enqueueing;
//!   the finishing worker fans the reply (and streamed progress frames) out
//!   to every waiter, and divergent deadlines are reconciled soundly —
//!   richer joiners upgrade the run's budget, poorer ones receive the
//!   anytime partial checkpoint,
//! * **deadlines** — per-request `deadline_ms` budgets enforced between
//!   Monte-Carlo chunks and at engine boundaries; exceeding one yields a
//!   `budget_exceeded` error and the worker lives on,
//! * **content-addressed caching** ([`cache`]): results are keyed by the
//!   α-invariant canonical hash of the submitted program
//!   ([`probterm_core::spcf::Term::canonical_key`]) plus the analysis and its
//!   configuration, so α-equivalent resubmissions are cache hits (observable
//!   via the `stats` op); with `--cache-path` the cache additionally
//!   survives restarts via a version-stamped, atomically-rewritten JSONL
//!   snapshot loaded at boot and persisted on graceful drain,
//! * **telemetry** ([`metrics`]): every request is timed in phases (queue
//!   wait, cache lookup, engine run, serialization) on monotonic clocks into
//!   log-bucketed latency histograms; the `stats` op reports per-op
//!   p50/p95/p99, the `metrics` op renders a Prometheus-style text
//!   exposition, and an optional [`probterm_telemetry::TraceSink`] streams
//!   one JSONL record per request,
//! * **robustness** ([`inject`], [`server`]): bounded admission with load
//!   shedding (structured `overloaded` replies carrying `retry_after_ms`),
//!   resumable anytime analyses (a deadline-truncated `lower` checkpoints
//!   its exploration frontier into the cache; a richer retry resumes from it
//!   instead of recomputing), graceful drain on shutdown, per-connection
//!   idle timeouts, and a deterministic fault-injection harness
//!   (`--inject`) for chaos testing.
//!
//! Everything is std-only: like the rest of the workspace, the crate builds
//! offline with path-only dependencies.
//!
//! # Example (in-process)
//!
//! ```
//! use probterm_service::{Server, ServerConfig};
//!
//! let server = Server::new(ServerConfig::default());
//! let reply = server
//!     .handle_line(r#"{"id":1,"op":"simulate","program":"sample","runs":50}"#)
//!     .unwrap();
//! assert!(reply.contains("\"ok\":true"));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod inject;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use inject::{FaultRule, InjectDecision, InjectSpec};
pub use metrics::{OpMetrics, OpMetricsSnapshot, PhaseTimes, ServiceMetrics};
pub use protocol::{ErrorCode, Op, Request, ServiceError};
pub use server::{
    handle_line, handle_line_frames, RunningServer, Server, ServerConfig, ServerState,
    StatsSnapshot, CACHE_SNAPSHOT_VERSION,
};
pub use probterm_telemetry::TraceSink;
